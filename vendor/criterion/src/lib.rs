//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot fetch crates.io, so this crate provides the
//! API subset `benches/paper.rs` uses — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Throughput`, `BenchmarkId` and `Bencher::iter` — with
//! a deliberately small measurement loop: a short warmup, then a fixed
//! number of timed samples whose mean/min are printed per benchmark. There
//! is no statistical analysis, plotting or HTML report; the point is that
//! `cargo bench` compiles and produces stable, quick timings offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units the measured iteration count is reported against.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under timing.
pub struct Bencher {
    samples: usize,
    last: Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Times `f`: one untimed warmup call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some(Sample {
            mean: total / self.samples as u32,
            min,
        });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.criterion.samples_per_bench.min(self.sample_size),
            last: None,
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id);
        match b.last {
            Some(s) => {
                let rate = self.throughput.map(|t| per_second(t, s.mean));
                println!(
                    "bench {:<44} mean {:>12?} min {:>12?}{}",
                    name,
                    s.mean,
                    s.min,
                    rate.unwrap_or_default(),
                );
            }
            None => println!("bench {name:<44} (no measurement: Bencher::iter never called)"),
        }
    }

    pub fn finish(self) {}
}

fn per_second(t: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / secs),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!("  {:>12.0} B/s", n as f64 / secs)
        }
    }
}

/// Entry point mirroring criterion's `Criterion` builder.
pub struct Criterion {
    samples_per_bench: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: this stand-in is for smoke-timing, not statistics.
        // CRITERION_SAMPLES overrides for a longer manual run.
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion {
            samples_per_bench: samples,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.samples_per_bench;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        self
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` (harness = false) the binary is executed
            // with --test-ish args; a bench never wants to fail the test
            // suite, so args are ignored and the quick run happens either way.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0, "closure must actually run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("Mesh").to_string(), "Mesh");
    }
}
