//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! ranges / tuples / [`strategy::Just`] / [`collection::vec`] as strategies,
//! [`arbitrary::any`], [`prop_oneof!`], `prop_assert!` / `prop_assert_eq!`,
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! * generation is uniform random, seeded deterministically from the test's
//!   module path and name, so CI runs are reproducible;
//! * `PROPTEST_CASES` overrides the per-suite case count, mirroring
//!   upstream's env-var support.

pub mod test_runner {
    /// Deterministic xoshiro256++ stream used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            TestRng { s }
        }

        /// Seeds from a test's fully qualified name so every suite gets an
        /// independent but run-to-run stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)` by multiply-shift.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-suite execution configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually used: `PROPTEST_CASES` wins over the
        /// configured value so CI can dial effort without editing suites.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate` draws
    /// one concrete value from the rng stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*}
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*}
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs each property over `cases` random inputs.
///
/// Accepts the same shape upstream does for the workspace's suites: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assertion inside a property; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

pub mod prelude {
    /// Lets `prop::collection::vec(...)` resolve, as upstream's prelude does.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honor_bounds(a in 3u8..9, b in 10u64..=20, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..=20).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_compose(
            v in prop::collection::vec((any::<u8>(), 0usize..4), 1..16),
            e in small_even(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|&(_, s)| s < 4));
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_picks_only_arms(k in prop_oneof![Just(1u8), Just(3u8), Just(7u8)]) {
            prop_assert!(k == 1 || k == 3 || k == 7);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
