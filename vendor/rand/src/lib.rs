//! Offline stand-in for the `rand` crate, implementing the 0.8 API subset
//! this workspace uses: [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real crate cannot be fetched. Streams are deterministic
//! per seed (xoshiro256++ seeded through SplitMix64), which is all the
//! simulator needs; the exact values differ from upstream `rand`, which no
//! test depends on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that `Rng::gen` can produce from the full-entropy stream.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_unit_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_unit_f64() as f32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a full-entropy `u64` onto `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias is irrelevant here).
fn mul_shift(x: u64, span: u128) -> u128 {
    (x as u128 * span) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*}
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_unit_f64() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state word vector. Together with
        /// [`StdRng::from_state`] this makes the generator checkpointable:
        /// a platform snapshot stores these four words and the restored
        /// generator continues the stream exactly where the original left
        /// off.
        pub fn get_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::get_state`]. The all-zero state is a xoshiro fixed
        /// point that would emit zeros forever; it cannot arise from
        /// `seed_from_u64` (SplitMix64 never produces four zero words in a
        /// row), so restoring it indicates a corrupted snapshot.
        ///
        /// # Panics
        ///
        /// Panics if `s` is all zeros.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro state is invalid"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=223);
            assert!((1..=223).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        // A generator rebuilt from a mid-stream checkpoint must produce
        // exactly the tail the uninterrupted generator produces.
        let mut reference = StdRng::seed_from_u64(1234);
        let mut checkpointed = StdRng::seed_from_u64(1234);
        for _ in 0..57 {
            assert_eq!(reference.gen::<u64>(), checkpointed.gen::<u64>());
        }
        let state = checkpointed.get_state();
        let mut restored = StdRng::from_state(state);
        for _ in 0..500 {
            assert_eq!(reference.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn state_capture_does_not_advance_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        let before = rng.get_state();
        assert_eq!(before, rng.get_state());
        let next = rng.gen::<u64>();
        assert_ne!(before, rng.get_state());
        // Replaying from the captured state reproduces the same draw.
        assert_eq!(StdRng::from_state(before).gen::<u64>(), next);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
