//! End-to-end packet forwarding through every LPM engine: generate real
//! checksum-valid IPv4 packets, look each destination up in four different
//! engines, rewrite TTLs, and compare the engines' silicon costs — the
//! paper's §8 SRAM-vs-CAM argument with actual packets flowing.
//!
//! ```text
//! cargo run --release --example lpm_engines
//! ```

use nw_ipv4::routes::{synthetic_table, RouteTableConfig};
use nw_ipv4::{
    BinaryTrie, CamTable, Ipv4Header, LinearTable, LpmTable, MultibitTrie, PacketGenerator,
    TrafficMix,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let routes = 16_384;
    let cfg = RouteTableConfig { routes, seed: 2003 };

    // Build all four engines over the same synthetic table.
    let mut linear = LinearTable::new();
    let prefixes = synthetic_table(&mut linear, &cfg);
    let mut engines: Vec<Box<dyn LpmTable>> = vec![
        Box::new(BinaryTrie::new()),
        Box::new(MultibitTrie::new(4)),
        Box::new(MultibitTrie::new(8)),
        Box::new(CamTable::new()),
    ];
    for e in &mut engines {
        synthetic_table(e.as_mut(), &cfg);
    }

    // Forward 10k worst-case packets through each engine.
    let mut gen = PacketGenerator::new(prefixes, TrafficMix::WorstCase, 7).with_miss_fraction(0.02);
    let packets: Vec<Vec<u8>> = (0..10_000).map(|_| gen.next_packet()).collect();

    println!("{routes} routes, 10000 worst-case packets (2% table misses)\n");
    println!(
        "{:<26} {:>9} {:>8} {:>10} {:>14} {:>14}",
        "engine", "forwarded", "missed", "accesses", "silicon", "energy/lookup"
    );
    for e in &engines {
        let mut forwarded = 0u32;
        let mut missed = 0u32;
        for p in &packets {
            let mut h = Ipv4Header::parse(p)?;
            match e.lookup(h.dst) {
                Some(_next_hop) => {
                    h.decrement_ttl()?;
                    debug_assert!(Ipv4Header::parse(&h.to_bytes()).is_ok());
                    forwarded += 1;
                }
                None => missed += 1,
            }
        }
        let silicon_ratio = if e.name() == "tcam" {
            CamTable::AREA_RATIO_VS_SRAM
        } else {
            1.0
        };
        println!(
            "{:<26} {:>9} {:>8} {:>10} {:>11.2}Mb {:>12.0}pJ",
            format!("{} ({} acc)", e.name(), e.worst_case_accesses()),
            forwarded,
            missed,
            e.worst_case_accesses(),
            e.storage_bits() as f64 * silicon_ratio / 1e6,
            e.lookup_energy_pj(),
        );
    }
    println!("\nEvery engine forwards the identical packet set; they differ only in silicon.");
    Ok(())
}
