//! Explore the paper's §6.1 topology menu: latency/throughput curves for
//! bus, ring, mesh, torus, fat tree and crossbar under uniform traffic.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use nw_noc::{run_open_loop, OpenLoopConfig, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let loads = [0.02, 0.05, 0.10, 0.20, 0.40, 0.60];
    let kinds = [
        TopologyKind::SharedBus,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::FatTree,
        TopologyKind::Crossbar,
    ];
    let base = OpenLoopConfig {
        warmup: 1_000,
        measure: 8_000,
        ..OpenLoopConfig::default()
    };

    println!("Mean packet latency (cycles) on {n} endpoints, uniform traffic");
    print!("{:<10}", "load");
    for k in kinds {
        print!("{:>10}", k.to_string());
    }
    println!();
    for load in loads {
        print!("{load:<10.2}");
        for kind in kinds {
            let mut cfg = base.clone();
            cfg.offered_load = load;
            let r = run_open_loop(kind, n, &cfg)?;
            if r.saturated {
                print!("{:>10}", "sat");
            } else {
                print!("{:>10.1}", r.mean_latency());
            }
        }
        println!();
    }
    println!("\n'sat' marks offered loads beyond the topology's saturation point.");
    Ok(())
}
