//! The paper's §1 economics, as a calculator: mask and design NRE by node,
//! break-even volumes, and the implementation-style crossovers for a
//! product's expected volume.
//!
//! ```text
//! cargo run --release --example nre_calculator           # defaults: $5, 20%
//! cargo run --release --example nre_calculator 12.50 0.3 # price, margin
//! ```

use nw_econ::{break_even_volume, crossover_volume, design_nre, mask_set_nre, ImplStyle};
use nw_types::{Dollars, TechNode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let price = Dollars(args.first().and_then(|s| s.parse().ok()).unwrap_or(5.0));
    let margin: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.20);

    println!("Chip price {price}, profit margin {:.0}%\n", margin * 100.0);
    println!(
        "{:<8} {:>14} {:>16} {:>18} {:>18}",
        "node", "mask NRE", "mask break-even", "design NRE (mid)", "design break-even"
    );
    for node in TechNode::LADDER {
        let mask = mask_set_nre(node);
        let design = design_nre(node, 0.5);
        println!(
            "{:<8} {:>14} {:>13.2}M {:>18} {:>15.1}M",
            node.to_string(),
            mask.to_string(),
            break_even_volume(mask, price, margin) / 1e6,
            design.to_string(),
            break_even_volume(design, price, margin) / 1e6,
        );
    }

    println!("\nImplementation-style crossovers at 90nm (10-product platform family):");
    for w in ImplStyle::ALL.windows(2) {
        if let Some(v) = crossover_volume(w[0], w[1], TechNode::N90, 10.0, price) {
            println!("  {} -> {} above {:.2}M units", w[0], w[1], v / 1e6);
        }
    }
}
