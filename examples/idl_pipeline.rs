//! Declare a DSOC application in the textual IDL, map it automatically,
//! and run it on an FPPA — the whole §5/§7 tool flow in one file.
//!
//! ```text
//! cargo run --release --example idl_pipeline
//! ```

use nanowall::prelude::*;
use nw_dsoc::parse_application;
use nw_mapping::{GreedyLoadMapper, Mapper, MappingProblem, PeSlot};

const IDL: &str = r#"
    # A video-ish pipeline: capture -> transform (signal kernel) -> encode,
    # with a stats side-channel.
    object capture   { oneway frame(64)  compute 40  domain control; }
    object transform { oneway filter(64) compute 200 domain signal; }
    object encoder   { oneway encode(64) compute 120 domain generic; }
    object stats     { oneway tally(16)  compute 10  domain control; }

    call capture.frame    -> transform.filter;
    call transform.filter -> encoder.encode;
    call capture.frame    -> stats.tally;
    entry capture.frame;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = parse_application(IDL)?;
    println!(
        "parsed '{}' with {} objects, {} edges",
        app.name(),
        app.objects().len(),
        app.edges().len()
    );

    // A heterogeneous platform: two RISCs and a DSP (the transform's
    // natural home — the mapper should discover that via capacity).
    let mut cfg = FppaConfig::new("idl-demo", TopologyKind::Ring);
    cfg.add_pe(PeConfig::new(PeClass::GpRisc, 4));
    cfg.add_pe(PeConfig::new(PeClass::Dsp, 4));
    cfg.add_pe(PeConfig::new(PeClass::GpRisc, 4));
    let mut platform = FppaPlatform::new(cfg)?;

    // Automatic mapping: DSP capacity 4x on the signal-heavy aggregate.
    let rate = 0.004;
    let problem = MappingProblem::new(
        app.clone(),
        vec![rate],
        vec![
            PeSlot::new(platform.pe_node(0), 1.0),
            PeSlot::new(platform.pe_node(1), 4.0), // DSP on signal kernels
            PeSlot::new(platform.pe_node(2), 1.0),
        ],
        platform.hop_matrix(),
    )?;
    let mapping = GreedyLoadMapper.map(&problem);
    println!(
        "greedy placement: {:?} (cost {:.3})",
        mapping.placement, mapping.cost.total
    );

    platform.install_app(&app, &mapping.placement)?;
    platform.drive_entry(ObjectId(0), rate);
    let report = platform.run(100_000);

    println!("\nafter 100k cycles:");
    println!("  tasks completed : {}", report.tasks_completed);
    for (i, u) in report.pe_utilization.iter().enumerate() {
        println!("  pe{i} utilization: {:>5.1}%", u * 100.0);
    }
    println!(
        "  NoC latency     : {:.1} cycles mean",
        report.noc.latency.mean()
    );
    Ok(())
}
