//! The paper's §7.2 headline scenario: an IPv4 fast path processing
//! worst-case (40-byte) traffic at a 10 Gbit/s line rate on a
//! multiprocessor, hardware-multithreaded FPPA with NoC round trips over
//! 100 cycles.
//!
//! ```text
//! cargo run --release --example ipv4_fastpath
//! ```

use nanowall::scenarios::{ipv4_rig, run_ipv4};
use nw_noc::TopologyKind;

fn main() {
    println!("IPv4 fast path, 40B packets at 10 Gb/s, per-hop link latency 25 cycles\n");
    println!(
        "{:>10} {:>8} {:>10} {:>11} {:>12} {:>12}",
        "worker PEs", "threads", "forwarded", "egress", "worker util", "NoC latency"
    );
    for replicas in [4usize, 8, 12, 16] {
        let mut rig = ipv4_rig(replicas, 8, TopologyKind::Mesh, 25, 10.0);
        let report = run_ipv4(&mut rig, 60_000);
        let io = &report.io[0];
        let forwarded = io.transmitted as f64 / io.generated.max(1) as f64;
        let worker_util: f64 =
            report.pe_utilization[..replicas].iter().sum::<f64>() / replicas as f64;
        println!(
            "{replicas:>10} {:>8} {:>9.0}% {:>8.2} Gb/s {:>11.0}% {:>8.0} cyc",
            8,
            forwarded * 100.0,
            report.egress_pps(0) * 320.0 / 1e9,
            worker_util * 100.0,
            report.noc.latency.mean(),
        );
    }
    println!(
        "\nThe paper's claim C7: near-100% utilization of processors and threads at a\n\
         10 Gbit line rate despite >100-cycle NoC latencies — reached once the worker\n\
         pool covers the per-packet work (compare the undersized rows above)."
    );
}
