//! MultiFlex-style design-space exploration: sweep platform configurations,
//! map the IPv4 application onto each with simulated annealing, and print
//! the Pareto front of PE count versus mapping cost.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use nw_ipv4::app::{fast_path_app, FastPathWeights};
use nw_mapping::{
    pareto_front, DsePoint, Mapper, MappingProblem, PeSlot, SimulatedAnnealingMapper,
};
use nw_noc::{Topology, TopologyKind};
use nw_types::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (app, _) = fast_path_app(4, &FastPathWeights::default())?;
    let rate_per_entry = 0.002;

    let mut points = Vec::new();
    let mut details = Vec::new();
    for topology in [
        TopologyKind::Mesh,
        TopologyKind::FatTree,
        TopologyKind::Crossbar,
    ] {
        for n_pes in [4usize, 6, 8, 12] {
            let topo = Topology::build(topology, n_pes, 2)?;
            let hops: Vec<Vec<f64>> = (0..n_pes)
                .map(|a| (0..n_pes).map(|b| topo.hops(a, b) as f64).collect())
                .collect();
            let problem = MappingProblem::new(
                app.clone(),
                vec![rate_per_entry; 4],
                (0..n_pes).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
                hops,
            )?;
            let mapping = SimulatedAnnealingMapper {
                iterations: 10_000,
                ..SimulatedAnnealingMapper::default()
            }
            .map(&problem);
            let label = format!("{topology}-{n_pes}pe");
            points.push(DsePoint::new(
                label.clone(),
                n_pes as f64,
                mapping.cost.total,
            ));
            details.push((label, mapping));
        }
    }

    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>14}",
        "config", "PEs", "mapping cost", "bottleneck", "comm byte-hops"
    );
    for (p, (_, m)) in points.iter().zip(&details) {
        println!(
            "{:<16} {:>6.0} {:>14.3} {:>12.3} {:>14.3}",
            p.label, p.resource, p.quality, m.cost.bottleneck_load, m.cost.comm_byte_hops
        );
    }

    let front = pareto_front(&points);
    println!("\nPareto-efficient configurations (PE count vs mapping cost):");
    for &i in &front {
        println!("  {}", points[i].label);
    }
    Ok(())
}
