//! Quickstart: build a small FPPA, install a two-object DSOC application,
//! run it, and read the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nanowall::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the platform: four dual-threaded RISC cores on a mesh NoC
    //    at the paper's 0.13 um node.
    let mut cfg = FppaConfig::new("quickstart", TopologyKind::Mesh);
    for _ in 0..4 {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, 2));
    }

    // 2. Describe the application as DSOC objects: a producer that hands
    //    each work item to a consumer.
    let mut b = Application::builder("pingpong");
    let ping = b.add_object(
        ObjectDef::new("ping").with_method(MethodDef::oneway("go", 16).with_compute(50)),
    );
    let pong = b.add_object(
        ObjectDef::new("pong").with_method(MethodDef::oneway("ack", 16).with_compute(50)),
    );
    b.connect(ping, 0, pong, 0, 1.0);
    b.entry(ping, 0);
    let app = b.build()?;

    // 3. Map objects to PEs (here by hand; nw-mapping automates this),
    //    drive the entry point, and simulate.
    let mut platform = FppaPlatform::new(cfg)?;
    platform.install_app(&app, &[0, 3])?;
    platform.drive_entry(ping, 0.01); // one invocation per 100 cycles
    let report = platform.run(50_000);

    // 4. Read the results.
    println!("platform        : {}", platform.config().name);
    println!(
        "simulated       : {} at {:.0} MHz",
        report.cycles,
        report.clock_hz / 1e6
    );
    println!("tasks completed : {}", report.tasks_completed);
    println!(
        "NoC packets     : {} (mean latency {:.1} cycles)",
        report.noc.delivered,
        report.noc.latency.mean()
    );
    for (i, u) in report.pe_utilization.iter().enumerate() {
        println!("pe{i} utilization : {:.1}%", u * 100.0);
    }
    println!("total energy    : {}", report.energy);
    Ok(())
}
