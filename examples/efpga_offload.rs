//! The §6.3 eFPGA story, live: run a checksum kernel in software, then
//! reconfigure the platform's eFPGA at run time and offload it, watching
//! throughput, the reconfiguration stall, and the 10x penalties.
//!
//! ```text
//! cargo run --release --example efpga_offload
//! ```

use nanowall::prelude::*;
use nw_fabric::KernelSpec;
use nw_pe::{Op, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = FppaConfig::new("offload-demo", TopologyKind::Ring);
    cfg.add_pe(PeConfig::new(PeClass::GpRisc, 4));
    cfg.add_fabric(FabricSpec::default());
    let mut platform = FppaPlatform::new(cfg)?;
    let fabric_node = platform.fabric_node(0);
    let kernel = KernelSpec::checksum_offload();

    // Phase 1: the kernel in software on the PE.
    let sw_task = Program::straight_line([Op::Compute(kernel.sw_cycles_per_item)]);
    let phase = 30_000u64;
    for _ in 0..phase {
        while platform.pe(0).idle_threads() > 0 {
            platform.pe_mut(0).spawn(sw_task.clone())?;
        }
        platform.step();
    }
    let sw_done = platform.pe(0).stats().tasks_completed;
    println!(
        "software on gp-risc : {sw_done} items in {phase} cycles ({:.1} items/kcycle)",
        sw_done as f64 * 1000.0 / phase as f64
    );

    // Phase 2: reconfigure the fabric (the bitstream load stalls it) and
    // offload — the PE now only ships items to the fabric.
    let t0 = platform.now();
    platform.fabric_mut(0).reconfigure(&kernel, t0)?;
    let downtime = platform.fabric_mut(0).spec().reconfig_cycles(kernel.luts);
    println!(
        "reconfiguration     : {} bitstream, {downtime} stall",
        platform.fabric_mut(0).spec().bitstream_bytes(kernel.luts)
    );

    let offload_task = Program::straight_line([Op::call(fabric_node, 8, 8)]);
    for _ in 0..phase {
        while platform.pe(0).idle_threads() > 0 {
            platform.pe_mut(0).spawn(offload_task.clone())?;
        }
        platform.step();
    }
    let fabric_done = platform.fabric_mut(0).served();
    println!(
        "offloaded to efpga  : {fabric_done} items in {phase} cycles ({:.1} items/kcycle)",
        fabric_done as f64 * 1000.0 / phase as f64
    );

    let mapped = nw_fabric::MappedKernel::map(&kernel, platform.fabric_mut(0).spec());
    println!("\nthe §6.3 ledger:");
    println!(
        "  speedup vs software : x{:.1}",
        (fabric_done as f64 / sw_done as f64).max(0.0)
    );
    println!(
        "  area vs hardwired   : x{:.1} ({} vs {})",
        mapped.area.0 / kernel.hw_area.0,
        mapped.area,
        kernel.hw_area
    );
    println!(
        "  energy vs hardwired : x{:.1}",
        mapped.energy_per_item.0 / kernel.hw_energy_per_item.0
    );
    println!("  => worth it for this regular kernel; not for 'small scale time\n     division multiplexing of different tasks' (each swap costs {downtime}).");
    Ok(())
}
