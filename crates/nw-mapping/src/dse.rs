//! Design-space exploration helpers.
//!
//! The MultiFlex story (§7.2) is "rapid exploration and optimization": sweep
//! platform configurations, map the application onto each, and keep the
//! Pareto-efficient points. This module provides the bookkeeping; the sweep
//! loops themselves live with the experiments (they own the platform
//! construction).

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Human-readable configuration label (e.g. "mesh-16pe-4thr").
    pub label: String,
    /// Resource cost (e.g. PE count, area) — lower is better.
    pub resource: f64,
    /// Quality metric where **lower is better** (e.g. mapping cost,
    /// 1/throughput).
    pub quality: f64,
}

impl DsePoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, resource: f64, quality: f64) -> Self {
        DsePoint {
            label: label.into(),
            resource,
            quality,
        }
    }
}

/// Evaluates independent design-point configurations on the parallel sweep
/// pool, preserving input order.
///
/// This is the DSE loop's entry point to `nw_sim::parallel_map`: every
/// configuration builds and simulates its own platform, so points share
/// nothing and the evaluation parallelizes without changing results (the
/// returned vector is index-for-index what the serial loop would produce).
///
/// # Examples
///
/// ```
/// use nw_mapping::{evaluate_points, pareto_front};
///
/// let dse = evaluate_points(vec![2usize, 4, 8], |pes| {
///     // stand-in for "build platform with `pes` PEs, map, simulate"
///     let quality = 1.0 / pes as f64;
///     nw_mapping::DsePoint::new(format!("{pes}pe"), pes as f64, quality)
/// });
/// assert_eq!(dse.len(), 3);
/// assert_eq!(dse[1].label, "4pe");
/// assert_eq!(pareto_front(&dse).len(), 3);
/// ```
pub fn evaluate_points<T, F>(configs: Vec<T>, eval: F) -> Vec<DsePoint>
where
    T: Send,
    F: Fn(T) -> DsePoint + Sync,
{
    nw_sim::parallel_map(configs, eval)
}

/// Indices of the Pareto-efficient points (minimizing both `resource` and
/// `quality`), sorted by ascending resource.
///
/// A point is kept when no other point is at least as good on both axes and
/// strictly better on one.
///
/// # Examples
///
/// ```
/// use nw_mapping::{pareto_front, DsePoint};
///
/// let pts = vec![
///     DsePoint::new("small-slow", 1.0, 10.0),
///     DsePoint::new("big-fast", 4.0, 2.0),
///     DsePoint::new("big-slow", 4.0, 9.0),   // dominated by big-fast
///     DsePoint::new("medium", 2.0, 5.0),
/// ];
/// let front = pareto_front(&pts);
/// let labels: Vec<&str> = front.iter().map(|&i| pts[i].label.as_str()).collect();
/// assert_eq!(labels, vec!["small-slow", "medium", "big-fast"]);
/// ```
pub fn pareto_front(points: &[DsePoint]) -> Vec<usize> {
    let mut keep = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let dominated = points.iter().enumerate().any(|(j, q)| {
            j != i
                && q.resource <= p.resource
                && q.quality <= p.quality
                && (q.resource < p.resource || q.quality < p.quality)
        });
        if !dominated {
            keep.push(i);
        }
    }
    keep.sort_by(|&a, &b| {
        points[a]
            .resource
            .partial_cmp(&points[b].resource)
            .expect("finite resources")
            .then(
                points[a]
                    .quality
                    .partial_cmp(&points[b].quality)
                    .expect("finite quality"),
            )
    });
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn single_point_survives() {
        let pts = vec![DsePoint::new("only", 1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn identical_points_both_survive() {
        let pts = vec![DsePoint::new("a", 1.0, 1.0), DsePoint::new("b", 1.0, 1.0)];
        assert_eq!(pareto_front(&pts).len(), 2);
    }

    #[test]
    fn strict_domination_removes() {
        let pts = vec![
            DsePoint::new("good", 1.0, 1.0),
            DsePoint::new("bad", 2.0, 2.0),
        ];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn front_is_sorted_by_resource() {
        let pts = vec![
            DsePoint::new("c", 3.0, 1.0),
            DsePoint::new("a", 1.0, 3.0),
            DsePoint::new("b", 2.0, 2.0),
        ];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![1, 2, 0]);
    }
}
