//! The mapping problem statement.

use nw_dsoc::Application;
use nw_types::NodeId;
use std::fmt;

/// One processing-element slot the mapper can place objects on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSlot {
    /// NoC node the PE sits at.
    pub node: NodeId,
    /// Relative compute capacity versus a 1.0 GP-RISC baseline
    /// (an ASIP matched to the workload would be > 1).
    pub capacity: f64,
}

impl PeSlot {
    /// Creates a slot.
    pub fn new(node: NodeId, capacity: f64) -> Self {
        PeSlot { node, capacity }
    }
}

/// Errors from [`MappingProblem::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProblemError {
    /// No PE slots were provided.
    NoPes,
    /// Entry-rate count does not match the application's entry points.
    RateCountMismatch {
        /// Rates provided.
        provided: usize,
        /// Entry points declared.
        expected: usize,
    },
    /// The hop matrix is not square or does not cover some PE node.
    BadHopMatrix,
    /// A PE slot has non-positive capacity.
    BadCapacity(f64),
}

impl fmt::Display for BuildProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProblemError::NoPes => write!(f, "mapping needs at least one PE slot"),
            BuildProblemError::RateCountMismatch { provided, expected } => {
                write!(f, "{provided} entry rates for {expected} entry points")
            }
            BuildProblemError::BadHopMatrix => write!(f, "hop matrix malformed for the PE nodes"),
            BuildProblemError::BadCapacity(c) => write!(f, "PE capacity {c} must be positive"),
        }
    }
}

impl std::error::Error for BuildProblemError {}

/// A fully specified mapping problem.
#[derive(Debug, Clone)]
pub struct MappingProblem {
    app: Application,
    entry_rates: Vec<f64>,
    pes: Vec<PeSlot>,
    hops: Vec<Vec<f64>>,
    /// Cached per-object compute loads (baseline cycles per cycle).
    object_loads: Vec<f64>,
    /// Cached per-edge traffic (bytes per cycle).
    edge_traffic: Vec<f64>,
}

impl MappingProblem {
    /// Assembles and validates a problem.
    ///
    /// `hops[a][b]` is the NoC hop distance between nodes `a` and `b`; it
    /// must cover every node named by a [`PeSlot`].
    ///
    /// # Errors
    ///
    /// See [`BuildProblemError`].
    pub fn new(
        app: Application,
        entry_rates: Vec<f64>,
        pes: Vec<PeSlot>,
        hops: Vec<Vec<f64>>,
    ) -> Result<Self, BuildProblemError> {
        if pes.is_empty() {
            return Err(BuildProblemError::NoPes);
        }
        if entry_rates.len() != app.entries().len() {
            return Err(BuildProblemError::RateCountMismatch {
                provided: entry_rates.len(),
                expected: app.entries().len(),
            });
        }
        for p in &pes {
            if p.capacity <= 0.0 {
                return Err(BuildProblemError::BadCapacity(p.capacity));
            }
            if p.node.0 >= hops.len() {
                return Err(BuildProblemError::BadHopMatrix);
            }
        }
        if hops.iter().any(|row| row.len() != hops.len()) {
            return Err(BuildProblemError::BadHopMatrix);
        }
        let object_loads = app.object_loads(&entry_rates);
        let edge_traffic = app.edge_traffic(&entry_rates);
        Ok(MappingProblem {
            app,
            entry_rates,
            pes,
            hops,
            object_loads,
            edge_traffic,
        })
    }

    /// The application being mapped.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// Entry-point rates (invocations per cycle).
    pub fn entry_rates(&self) -> &[f64] {
        &self.entry_rates
    }

    /// The PE slots.
    pub fn pes(&self) -> &[PeSlot] {
        &self.pes
    }

    /// Number of objects to place.
    pub fn n_objects(&self) -> usize {
        self.app.objects().len()
    }

    /// Number of PE slots.
    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    /// Per-object compute load (baseline cycles per cycle).
    pub fn object_loads(&self) -> &[f64] {
        &self.object_loads
    }

    /// Per-edge traffic (bytes per cycle), in edge declaration order.
    pub fn edge_traffic(&self) -> &[f64] {
        &self.edge_traffic
    }

    /// Hop distance between the nodes of two PE slots.
    pub fn pe_hops(&self, a: usize, b: usize) -> f64 {
        self.hops[self.pes[a].node.0][self.pes[b].node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_dsoc::{MethodDef, ObjectDef};

    fn app2() -> Application {
        let mut b = Application::builder("t");
        let a = b.add_object(
            ObjectDef::new("a").with_method(MethodDef::oneway("x", 8).with_compute(10)),
        );
        let c = b.add_object(
            ObjectDef::new("c").with_method(MethodDef::oneway("y", 8).with_compute(20)),
        );
        b.connect(a, 0, c, 0, 1.0);
        b.entry(a, 0);
        b.build().unwrap()
    }

    fn hops2() -> Vec<Vec<f64>> {
        vec![vec![0.0, 2.0], vec![2.0, 0.0]]
    }

    #[test]
    fn valid_problem_caches_loads() {
        let p = MappingProblem::new(
            app2(),
            vec![0.01],
            vec![PeSlot::new(NodeId(0), 1.0), PeSlot::new(NodeId(1), 1.0)],
            hops2(),
        )
        .unwrap();
        assert_eq!(p.n_objects(), 2);
        assert_eq!(p.n_pes(), 2);
        assert!((p.object_loads()[0] - 0.1).abs() < 1e-12);
        assert!((p.object_loads()[1] - 0.2).abs() < 1e-12);
        assert!((p.pe_hops(0, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            MappingProblem::new(app2(), vec![0.01], vec![], hops2()).unwrap_err(),
            BuildProblemError::NoPes
        );
        assert_eq!(
            MappingProblem::new(app2(), vec![], vec![PeSlot::new(NodeId(0), 1.0)], hops2())
                .unwrap_err(),
            BuildProblemError::RateCountMismatch {
                provided: 0,
                expected: 1
            }
        );
        assert_eq!(
            MappingProblem::new(
                app2(),
                vec![0.01],
                vec![PeSlot::new(NodeId(5), 1.0)],
                hops2()
            )
            .unwrap_err(),
            BuildProblemError::BadHopMatrix
        );
        assert_eq!(
            MappingProblem::new(
                app2(),
                vec![0.01],
                vec![PeSlot::new(NodeId(0), 0.0)],
                hops2()
            )
            .unwrap_err(),
            BuildProblemError::BadCapacity(0.0)
        );
    }
}
