//! The analytic mapping cost model.
//!
//! Two terms, both derived from the rate propagation in `nw-dsoc`:
//!
//! * **Bottleneck load** — the most-loaded PE's utilization demand. In a
//!   pipelined system the sustainable throughput is `rate / max_load`, so
//!   minimizing the bottleneck maximizes throughput.
//! * **Communication** — bytes/cycle crossing the NoC weighted by hop
//!   distance (local calls are free); this is both NoC energy and a
//!   saturation-risk proxy.
//!
//! The weighted sum is what the MultiFlex-style mappers minimize. Weights
//! default to emphasizing throughput (`alpha = 1.0`) with a gentle
//! communication pressure (`beta = 0.05` per byte-hop/cycle).

use crate::problem::MappingProblem;

/// Weights of the two cost terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Weight of the bottleneck-load term.
    pub alpha: f64,
    /// Weight of the communication term (per byte-hop per cycle).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1.0,
            beta: 0.05,
        }
    }
}

/// Evaluated cost of one placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Utilization demand of the most-loaded PE (1.0 = fully busy).
    pub bottleneck_load: f64,
    /// Total byte-hops per cycle crossing the NoC.
    pub comm_byte_hops: f64,
    /// Weighted total.
    pub total: f64,
}

impl CostModel {
    /// Evaluates `placement` (object index → PE slot index) against the
    /// problem.
    ///
    /// # Panics
    ///
    /// Panics if `placement` has the wrong length or names a PE slot out of
    /// range — placements are produced by mappers, so this indicates a bug.
    pub fn evaluate(&self, problem: &MappingProblem, placement: &[usize]) -> CostBreakdown {
        assert_eq!(
            placement.len(),
            problem.n_objects(),
            "placement must cover every object"
        );
        let n_pes = problem.n_pes();
        let mut load = vec![0.0f64; n_pes];
        for (obj, &pe) in placement.iter().enumerate() {
            assert!(pe < n_pes, "placement names PE {pe} of {n_pes}");
            load[pe] += problem.object_loads()[obj] / problem.pes()[pe].capacity;
        }
        let bottleneck_load = load.iter().cloned().fold(0.0, f64::max);

        let mut comm = 0.0;
        for (e, &traffic) in problem.app().edges().iter().zip(problem.edge_traffic()) {
            let from_pe = placement[e.from.0];
            let to_pe = placement[e.to.0];
            comm += traffic * problem.pe_hops(from_pe, to_pe);
        }
        CostBreakdown {
            bottleneck_load,
            comm_byte_hops: comm,
            total: self.alpha * bottleneck_load + self.beta * comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PeSlot;
    use nw_dsoc::{Application, MethodDef, ObjectDef};
    use nw_types::NodeId;

    fn problem() -> MappingProblem {
        let mut b = Application::builder("t");
        let a = b.add_object(
            ObjectDef::new("a").with_method(MethodDef::oneway("x", 32).with_compute(100)),
        );
        let c = b.add_object(
            ObjectDef::new("c").with_method(MethodDef::oneway("y", 32).with_compute(100)),
        );
        b.connect(a, 0, c, 0, 1.0);
        b.entry(a, 0);
        MappingProblem::new(
            b.build().unwrap(),
            vec![0.002],
            vec![PeSlot::new(NodeId(0), 1.0), PeSlot::new(NodeId(1), 1.0)],
            vec![vec![0.0, 3.0], vec![3.0, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn colocated_placement_has_zero_comm_but_double_load() {
        let p = problem();
        let m = CostModel::default();
        let together = m.evaluate(&p, &[0, 0]);
        let apart = m.evaluate(&p, &[0, 1]);
        assert_eq!(together.comm_byte_hops, 0.0);
        assert!((together.bottleneck_load - 0.4).abs() < 1e-12); // 2×100×0.002
        assert!((apart.bottleneck_load - 0.2).abs() < 1e-12);
        // Apart: 32 B × 0.002/cyc × 3 hops (+ header-free model).
        assert!((apart.comm_byte_hops - 0.192).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_the_total() {
        let p = problem();
        let load_only = CostModel {
            alpha: 1.0,
            beta: 0.0,
        };
        let comm_only = CostModel {
            alpha: 0.0,
            beta: 1.0,
        };
        assert!(load_only.evaluate(&p, &[0, 1]).total < load_only.evaluate(&p, &[0, 0]).total);
        assert!(comm_only.evaluate(&p, &[0, 0]).total < comm_only.evaluate(&p, &[0, 1]).total);
    }

    #[test]
    fn capacity_scales_load() {
        let mut b = Application::builder("t");
        let a = b.add_object(
            ObjectDef::new("a").with_method(MethodDef::oneway("x", 8).with_compute(100)),
        );
        b.entry(a, 0);
        let p = MappingProblem::new(
            b.build().unwrap(),
            vec![0.002],
            vec![PeSlot::new(NodeId(0), 4.0)],
            vec![vec![0.0]],
        )
        .unwrap();
        let c = CostModel::default().evaluate(&p, &[0]);
        assert!((c.bottleneck_load - 0.05).abs() < 1e-12); // 0.2 / 4
    }

    #[test]
    #[should_panic(expected = "placement must cover")]
    fn wrong_length_placement_panics() {
        let p = problem();
        CostModel::default().evaluate(&p, &[0]);
    }
}
