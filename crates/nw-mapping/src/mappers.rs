//! Mapping algorithms, from naive baselines to simulated annealing.

use crate::cost::{CostBreakdown, CostModel};
use crate::problem::MappingProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A placement of objects onto PE slots, with its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// `placement[object] = pe slot index`.
    pub placement: Vec<usize>,
    /// Evaluated cost of the placement.
    pub cost: CostBreakdown,
}

/// A mapping algorithm.
///
/// Implementations must return a *valid* placement: one PE slot index per
/// object. They are deterministic given their construction parameters
/// (seeded RNGs), which keeps design-space exploration reproducible.
pub trait Mapper {
    /// Computes a mapping for the problem.
    fn map(&self, problem: &MappingProblem) -> Mapping;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

fn evaluated(problem: &MappingProblem, placement: Vec<usize>) -> Mapping {
    let cost = CostModel::default().evaluate(problem, &placement);
    Mapping { placement, cost }
}

/// Uniform random placement (the "no tool at all" baseline).
#[derive(Debug, Clone, Copy)]
pub struct RandomMapper {
    /// RNG seed.
    pub seed: u64,
}

impl Mapper for RandomMapper {
    fn map(&self, problem: &MappingProblem) -> Mapping {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let placement = (0..problem.n_objects())
            .map(|_| rng.gen_range(0..problem.n_pes()))
            .collect();
        evaluated(problem, placement)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Object `i` goes to PE `i mod n_pes` — ignores loads and traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinMapper;

impl Mapper for RoundRobinMapper {
    fn map(&self, problem: &MappingProblem) -> Mapping {
        let n = problem.n_pes();
        let placement = (0..problem.n_objects()).map(|i| i % n).collect();
        evaluated(problem, placement)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Greedy: places objects in descending load order, each on the PE that
/// minimizes the incremental total cost given the objects placed so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyLoadMapper;

impl Mapper for GreedyLoadMapper {
    fn map(&self, problem: &MappingProblem) -> Mapping {
        let n_obj = problem.n_objects();
        let n_pes = problem.n_pes();
        let mut order: Vec<usize> = (0..n_obj).collect();
        order.sort_by(|&a, &b| {
            problem.object_loads()[b]
                .partial_cmp(&problem.object_loads()[a])
                .expect("loads are finite")
        });

        let model = CostModel::default();
        let mut placement = vec![usize::MAX; n_obj];
        let mut pe_load = vec![0.0f64; n_pes];
        for &obj in &order {
            let mut best = (0usize, f64::INFINITY);
            for pe in 0..n_pes {
                // Incremental cost over the objects placed so far: the new
                // bottleneck plus the communication this object adds to its
                // already-placed neighbors.
                let load_here =
                    pe_load[pe] + problem.object_loads()[obj] / problem.pes()[pe].capacity;
                let bottleneck = pe_load
                    .iter()
                    .enumerate()
                    .map(|(q, &l)| if q == pe { load_here } else { l })
                    .fold(0.0, f64::max);
                let mut comm = 0.0;
                for (e, &traffic) in problem.app().edges().iter().zip(problem.edge_traffic()) {
                    let (other, here_is_from) = if e.from.0 == obj {
                        (e.to.0, true)
                    } else if e.to.0 == obj {
                        (e.from.0, false)
                    } else {
                        continue;
                    };
                    let other_pe = placement[other];
                    if other_pe == usize::MAX {
                        continue;
                    }
                    let _ = here_is_from;
                    comm += traffic * problem.pe_hops(pe, other_pe);
                }
                let c = model.alpha * bottleneck + model.beta * comm;
                if c < best.1 {
                    best = (pe, c);
                }
            }
            placement[obj] = best.0;
            pe_load[best.0] += problem.object_loads()[obj] / problem.pes()[best.0].capacity;
        }
        evaluated(problem, placement)
    }

    fn name(&self) -> &'static str {
        "greedy-load"
    }
}

/// Simulated annealing over move/swap neighborhoods.
///
/// The cooling schedule is geometric; the move set mixes single-object
/// relocations with object swaps (swaps preserve per-PE object counts, which
/// helps escape load-balance plateaus).
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealingMapper {
    /// Iteration budget.
    pub iterations: u32,
    /// Initial temperature (in cost units).
    pub t0: f64,
    /// Geometric cooling factor per iteration, in (0, 1).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulatedAnnealingMapper {
    fn default() -> Self {
        SimulatedAnnealingMapper {
            iterations: 20_000,
            t0: 0.5,
            cooling: 0.9995,
            seed: 0x5A_5EED,
        }
    }
}

impl Mapper for SimulatedAnnealingMapper {
    fn map(&self, problem: &MappingProblem) -> Mapping {
        let model = CostModel::default();
        // Seed with greedy: SA refines rather than starting cold.
        let mut current = GreedyLoadMapper.map(problem).placement;
        let mut cur_cost = model.evaluate(problem, &current).total;
        let mut best = current.clone();
        let mut best_cost = cur_cost;
        let n_obj = problem.n_objects();
        let n_pes = problem.n_pes();
        if n_obj == 0 || n_pes < 2 {
            return evaluated(problem, current);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = self.t0;
        for _ in 0..self.iterations {
            let mut trial = current.clone();
            if n_obj >= 2 && rng.gen_bool(0.3) {
                // Swap two objects' PEs.
                let a = rng.gen_range(0..n_obj);
                let b = rng.gen_range(0..n_obj);
                trial.swap(a, b);
            } else {
                // Move one object to a random PE.
                let o = rng.gen_range(0..n_obj);
                trial[o] = rng.gen_range(0..n_pes);
            }
            let c = model.evaluate(problem, &trial).total;
            let accept = c <= cur_cost || {
                let d = (cur_cost - c) / t.max(1e-12);
                rng.gen_bool(d.exp().clamp(0.0, 1.0))
            };
            if accept {
                current = trial;
                cur_cost = c;
                if c < best_cost {
                    best = current.clone();
                    best_cost = c;
                }
            }
            t *= self.cooling;
        }
        evaluated(problem, best)
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

/// Exhaustive search — optimal, feasible only for tiny instances.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveMapper {
    /// Refuses problems with more than this many candidate placements.
    pub max_candidates: u64,
}

impl Default for ExhaustiveMapper {
    fn default() -> Self {
        ExhaustiveMapper {
            max_candidates: 10_000_000,
        }
    }
}

impl Mapper for ExhaustiveMapper {
    /// # Panics
    ///
    /// Panics if `n_pes^n_objects` exceeds `max_candidates` — exhaustive
    /// search on such instances is a caller error, not a recoverable state.
    fn map(&self, problem: &MappingProblem) -> Mapping {
        let n_obj = problem.n_objects() as u32;
        let n_pes = problem.n_pes() as u64;
        let candidates = n_pes.checked_pow(n_obj).unwrap_or(u64::MAX);
        assert!(
            candidates <= self.max_candidates,
            "exhaustive search over {candidates} placements exceeds the limit"
        );
        let model = CostModel::default();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut placement = vec![0usize; n_obj as usize];
        for code in 0..candidates {
            let mut c = code;
            for slot in placement.iter_mut() {
                *slot = (c % n_pes) as usize;
                c /= n_pes;
            }
            let cost = model.evaluate(problem, &placement).total;
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((placement.clone(), cost));
            }
        }
        let (placement, _) = best.expect("at least one candidate");
        evaluated(problem, placement)
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PeSlot;
    use nw_dsoc::{Application, MethodDef, ObjectDef};
    use nw_types::NodeId;

    /// A 6-object pipeline with uneven loads on a 3-PE line.
    fn pipeline_problem() -> MappingProblem {
        let mut b = Application::builder("pipe");
        let weights = [200u64, 50, 120, 80, 160, 40];
        let ids: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                b.add_object(
                    ObjectDef::new(&format!("o{i}"))
                        .with_method(MethodDef::oneway("m", 32).with_compute(w)),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], 0, w[1], 0, 1.0);
        }
        b.entry(ids[0], 0);
        let app = b.build().unwrap();
        let hops = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ];
        MappingProblem::new(
            app,
            vec![0.004],
            (0..3).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
            hops,
        )
        .unwrap()
    }

    #[test]
    fn all_mappers_produce_valid_placements() {
        let p = pipeline_problem();
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomMapper { seed: 1 }),
            Box::new(RoundRobinMapper),
            Box::new(GreedyLoadMapper),
            Box::new(SimulatedAnnealingMapper::default()),
            Box::new(ExhaustiveMapper::default()),
        ];
        for m in &mappers {
            let r = m.map(&p);
            assert_eq!(r.placement.len(), p.n_objects(), "{}", m.name());
            assert!(r.placement.iter().all(|&pe| pe < p.n_pes()), "{}", m.name());
            assert!(r.cost.total.is_finite());
        }
    }

    #[test]
    fn quality_ordering_sa_beats_baselines() {
        let p = pipeline_problem();
        let random = RandomMapper { seed: 7 }.map(&p).cost.total;
        let greedy = GreedyLoadMapper.map(&p).cost.total;
        let sa = SimulatedAnnealingMapper::default().map(&p).cost.total;
        let optimal = ExhaustiveMapper::default().map(&p).cost.total;
        assert!(
            sa <= greedy + 1e-9,
            "SA {sa} must not lose to greedy {greedy}"
        );
        assert!(
            sa <= random + 1e-9,
            "SA {sa} must not lose to random {random}"
        );
        assert!(optimal <= sa + 1e-9, "optimal {optimal} bounds SA {sa}");
        // SA should get within 5% of optimal on this small instance.
        assert!(sa <= optimal * 1.05 + 1e-9, "SA {sa} vs optimal {optimal}");
    }

    #[test]
    fn greedy_balances_equal_objects() {
        let mut b = Application::builder("eq");
        let ids: Vec<_> = (0..4)
            .map(|i| {
                b.add_object(
                    ObjectDef::new(&format!("o{i}"))
                        .with_method(MethodDef::oneway("m", 8).with_compute(100)),
                )
            })
            .collect();
        for &i in &ids {
            b.entry(i, 0);
        }
        let p = MappingProblem::new(
            b.build().unwrap(),
            vec![0.001; 4],
            vec![PeSlot::new(NodeId(0), 1.0), PeSlot::new(NodeId(1), 1.0)],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        )
        .unwrap();
        let m = GreedyLoadMapper.map(&p);
        let on0 = m.placement.iter().filter(|&&x| x == 0).count();
        assert_eq!(
            on0, 2,
            "greedy must split 4 equal objects 2/2: {:?}",
            m.placement
        );
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let p = pipeline_problem();
        let a = SimulatedAnnealingMapper::default().map(&p);
        let b = SimulatedAnnealingMapper::default().map(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn single_pe_maps_everything_there() {
        let mut b = Application::builder("one");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("m", 8)));
        b.entry(a, 0);
        let p = MappingProblem::new(
            b.build().unwrap(),
            vec![0.001],
            vec![PeSlot::new(NodeId(0), 1.0)],
            vec![vec![0.0]],
        )
        .unwrap();
        for m in [
            SimulatedAnnealingMapper::default().map(&p),
            GreedyLoadMapper.map(&p),
            RoundRobinMapper.map(&p),
        ] {
            assert_eq!(m.placement, vec![0]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the limit")]
    fn exhaustive_refuses_huge_instances() {
        let p = pipeline_problem();
        ExhaustiveMapper { max_candidates: 10 }.map(&p);
    }
}
