//! MultiFlex-style automatic application-to-platform mapping.
//!
//! §7.2 of the paper: "Given base properties of the architecture, such as
//! predictable NoC latency and throughput, the tools can vastly simplify the
//! mapping of the DSOC objects on to the architecture, enabling rapid
//! exploration and optimization." §5.3 calls the manual alternative the
//! abstraction "grand canyon".
//!
//! This crate is those tools:
//!
//! * [`problem`] — the mapping problem: a DSOC [`Application`], entry rates,
//!   the platform's PE slots and the NoC hop-distance matrix.
//! * [`cost`] — the analytic cost model: bottleneck PE load (throughput
//!   limiter) plus communication volume weighted by hop distance.
//! * [`mappers`] — mapping algorithms from trivial baselines (random,
//!   round-robin) through greedy load balancing to simulated annealing and
//!   exhaustive search for small instances.
//! * [`dse`] — Pareto-front extraction for design-space exploration sweeps.
//!
//! [`Application`]: nw_dsoc::Application
//!
//! # Examples
//!
//! ```
//! use nw_dsoc::{Application, MethodDef, ObjectDef};
//! use nw_mapping::{MappingProblem, PeSlot, Mapper, mappers::GreedyLoadMapper};
//! use nw_types::NodeId;
//!
//! let mut b = Application::builder("demo");
//! let a = b.add_object(ObjectDef::new("a").with_method(
//!     MethodDef::oneway("in", 40).with_compute(100)));
//! let c = b.add_object(ObjectDef::new("c").with_method(
//!     MethodDef::oneway("out", 40).with_compute(100)));
//! b.connect(a, 0, c, 0, 1.0);
//! b.entry(a, 0);
//! let app = b.build()?;
//!
//! let problem = MappingProblem::new(
//!     app,
//!     vec![0.005],
//!     vec![PeSlot::new(NodeId(0), 1.0), PeSlot::new(NodeId(1), 1.0)],
//!     vec![vec![0.0, 1.0], vec![1.0, 0.0]],
//! )?;
//! let mapping = GreedyLoadMapper.map(&problem);
//! // Two equal objects spread across two equal PEs.
//! assert_ne!(mapping.placement[0], mapping.placement[1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost;
pub mod dse;
pub mod mappers;
pub mod problem;

pub use cost::{CostBreakdown, CostModel};
pub use dse::{evaluate_points, pareto_front, DsePoint};
pub use mappers::{
    ExhaustiveMapper, GreedyLoadMapper, Mapper, Mapping, RandomMapper, RoundRobinMapper,
    SimulatedAnnealingMapper,
};
pub use problem::{BuildProblemError, MappingProblem, PeSlot};
