//! Property tests for the mappers: validity on arbitrary problems and the
//! quality ordering guarantees that hold by construction.

use nw_dsoc::{Application, MethodDef, ObjectDef};
use nw_mapping::{
    CostModel, GreedyLoadMapper, Mapper, MappingProblem, PeSlot, RandomMapper, RoundRobinMapper,
    SimulatedAnnealingMapper,
};
use nw_types::NodeId;
use proptest::prelude::*;

/// Builds a random chain-with-branches application plus a ring-ish hop
/// matrix problem.
fn arb_problem() -> impl Strategy<Value = MappingProblem> {
    (
        2usize..10,                               // objects
        2usize..6,                                // PEs
        prop::collection::vec(10u64..300, 2..10), // compute weights
        0.0005f64..0.01,                          // entry rate
    )
        .prop_map(|(n_obj, n_pes, weights, rate)| {
            let n_obj = n_obj.min(weights.len());
            let mut b = Application::builder("arb");
            let ids: Vec<_> = (0..n_obj)
                .map(|i| {
                    b.add_object(ObjectDef::new(&format!("o{i}")).with_method(
                        MethodDef::oneway("m", 16 + (i as u64 % 48)).with_compute(weights[i]),
                    ))
                })
                .collect();
            for w in ids.windows(2) {
                b.connect(w[0], 0, w[1], 0, 1.0);
            }
            b.entry(ids[0], 0);
            let app = b.build().expect("chain is a valid DAG");
            let hops: Vec<Vec<f64>> = (0..n_pes)
                .map(|a| {
                    (0..n_pes)
                        .map(|c| {
                            let d = (a as i64 - c as i64).unsigned_abs() as f64;
                            d.min(n_pes as f64 - d)
                        })
                        .collect()
                })
                .collect();
            MappingProblem::new(
                app,
                vec![rate],
                (0..n_pes).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
                hops,
            )
            .expect("constructed problem is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mapper returns a valid placement whose self-reported cost
    /// matches an independent evaluation.
    #[test]
    fn placements_valid_and_costs_consistent(problem in arb_problem(), seed in any::<u64>()) {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomMapper { seed }),
            Box::new(RoundRobinMapper),
            Box::new(GreedyLoadMapper),
            Box::new(SimulatedAnnealingMapper { iterations: 2_000, seed, ..Default::default() }),
        ];
        for m in &mappers {
            let r = m.map(&problem);
            prop_assert_eq!(r.placement.len(), problem.n_objects(), "{}", m.name());
            prop_assert!(r.placement.iter().all(|&p| p < problem.n_pes()), "{}", m.name());
            let check = CostModel::default().evaluate(&problem, &r.placement);
            prop_assert!((check.total - r.cost.total).abs() < 1e-12, "{}", m.name());
            prop_assert!(r.cost.total.is_finite());
            prop_assert!(r.cost.bottleneck_load >= 0.0);
            prop_assert!(r.cost.comm_byte_hops >= 0.0);
        }
    }

    /// SA seeds from greedy and keeps the best state, so it can never
    /// report a worse cost than greedy.
    #[test]
    fn sa_never_worse_than_greedy(problem in arb_problem(), seed in any::<u64>()) {
        let greedy = GreedyLoadMapper.map(&problem);
        let sa = SimulatedAnnealingMapper { iterations: 3_000, seed, ..Default::default() }
            .map(&problem);
        prop_assert!(sa.cost.total <= greedy.cost.total + 1e-12);
    }

    /// The bottleneck term is a true lower bound: no placement can beat
    /// the heaviest single object on the fastest PE.
    #[test]
    fn bottleneck_lower_bound(problem in arb_problem(), seed in any::<u64>()) {
        let heaviest = problem
            .object_loads()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let best_capacity = problem
            .pes()
            .iter()
            .map(|p| p.capacity)
            .fold(f64::MIN, f64::max);
        let bound = heaviest / best_capacity;
        let sa = SimulatedAnnealingMapper { iterations: 2_000, seed, ..Default::default() }
            .map(&problem);
        prop_assert!(sa.cost.bottleneck_load >= bound - 1e-12);
    }
}
