//! Property tests for the event-driven transmit core.
//!
//! The engine's busy path is driven by an event wheel (router wakes keyed
//! on port `busy_until`, credit frees, queue pushes) instead of a per-cycle
//! scan of every router. These properties pin the contract that makes that
//! safe: under random traffic bursts on ring, mesh and crossbar topologies,
//! the event-driven path produces **bit-identical** `NocStats`, eject order
//! and delivery cycles versus the dense per-cycle reference scan
//! ([`Noc::tick_reference`]) — and stays bit-identical when ticks are
//! skipped entirely on the cycles `next_event_cycle` proves are dead.

use nw_noc::{Noc, NocConfig, Topology, TopologyKind};
use nw_sim::Clocked;
use nw_types::{Cycles, NodeId};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Ring),
        Just(TopologyKind::Mesh),
        Just(TopologyKind::Crossbar),
        // The shared-bus arbiter exercises the round-robin grant path.
        Just(TopologyKind::SharedBus),
    ]
}

/// A randomized traffic burst: at `cycle`, offer a packet `src -> dst` of
/// `len` payload bytes. Both engines see the identical offer sequence.
type Burst = (u8, usize, usize, usize);

fn bursts_strategy() -> impl Strategy<Value = Vec<Burst>> {
    prop::collection::vec((0u8..200, 0usize..20, 0usize..20, 0usize..64), 1..80)
}

/// One delivered packet, as observed at the eject interface.
#[derive(Debug, PartialEq, Eq)]
struct Delivery {
    cycle: u64,
    endpoint: usize,
    tag: u64,
    len: usize,
}

fn drain_ejects(noc: &mut Noc, n: usize, now: Cycles, out: &mut Vec<Delivery>) {
    for e in 0..n {
        while let Some(p) = noc.eject(NodeId(e)) {
            out.push(Delivery {
                cycle: now.0,
                endpoint: e,
                tag: p.tag,
                len: p.data.len(),
            });
        }
    }
}

fn inject_due(noc: &mut Noc, bursts: &[Burst], n: usize, now: Cycles) {
    for &(cycle, s, d, len) in bursts {
        if cycle as u64 == now.0 {
            let _ = noc.try_inject(
                NodeId(s % n),
                NodeId(d % n),
                vec![cycle; len],
                (cycle as u64) << 8 | (s as u64),
                now,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ticked every cycle, the event-driven transmit pass and the dense
    /// full-scan reference trace exactly the same simulation: same
    /// deliveries at the same cycles in the same order, same statistics
    /// down to the latency histogram buckets.
    #[test]
    fn event_path_matches_reference_scan(
        kind in kind_strategy(),
        n in 4usize..17,
        bursts in bursts_strategy(),
    ) {
        let mk = || {
            let topo = Topology::build(kind, n, 2).expect("valid topology");
            Noc::new(topo, NocConfig::default())
        };
        let mut ev = mk();
        let mut rf = mk();
        let mut ev_seen = Vec::new();
        let mut rf_seen = Vec::new();
        let mut now = Cycles(0);
        while now.0 < 6_000 {
            inject_due(&mut ev, &bursts, n, now);
            inject_due(&mut rf, &bursts, n, now);
            ev.tick(now);
            rf.tick_reference(now);
            drain_ejects(&mut ev, n, now, &mut ev_seen);
            drain_ejects(&mut rf, n, now, &mut rf_seen);
            if now.0 > 256 && ev.is_quiescent() && rf.is_quiescent() {
                break;
            }
            now += Cycles(1);
        }
        prop_assert!(ev.is_quiescent(), "event path must drain");
        prop_assert!(rf.is_quiescent(), "reference path must drain");
        prop_assert_eq!(ev_seen, rf_seen, "eject order and delivery cycles");
        prop_assert_eq!(ev.stats(), rf.stats(), "statistics incl. histogram");
    }

    /// Skipping every cycle the engine proves dead — ticking only when
    /// `next_event_cycle` answers `<= now` — changes nothing: deliveries
    /// land on the same cycles with the same statistics as the per-cycle
    /// reference. This is the contract the platform's fast-forward relies
    /// on; an overshooting `next_event_cycle` would delay a delivery here.
    #[test]
    fn fast_forward_skips_only_dead_cycles(
        kind in kind_strategy(),
        n in 4usize..17,
        bursts in bursts_strategy(),
    ) {
        let mk = || {
            let topo = Topology::build(kind, n, 3).expect("valid topology");
            Noc::new(topo, NocConfig::default())
        };
        let mut ff = mk();
        let mut rf = mk();
        let mut ff_seen = Vec::new();
        let mut rf_seen = Vec::new();
        let mut ticked = 0u64;
        let mut now = Cycles(0);
        while now.0 < 6_000 {
            inject_due(&mut ff, &bursts, n, now);
            inject_due(&mut rf, &bursts, n, now);
            if ff.next_event_cycle(now).is_some_and(|c| c <= now) {
                ff.tick(now);
                ticked += 1;
            }
            rf.tick_reference(now);
            drain_ejects(&mut ff, n, now, &mut ff_seen);
            drain_ejects(&mut rf, n, now, &mut rf_seen);
            if now.0 > 256 && ff.is_quiescent() && rf.is_quiescent() {
                break;
            }
            now += Cycles(1);
        }
        prop_assert!(ff.is_quiescent(), "fast-forward path must drain");
        prop_assert_eq!(ff_seen, rf_seen, "skipped cycles must be dead");
        prop_assert_eq!(ff.stats(), rf.stats());
        // The skip must actually skip: multi-cycle serialization and wire
        // latency guarantee dead cycles under this traffic.
        prop_assert!(ticked < now.0 + 1, "some cycles should be skipped");
    }
}
