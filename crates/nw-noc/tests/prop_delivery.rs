//! Property tests: the NoC never loses, duplicates or corrupts packets, on
//! any topology, and latency respects physics.

use nw_noc::{Noc, NocConfig, Topology, TopologyKind};
use nw_sim::Clocked;
use nw_types::{Cycles, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::SharedBus),
        Just(TopologyKind::Ring),
        Just(TopologyKind::Mesh),
        Just(TopologyKind::Torus),
        Just(TopologyKind::FatTree),
        Just(TopologyKind::Crossbar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted packet is delivered exactly once with its payload
    /// intact, no matter the topology, size or traffic pattern.
    #[test]
    fn conservation_and_integrity(
        kind in kind_strategy(),
        n in 2usize..20,
        sends in prop::collection::vec((0usize..20, 0usize..20, 0usize..48), 1..60),
    ) {
        let topo = Topology::build(kind, n, 1).expect("valid topology");
        let mut noc = Noc::new(topo, NocConfig::default());
        let mut expected: HashMap<u64, (NodeId, usize)> = HashMap::new();
        let mut accepted = 0u64;
        let mut now = Cycles(0);
        for (i, &(s, d, len)) in sends.iter().enumerate() {
            let src = NodeId(s % n);
            let dst = NodeId(d % n);
            let tag = i as u64;
            if noc.try_inject(src, dst, vec![i as u8; len], tag, now).is_ok() {
                expected.insert(tag, (dst, len));
                accepted += 1;
            }
            noc.tick(now);
            now += Cycles(1);
        }
        let mut got = 0u64;
        let deadline = now.0 + 50_000;
        while got < accepted {
            noc.tick(now);
            for e in 0..n {
                while let Some(p) = noc.eject(NodeId(e)) {
                    let (dst, len) = expected.remove(&p.tag)
                        .expect("no duplicate or unknown deliveries");
                    prop_assert_eq!(dst, NodeId(e), "delivered to the right endpoint");
                    prop_assert_eq!(p.data.len(), len, "payload intact");
                    got += 1;
                }
            }
            now += Cycles(1);
            prop_assert!(now.0 < deadline, "network must drain ({got}/{accepted})");
        }
        prop_assert!(expected.is_empty());
        prop_assert!(noc.is_quiescent());
    }

    /// Delivered latency is at least the physical lower bound:
    /// hops x (link latency + router delay) + serialization.
    #[test]
    fn latency_lower_bound(
        kind in kind_strategy(),
        n in 2usize..17,
        link_latency in 1u64..8,
        payload in 0usize..64,
    ) {
        let topo = Topology::build(kind, n, link_latency).expect("valid topology");
        let hops = topo.hops(0, n - 1) as u64;
        let cfg = NocConfig::default();
        let mut noc = Noc::new(topo, cfg);
        noc.try_inject(NodeId(0), NodeId(n - 1), vec![0; payload], 0, Cycles(0))
            .expect("empty NI accepts");
        let mut now = Cycles(0);
        let p = loop {
            noc.tick(now);
            if let Some(p) = noc.eject(NodeId(n - 1)) { break p; }
            now += Cycles(1);
            prop_assert!(now.0 < 100_000);
        };
        let ser = p.flits(cfg.flit_bytes);
        let bound = hops * (link_latency + cfg.router_delay) + ser.min(1);
        prop_assert!(now.0 >= bound, "latency {} below physical bound {}", now.0, bound);
    }
}
