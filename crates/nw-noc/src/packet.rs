//! Packets and their on-wire flit accounting.

use nw_types::{Bytes, Cycles, NodeId};

/// Unique packet identifier assigned at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// A packet travelling on the NoC.
///
/// The `data` bytes are carried verbatim (the DSOC runtime puts marshalled
/// method invocations here); `tag` is an opaque caller cookie for
/// correlating requests and replies without decoding the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Identifier assigned by the NoC at injection.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload bytes carried end to end.
    pub data: Vec<u8>,
    /// Caller correlation cookie.
    pub tag: u64,
    /// Cycle at which the packet was accepted for injection.
    pub injected_at: Cycles,
}

impl Packet {
    /// NoC header overhead added to every packet on the wire (route +
    /// sequence + tag), in bytes.
    pub const HEADER_BYTES: u64 = 8;

    /// Size on the wire: payload plus NoC header.
    pub fn wire_bytes(&self) -> Bytes {
        Bytes(self.data.len() as u64 + Self::HEADER_BYTES)
    }

    /// Number of flits this packet occupies for a given flit width.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bytes` is zero.
    pub fn flits(&self, flit_bytes: u64) -> u64 {
        self.wire_bytes().div_ceil_by(flit_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(data_len: usize) -> Packet {
        Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(1),
            data: vec![0; data_len],
            tag: 0,
            injected_at: Cycles::ZERO,
        }
    }

    #[test]
    fn wire_size_includes_header() {
        assert_eq!(mk(0).wire_bytes(), Bytes(8));
        assert_eq!(mk(32).wire_bytes(), Bytes(40));
    }

    #[test]
    fn flit_counts_round_up() {
        // 8-byte flits: 40 wire bytes = 5 flits.
        assert_eq!(mk(32).flits(8), 5);
        // 41 wire bytes = 6 flits.
        assert_eq!(mk(33).flits(8), 6);
        // Empty payload still needs the header flit.
        assert_eq!(mk(0).flits(16), 1);
    }

    #[test]
    fn display_of_packet_id() {
        assert_eq!(PacketId(7).to_string(), "pkt7");
    }
}
