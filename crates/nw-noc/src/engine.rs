//! The cycle-stepped NoC engine.
//!
//! Timing model: packet-granular virtual cut-through. Each router holds a
//! bounded pool of packet buffers; a packet crossing a link occupies the
//! link for `ceil(flits / width)` cycles (serialization) plus the link's
//! wire latency and a fixed per-hop router pipeline delay. Transfers start
//! only when the downstream router has a free buffer (credit flow control),
//! so congestion back-pressures all the way to the network interfaces.
//! Injection additionally requires *two* free slots at the local router
//! (bubble flow control), which keeps rings and tori deadlock-free.
//!
//! Shared-medium routers (the bus arbiter) serialize all their ports through
//! a single round-robin grant — this is what makes [`TopologyKind::SharedBus`]
//! saturate at one transfer at a time while the crossbar core switches all
//! ports in parallel.
//!
//! [`TopologyKind::SharedBus`]: crate::topology::TopologyKind::SharedBus

use crate::packet::{Packet, PacketId};
use crate::topology::Topology;
use nw_obs::{LinkLoad, NocHeatmap, RouterLoad, TraceEvent, TraceSink};
use nw_sim::{Clocked, Counter, EventQueue, Histogram};
use nw_types::{Cycles, NodeId};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Tuning knobs of the NoC timing model.
#[derive(Debug, Clone, Copy)]
pub struct NocConfig {
    /// Link width in bytes per flit (default 8: 64-bit links).
    pub flit_bytes: u64,
    /// Packet buffers per router (default 8).
    pub input_buffer: usize,
    /// Network-interface injection queue depth per endpoint (default 64).
    pub ni_capacity: usize,
    /// Router pipeline delay added per hop, in cycles (default 1).
    pub router_delay: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            flit_bytes: 8,
            input_buffer: 8,
            ni_capacity: 64,
            router_delay: 1,
        }
    }
}

/// Why an injection attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The endpoint's NI queue is full (back-pressure); retry later.
    NiFull,
    /// The source endpoint index is out of range.
    BadSource(NodeId),
    /// The destination endpoint index is out of range.
    BadDestination(NodeId),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NiFull => write!(f, "network interface queue full"),
            InjectError::BadSource(n) => write!(f, "source endpoint {n} out of range"),
            InjectError::BadDestination(n) => write!(f, "destination endpoint {n} out of range"),
        }
    }
}

impl std::error::Error for InjectError {}

#[derive(Debug, Clone)]
struct OutPort {
    to: usize,
    latency: u64,
    width: u64,
    busy_until: u64,
    queue: VecDeque<Packet>,
    /// Permanently dead (hard link fault). Routing tables are recomputed
    /// to avoid dead ports, so their queues stay empty; the flag makes
    /// [`Noc::fail_link`] idempotent and lets the audit pin the invariant.
    down: bool,
}

#[derive(Debug, Clone)]
struct RouterState {
    ports: Vec<OutPort>,
    shared: bool,
    shared_busy_until: u64,
    rr_next: usize,
    input_free: usize,
    ni_in: VecDeque<Packet>,
    eject: VecDeque<Packet>,
    /// Packets sitting in this router's output-port queues. Kept so the
    /// per-cycle transmit scan can skip quiescent routers without walking
    /// their ports (the dominant cost on large, mostly idle fabrics).
    queued: usize,
}

#[derive(Debug, Clone)]
struct Arrival {
    router: usize,
    packet: Packet,
}

/// Per-link load accumulators (indexed like the router's ports).
#[derive(Debug, Clone, Copy, Default)]
struct LinkCounter {
    busy_cycles: u64,
    packets: u64,
    flits: u64,
}

/// Per-router occupancy accumulators. The queue integral is event-driven:
/// settled (occupancy x elapsed added) immediately before every `queued`
/// mutation, so it is exact under fast-forwarding schedulers that never
/// visit the skipped cycles.
#[derive(Debug, Clone, Copy, Default)]
struct RouterCounter {
    queue_integral: u64,
    last_settle: u64,
    peak_queue: usize,
    delivered: u64,
}

/// Opt-in heatmap accounting, one slot per router. `None` until
/// [`Noc::enable_obs`] — the disabled cost on every hot path is a single
/// `Option` branch.
#[derive(Debug, Clone)]
struct ObsCounters {
    links: Vec<Vec<LinkCounter>>,
    routers: Vec<RouterCounter>,
}

/// Aggregate NoC statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NocStats {
    /// Packets accepted into NI queues.
    pub injected: u64,
    /// Packets delivered to their destination eject queue.
    pub delivered: u64,
    /// Injection attempts refused because the NI was full.
    pub refused: u64,
    /// Sum of flits × hops transported (link occupancy proxy).
    pub flit_hops: u64,
    /// End-to-end packet latency (NI entry to destination arrival).
    pub latency: Histogram,
}

/// The scalar counters of [`NocStats`], without the latency histogram.
///
/// [`Noc::counts`] hands this out by value on hot paths (per-cycle harness
/// loops, assertions) where cloning the 65-bucket histogram that
/// [`Noc::stats`] snapshots would be pure overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocCounts {
    /// Packets accepted into NI queues.
    pub injected: u64,
    /// Packets delivered to their destination eject queue.
    pub delivered: u64,
    /// Injection attempts refused because the NI was full.
    pub refused: u64,
    /// Sum of flits × hops transported (link occupancy proxy).
    pub flit_hops: u64,
}

/// A simulated network-on-chip: topology + routers + in-flight transfers.
///
/// # Examples
///
/// ```
/// use nw_noc::{Noc, NocConfig, Topology, TopologyKind};
/// use nw_sim::Clocked;
/// use nw_types::{Cycles, NodeId};
///
/// let topo = Topology::build(TopologyKind::Mesh, 16, 1)?;
/// let mut noc = Noc::new(topo, NocConfig::default());
/// noc.try_inject(NodeId(0), NodeId(15), vec![1, 2, 3], 42, Cycles(0)).unwrap();
/// let mut now = Cycles(0);
/// let pkt = loop {
///     noc.tick(now);
///     if let Some(p) = noc.eject(NodeId(15)) { break p; }
///     now += Cycles(1);
///     assert!(now.0 < 1000, "packet should arrive quickly");
/// };
/// assert_eq!(pkt.data, vec![1, 2, 3]);
/// assert_eq!(pkt.tag, 42);
/// # Ok::<(), nw_noc::topology::BuildTopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Noc {
    topo: Topology,
    cfg: NocConfig,
    routers: Vec<RouterState>,
    arrivals: EventQueue<Arrival>,
    next_id: u64,
    injected: Counter,
    delivered: Counter,
    refused: Counter,
    flit_hops: Counter,
    latency: Histogram,
    /// Packets waiting in NI queues across all endpoints. Lets `drain_ni`
    /// skip the per-endpoint scan entirely on quiescent cycles (the same
    /// active-set treatment the transmit scan's `queued` counter provides).
    ni_pending: usize,
    /// Packets queued on output ports across all routers (sum of the
    /// per-router `queued` counters) — the transmit scan's global gate.
    queued_total: usize,
    /// Packets delivered but not yet taken via [`Noc::eject`].
    eject_pending: usize,
    /// Timed router wakes: `(cycle, router)` entries meaning "router may be
    /// able to fire at `cycle`" (a port or shared medium frees then). The
    /// event-wheel that lets `transmit` visit only routers with something to
    /// do, and `next_event_cycle` answer with the true next busy-path event.
    wakes: EventQueue<usize>,
    /// Earliest pending wake cycle per router (`u64::MAX` = none). Bounds
    /// the wheel: a wake is only scheduled when it precedes every pending
    /// wake of that router; later needs are rediscovered when the earlier
    /// wake fires and the router is re-examined.
    wake_at: Vec<u64>,
    /// Reverse adjacency: `preds[r]` lists routers with a link into `r`.
    /// When a buffer slot frees at `r` (credit appears), these are the
    /// routers whose blocked output ports may become able to fire.
    preds: Vec<Vec<usize>>,
    /// Scratch worklist of routers to visit this transmit pass, ordered by
    /// router index so credit contention resolves exactly as the dense
    /// ascending scan does. Kept allocated across ticks.
    ready: BTreeSet<usize>,
    /// Whether endpoint `r`'s NI head can make progress right now (local
    /// destination, or remote with the bubble-rule two free slots).
    ni_ready: Vec<bool>,
    /// Number of `true` entries in `ni_ready` — `drain_ni`'s gate and the
    /// NI contribution to `next_event_cycle`.
    ni_ready_count: usize,
    /// Heatmap accounting, present only after [`Noc::enable_obs`].
    obs: Option<ObsCounters>,
    /// Permanently dead directed links as `(router, port)` pairs, in
    /// failure order — the live input to route recomputation.
    dead_links: Vec<(usize, usize)>,
    /// Payload buffers of fault-dropped packets, held for the platform to
    /// recycle into its payload pool (the engine does not own the pool).
    dropped_buffers: Vec<Vec<u8>>,
    /// Packets discarded by fault injection (explicit drops plus packets
    /// stranded by disconnection).
    dropped_packets: u64,
    /// Flits those discarded packets carried.
    dropped_flits: u64,
    /// Packets whose payload was corrupted in place by fault injection.
    corrupted_packets: u64,
}

impl Noc {
    /// Builds the engine for a topology.
    ///
    /// Buffer pools are provisioned per *input port*: a router's credit pool
    /// is `input_buffer x in-degree`, so high-radix switches (the crossbar
    /// core) are not starved relative to low-radix mesh routers.
    pub fn new(topo: Topology, cfg: NocConfig) -> Self {
        let mut in_degree = vec![0usize; topo.n_routers()];
        for r in 0..topo.n_routers() {
            for l in topo.links_of(r) {
                in_degree[l.to] += 1;
            }
        }
        let mut preds = vec![Vec::new(); topo.n_routers()];
        for r in 0..topo.n_routers() {
            for l in topo.links_of(r) {
                if !preds[l.to].contains(&r) {
                    preds[l.to].push(r);
                }
            }
        }
        let routers = (0..topo.n_routers())
            .map(|r| RouterState {
                ports: topo
                    .links_of(r)
                    .iter()
                    .map(|l| OutPort {
                        to: l.to,
                        latency: l.latency,
                        width: l.width,
                        busy_until: 0,
                        queue: VecDeque::new(),
                        down: false,
                    })
                    .collect(),
                shared: topo.is_shared(r),
                shared_busy_until: 0,
                rr_next: 0,
                input_free: cfg.input_buffer * in_degree[r].max(1),
                ni_in: VecDeque::new(),
                eject: VecDeque::new(),
                queued: 0,
            })
            .collect();
        let n_routers = topo.n_routers();
        let n_endpoints = topo.n_endpoints();
        Noc {
            topo,
            cfg,
            routers,
            arrivals: EventQueue::new(),
            next_id: 0,
            injected: Counter::new(),
            delivered: Counter::new(),
            refused: Counter::new(),
            flit_hops: Counter::new(),
            latency: Histogram::new(),
            ni_pending: 0,
            queued_total: 0,
            eject_pending: 0,
            wakes: EventQueue::new(),
            wake_at: vec![u64::MAX; n_routers],
            preds,
            ready: BTreeSet::new(),
            ni_ready: vec![false; n_endpoints],
            ni_ready_count: 0,
            obs: None,
            dead_links: Vec::new(),
            dropped_buffers: Vec::new(),
            dropped_packets: 0,
            dropped_flits: 0,
            corrupted_packets: 0,
        }
    }

    /// Turns on per-link utilization and per-router queue-occupancy
    /// accounting (counters start at zero from the current state). Pure
    /// observation: enabling it changes no routing or timing decision.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(ObsCounters {
                links: self
                    .routers
                    .iter()
                    .map(|r| vec![LinkCounter::default(); r.ports.len()])
                    .collect(),
                routers: vec![RouterCounter::default(); self.routers.len()],
            });
        }
    }

    /// Settles router `r`'s queue-occupancy integral up to `now`. Must run
    /// before every mutation of `routers[r].queued` so each occupancy level
    /// is weighted by exactly the cycles it persisted.
    #[inline]
    fn obs_settle(&mut self, r: usize, now: u64) {
        if let Some(obs) = self.obs.as_mut() {
            let c = &mut obs.routers[r];
            c.queue_integral += self.routers[r].queued as u64 * (now - c.last_settle);
            c.last_settle = now;
        }
    }

    /// Snapshot of the heatmap counters, with every router's occupancy
    /// integral extended to `now`. `None` until [`Noc::enable_obs`].
    pub fn heatmap(&self, now: Cycles) -> Option<NocHeatmap> {
        let obs = self.obs.as_ref()?;
        let mut links = Vec::new();
        for (r, ports) in obs.links.iter().enumerate() {
            for (p, c) in ports.iter().enumerate() {
                if c.packets > 0 {
                    links.push(LinkLoad {
                        router: r,
                        port: p,
                        to: self.routers[r].ports[p].to,
                        busy_cycles: c.busy_cycles,
                        packets: c.packets,
                        flits: c.flits,
                    });
                }
            }
        }
        let routers = obs
            .routers
            .iter()
            .enumerate()
            .filter_map(|(r, c)| {
                let pending = self.routers[r].queued as u64 * now.0.saturating_sub(c.last_settle);
                let integral = c.queue_integral + pending;
                (integral > 0 || c.delivered > 0).then_some(RouterLoad {
                    router: r,
                    queue_integral: integral,
                    peak_queue: c.peak_queue,
                    delivered: c.delivered,
                })
            })
            .collect();
        Some(NocHeatmap {
            window: now.0,
            links,
            routers,
        })
    }

    /// The topology this engine runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The timing configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Offers a packet for injection at endpoint `src`.
    ///
    /// On success the packet is queued at the source network interface and
    /// its latency clock starts at `now`.
    ///
    /// # Errors
    ///
    /// [`InjectError::NiFull`] when the NI queue is at capacity (the caller
    /// should stall and retry — this is the back-pressure interface);
    /// [`InjectError::BadSource`] / [`InjectError::BadDestination`] for
    /// out-of-range endpoints.
    pub fn try_inject(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: Vec<u8>,
        tag: u64,
        now: Cycles,
    ) -> Result<PacketId, InjectError> {
        let n = self.topo.n_endpoints();
        if src.0 >= n {
            return Err(InjectError::BadSource(src));
        }
        if dst.0 >= n {
            return Err(InjectError::BadDestination(dst));
        }
        if self.routers[src.0].ni_in.len() >= self.cfg.ni_capacity {
            self.refused.incr();
            return Err(InjectError::NiFull);
        }
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let was_empty = self.routers[src.0].ni_in.is_empty();
        self.routers[src.0].ni_in.push_back(Packet {
            id,
            src,
            dst,
            data,
            tag,
            injected_at: now,
        });
        self.ni_pending += 1;
        // A push onto an empty NI creates a new head; readiness of a
        // non-empty NI is a property of its unchanged front.
        if was_empty && !self.ni_ready[src.0] && (dst == src || self.routers[src.0].input_free >= 2)
        {
            self.ni_ready[src.0] = true;
            self.ni_ready_count += 1;
        }
        self.injected.incr();
        Ok(id)
    }

    /// Free slots in the NI queue of endpoint `node` (0 when out of range).
    pub fn ni_free(&self, node: NodeId) -> usize {
        if node.0 >= self.topo.n_endpoints() {
            return 0;
        }
        self.cfg.ni_capacity - self.routers[node.0].ni_in.len()
    }

    /// Takes the next delivered packet at endpoint `node`, if any.
    pub fn eject(&mut self, node: NodeId) -> Option<Packet> {
        let p = self.routers.get_mut(node.0)?.eject.pop_front();
        if p.is_some() {
            self.eject_pending -= 1;
        }
        p
    }

    /// Packets delivered but not yet taken via [`Noc::eject`] — zero means
    /// an arrival-routing sweep over the endpoints would be a no-op.
    pub fn eject_pending(&self) -> usize {
        self.eject_pending
    }

    /// Whether ticking the engine now could move anything: a timed transfer
    /// is in flight, an NI holds packets awaiting injection, or an output
    /// port holds queued packets. Eject queues don't count — draining them
    /// is the caller's move, not the tick's.
    pub fn has_work(&self) -> bool {
        !self.arrivals.is_empty() || self.ni_pending > 0 || self.queued_total > 0
    }

    /// The earliest cycle `>= now` at which ticking can change engine state,
    /// or `None` when no tick before the next external injection can move
    /// anything. Exact on the busy path: queued traffic that is stalled on
    /// multi-cycle link occupancy answers the cycle the earliest port frees
    /// (the event-wheel head) rather than `now`, so saturated fabrics
    /// fast-forward across serialization stalls. Traffic blocked purely on
    /// credit contributes nothing — the fire or delivery that frees the
    /// buffer is itself a tracked event that re-arms the wheel.
    pub fn next_event_cycle(&self, now: Cycles) -> Option<Cycles> {
        let mut next: Option<Cycles> = None;
        let mut fold = |c: Cycles| {
            next = Some(next.map_or(c, |n: Cycles| n.min(c)));
        };
        if self.ni_ready_count > 0 {
            fold(now);
        }
        if let Some(d) = self.arrivals.next_due() {
            fold(d.max(now));
        }
        if self.queued_total > 0 {
            if let Some(d) = self.wakes.next_due() {
                fold(d.max(now));
            }
        }
        next
    }

    /// Whether ticking at `now` would change engine state: an arrival or
    /// router wake is due, or an NI head can inject. The platform's
    /// active-set scheduler uses this to skip the tick entirely on cycles
    /// where the fabric, though loaded, is provably stalled.
    pub fn due_now(&self, now: Cycles) -> bool {
        self.ni_ready_count > 0
            || self.arrivals.next_due().is_some_and(|d| d <= now)
            || (self.queued_total > 0 && self.wakes.next_due().is_some_and(|d| d <= now))
    }

    /// Packets accepted but not yet delivered to an eject queue.
    pub fn in_network(&self) -> u64 {
        self.injected.count() - self.delivered.count()
    }

    /// Snapshot of the aggregate statistics, including a clone of the
    /// latency histogram — report assembly only. Hot paths that need the
    /// scalar counters should use [`Noc::counts`], and the distribution can
    /// be read in place through [`Noc::latency_hist`].
    pub fn stats(&self) -> NocStats {
        NocStats {
            injected: self.injected.count(),
            delivered: self.delivered.count(),
            refused: self.refused.count(),
            flit_hops: self.flit_hops.count(),
            latency: self.latency.clone(),
        }
    }

    /// The scalar statistics counters, without cloning the histogram.
    pub fn counts(&self) -> NocCounts {
        NocCounts {
            injected: self.injected.count(),
            delivered: self.delivered.count(),
            refused: self.refused.count(),
            flit_hops: self.flit_hops.count(),
        }
    }

    /// The end-to-end latency distribution, borrowed.
    pub fn latency_hist(&self) -> &Histogram {
        &self.latency
    }

    /// True when nothing is queued or in flight anywhere. O(1): answered
    /// from the same pending-work counters that gate the tick phases, not
    /// a walk of every router's ports.
    pub fn is_quiescent(&self) -> bool {
        self.arrivals.is_empty()
            && self.ni_pending == 0
            && self.queued_total == 0
            && self.eject_pending == 0
    }

    // --- Fault-injection hooks -------------------------------------------
    //
    // Deterministic entry points for `nw-fault` campaigns, driven by the
    // platform at exact cycle boundaries. None of them consults any clock
    // or entropy source; all of them maintain the active-set bookkeeping
    // (queued/ni_pending/input_free/wake wheel) exactly, so the engine
    // stays bit-identical across the dense and event-driven tick paths
    // with faults applied.

    /// Transient link fault: port `(router, port)` transmits nothing before
    /// cycle `until`. Reuses the serialization-occupancy mechanism, so a
    /// stalled port re-arms the event wheel exactly like a long transfer.
    ///
    /// # Panics
    ///
    /// Panics if `router` or `port` is out of range.
    pub fn stall_port(&mut self, router: usize, port: usize, until: u64) {
        let p = &mut self.routers[router].ports[port];
        p.busy_until = p.busy_until.max(until);
        if self.routers[router].queued > 0 {
            self.schedule_wake(router, until);
        }
    }

    /// Whole-router stall: every output of `router` (and its shared medium,
    /// if any) is held busy until cycle `until`.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of range.
    pub fn stall_router(&mut self, router: usize, until: u64) {
        let rt = &mut self.routers[router];
        for p in &mut rt.ports {
            p.busy_until = p.busy_until.max(until);
        }
        rt.shared_busy_until = rt.shared_busy_until.max(until);
        if rt.queued > 0 {
            self.schedule_wake(router, until);
        }
    }

    /// Permanent hard fault on directed link `(router, port)`: the port is
    /// marked down, every routing table is recomputed around the dead set,
    /// and packets queued on the port are re-dispatched along the new
    /// routes (or deterministically dropped when the destination became
    /// unreachable). Idempotent. Returns `true` when this call newly
    /// killed the link.
    ///
    /// # Panics
    ///
    /// Panics if `router` or `port` is out of range.
    pub fn fail_link(&mut self, router: usize, port: usize, now: Cycles) -> bool {
        if self.routers[router].ports[port].down {
            return false;
        }
        self.routers[router].ports[port].down = true;
        self.dead_links.push((router, port));
        self.topo.recompute_routes(&self.dead_links);
        // Strand-and-redirect: traffic queued on the dead port follows the
        // recomputed tables or drops.
        let mut stranded: VecDeque<Packet> =
            std::mem::take(&mut self.routers[router].ports[port].queue);
        while let Some(pkt) = stranded.pop_front() {
            self.obs_settle(router, now.0);
            self.routers[router].queued -= 1;
            self.queued_total -= 1;
            match self.topo.next_hop(router, pkt.dst.0) {
                Some(new_port) => {
                    debug_assert_ne!(new_port, port, "reroute must avoid the dead port");
                    self.obs_settle(router, now.0);
                    self.routers[router].ports[new_port].queue.push_back(pkt);
                    self.routers[router].queued += 1;
                    self.queued_total += 1;
                    self.schedule_wake(router, now.0);
                }
                None => {
                    // Unreachable: the reserved buffer slot frees.
                    self.routers[router].input_free += 1;
                    if self.routers[router].input_free == 1 {
                        self.wake_preds(router, now.0);
                    }
                    self.ni_credit_check(router);
                    self.drop_packet(pkt);
                }
            }
        }
        true
    }

    /// Drop the head-of-line packet at `router`: the first queued packet in
    /// port-index order, else the NI head. Returns whether anything was
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of range.
    pub fn drop_next(&mut self, router: usize, now: Cycles) -> bool {
        let nports = self.routers[router].ports.len();
        for p in 0..nports {
            if self.routers[router].ports[p].queue.is_empty() {
                continue;
            }
            self.obs_settle(router, now.0);
            let pkt = self.routers[router].ports[p]
                .queue
                .pop_front()
                .expect("checked non-empty");
            self.routers[router].queued -= 1;
            self.queued_total -= 1;
            self.routers[router].input_free += 1;
            if self.routers[router].input_free == 1 {
                self.wake_preds(router, now.0);
            }
            self.ni_credit_check(router);
            self.drop_packet(pkt);
            return true;
        }
        // No port queue held anything: take the NI head instead.
        if let Some(pkt) = self.routers[router].ni_in.pop_front() {
            self.ni_pending -= 1;
            // Readiness described the popped head; recompute for the new
            // front so `drain_ni`'s gate stays exact.
            if router < self.ni_ready.len() && self.ni_ready[router] {
                self.ni_ready[router] = false;
                self.ni_ready_count -= 1;
            }
            if router < self.ni_ready.len() {
                if let Some(front) = self.routers[router].ni_in.front() {
                    if front.dst.0 == router || self.routers[router].input_free >= 2 {
                        self.ni_ready[router] = true;
                        self.ni_ready_count += 1;
                    }
                }
            }
            self.drop_packet(pkt);
            return true;
        }
        false
    }

    /// Corrupt the payload of the packet at the head of endpoint `node`'s
    /// NI queue (XOR of the first byte — enough to break any header).
    /// Returns whether a payload was corrupted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn corrupt_next(&mut self, node: usize) -> bool {
        if let Some(pkt) = self.routers[node].ni_in.front_mut() {
            if let Some(byte) = pkt.data.first_mut() {
                *byte ^= 0xA5;
                self.corrupted_packets += 1;
                return true;
            }
        }
        false
    }

    /// Hand the payload buffers of fault-dropped packets to the caller
    /// (the platform recycles them into its payload pool; the engine never
    /// owns the pool).
    pub fn take_dropped_buffers(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.dropped_buffers)
    }

    /// Whether dropped-packet buffers are waiting for
    /// [`take_dropped_buffers`](Self::take_dropped_buffers).
    pub fn has_dropped_buffers(&self) -> bool {
        !self.dropped_buffers.is_empty()
    }

    /// Permanently dead directed links, in failure order.
    pub fn dead_links(&self) -> &[(usize, usize)] {
        &self.dead_links
    }

    /// Packets discarded by fault injection (drops plus disconnection).
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Flits those discarded packets carried.
    pub fn dropped_flits(&self) -> u64 {
        self.dropped_flits
    }

    /// Packets whose payload was corrupted in place.
    pub fn corrupted_packets(&self) -> u64 {
        self.corrupted_packets
    }

    /// Common drop accounting: count the packet and stash its buffer for
    /// the platform's payload pool.
    fn drop_packet(&mut self, mut pkt: Packet) {
        self.dropped_packets += 1;
        self.dropped_flits += pkt.flits(self.cfg.flit_bytes);
        self.dropped_buffers.push(std::mem::take(&mut pkt.data));
    }

    fn deliver(
        &mut self,
        router: usize,
        packet: Packet,
        now: Cycles,
        sink: &mut Option<&mut (dyn TraceSink + '_)>,
    ) {
        self.delivered.incr();
        let lat = now.saturating_sub(packet.injected_at);
        self.latency.record(lat);
        if let Some(s) = sink.as_deref_mut() {
            s.emit(TraceEvent::FlitDeliver {
                cycle: now.0,
                src: packet.src.0,
                dst: packet.dst.0,
                latency: lat.0,
            });
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.routers[router].delivered += 1;
        }
        self.routers[router].eject.push_back(packet);
        self.eject_pending += 1;
    }

    /// Schedules a wake of router `r` at cycle `at` unless an earlier (or
    /// same-cycle) wake is already pending. Later needs than the pending
    /// wake are rediscovered when that wake fires: the visit re-examines
    /// every queued port and re-arms the wheel, so one pending entry per
    /// router is enough to chain to any future firing opportunity.
    fn schedule_wake(&mut self, r: usize, at: u64) {
        if at < self.wake_at[r] {
            self.wake_at[r] = at;
            self.wakes.schedule(Cycles(at), r);
        }
    }

    /// A buffer slot freed at router `r`: blocked output ports of its
    /// predecessors may now be able to fire. Predecessors with nothing
    /// queued are skipped — a later queue push wakes them itself.
    fn wake_preds(&mut self, r: usize, at: u64) {
        for i in 0..self.preds[r].len() {
            let u = self.preds[r][i];
            if self.routers[u].queued > 0 {
                self.schedule_wake(u, at);
            }
        }
    }

    /// Credit appeared at endpoint router `r`: a remote-bound NI head that
    /// was blocked on the bubble rule may now inject. (A blocked non-empty
    /// NI always has a remote head — local heads are popped unconditionally
    /// by `drain_ni` the tick they reach the front.)
    fn ni_credit_check(&mut self, r: usize) {
        if r < self.ni_ready.len()
            && !self.ni_ready[r]
            && !self.routers[r].ni_in.is_empty()
            && self.routers[r].input_free >= 2
        {
            self.ni_ready[r] = true;
            self.ni_ready_count += 1;
        }
    }

    fn drain_arrivals(&mut self, now: Cycles, sink: &mut Option<&mut (dyn TraceSink + '_)>) {
        while let Some(Arrival { router, packet }) = self.arrivals.pop_due(now) {
            if packet.dst.0 == router {
                // Destination reached: free the buffer slot and eject. The
                // freed credit may unblock upstream ports (this very cycle —
                // arrivals drain before transmit) and the local NI.
                self.routers[router].input_free += 1;
                if self.routers[router].input_free == 1 {
                    self.wake_preds(router, now.0);
                }
                self.ni_credit_check(router);
                self.deliver(router, packet, now, sink);
            } else if let Some(port) = self.topo.next_hop(router, packet.dst.0) {
                // The packet keeps its reserved buffer slot while queued.
                self.obs_settle(router, now.0);
                self.routers[router].ports[port].queue.push_back(packet);
                self.routers[router].queued += 1;
                self.queued_total += 1;
                if let Some(obs) = self.obs.as_mut() {
                    let c = &mut obs.routers[router];
                    c.peak_queue = c.peak_queue.max(self.routers[router].queued);
                }
                self.schedule_wake(router, now.0);
            } else {
                // No route: permanent link faults disconnected the pair
                // after this packet left its source. Deterministic drop —
                // the buffer slot frees like a delivery would.
                self.routers[router].input_free += 1;
                if self.routers[router].input_free == 1 {
                    self.wake_preds(router, now.0);
                }
                self.ni_credit_check(router);
                self.drop_packet(packet);
            }
        }
    }

    fn drain_ni(&mut self, now: Cycles, sink: &mut Option<&mut (dyn TraceSink + '_)>) {
        // Quiescent-NI skip: no endpoint holds a head that can progress —
        // every queued head is remote and bubble-blocked, which only a
        // tracked credit event can change, so the scan would be all no-ops.
        if self.ni_ready_count == 0 {
            return;
        }
        for r in 0..self.topo.n_endpoints() {
            if !self.ni_ready[r] {
                continue;
            }
            while let Some(front_dst) = self.routers[r].ni_in.front().map(|p| p.dst) {
                if front_dst.0 == r {
                    // Local delivery bypasses the fabric entirely.
                    let p = self.routers[r].ni_in.pop_front().expect("checked front");
                    self.ni_pending -= 1;
                    self.deliver(r, p, now, sink);
                    continue;
                }
                // Bubble rule: entering traffic must leave one slot free.
                if self.routers[r].input_free < 2 {
                    break;
                }
                let Some(port) = self.topo.next_hop(r, front_dst.0) else {
                    // Destination unreachable after permanent link faults:
                    // drop at the NI (the head never took a buffer slot).
                    let p = self.routers[r].ni_in.pop_front().expect("checked front");
                    self.ni_pending -= 1;
                    self.drop_packet(p);
                    continue;
                };
                let p = self.routers[r].ni_in.pop_front().expect("checked front");
                self.ni_pending -= 1;
                self.routers[r].input_free -= 1;
                self.obs_settle(r, now.0);
                self.routers[r].ports[port].queue.push_back(p);
                self.routers[r].queued += 1;
                self.queued_total += 1;
                if let Some(obs) = self.obs.as_mut() {
                    let c = &mut obs.routers[r];
                    c.peak_queue = c.peak_queue.max(self.routers[r].queued);
                }
                self.schedule_wake(r, now.0);
            }
            // The loop runs until this NI is empty or bubble-blocked;
            // either way its head can no longer progress.
            self.ni_ready[r] = false;
            self.ni_ready_count -= 1;
        }
    }

    /// Starts the transfer of the head packet of `routers[r].ports[p]`,
    /// assuming the caller verified readiness and downstream credit.
    ///
    /// `pass` is the in-progress transmit worklist: the slot this fire
    /// frees at `r` is visible to higher-indexed routers in the same
    /// dense scan, so same-cycle predecessor wakes above `r` join the
    /// current pass while the rest wait for the next cycle.
    fn fire(
        &mut self,
        r: usize,
        p: usize,
        now: Cycles,
        pass: &mut BTreeSet<usize>,
        sink: &mut Option<&mut (dyn TraceSink + '_)>,
    ) {
        debug_assert!(self.routers[r].queued > 0, "fire on a quiescent router");
        self.obs_settle(r, now.0);
        self.routers[r].queued -= 1;
        self.queued_total -= 1;
        let (packet, to, ser, wire_lat, flits) = {
            let port = &mut self.routers[r].ports[p];
            let packet = port.queue.pop_front().expect("caller checked non-empty");
            let flits = packet.flits(self.cfg.flit_bytes);
            let ser = flits.div_ceil(port.width).max(1);
            // Serialization windows never overlap: a port fires only once
            // its previous transfer has drained, so busy_until moves
            // monotonically forward.
            debug_assert!(
                port.busy_until <= now.0,
                "router {r} port {p} fired at {} while busy until {}",
                now.0,
                port.busy_until
            );
            port.busy_until = now.0 + ser;
            self.flit_hops.add(flits);
            (packet, port.to, ser, port.latency, flits)
        };
        if let Some(obs) = self.obs.as_mut() {
            let c = &mut obs.links[r][p];
            c.busy_cycles += ser;
            c.packets += 1;
            c.flits += flits;
        }
        if let Some(s) = sink.as_deref_mut() {
            s.emit(TraceEvent::LinkTransfer {
                cycle: now.0,
                router: r,
                port: p,
                to,
                flits,
                ser,
            });
        }
        // Cut-through: the slot at r frees as transmission starts, the slot
        // downstream was reserved by the caller.
        self.routers[r].input_free += 1;
        if self.routers[r].input_free == 1 {
            for i in 0..self.preds[r].len() {
                let u = self.preds[r][i];
                if self.routers[u].queued == 0 {
                    continue;
                }
                if u > r {
                    pass.insert(u);
                } else {
                    self.schedule_wake(u, now.0 + 1);
                }
            }
        }
        self.ni_credit_check(r);
        let arrive = Cycles(now.0 + ser + wire_lat + self.cfg.router_delay);
        self.arrivals
            .schedule(arrive, Arrival { router: to, packet });
    }

    /// One router's share of the transmit pass: exactly the dense per-port
    /// scan, plus event-wheel re-arming for every timed reason the router
    /// could fire later (port serialization, shared-medium occupancy).
    /// Credit-blocked ports schedule nothing — the fire or delivery that
    /// frees the buffer wakes this router through `wake_preds`.
    fn visit_router(
        &mut self,
        r: usize,
        now: Cycles,
        pass: &mut BTreeSet<usize>,
        sink: &mut Option<&mut (dyn TraceSink + '_)>,
    ) {
        if self.routers[r].queued == 0 {
            return; // spurious wake: the queue drained before we got here
        }
        if self.routers[r].shared {
            // Bus arbiter: one transfer at a time, round-robin grant.
            if self.routers[r].shared_busy_until > now.0 {
                self.schedule_wake(r, self.routers[r].shared_busy_until);
                return;
            }
            let nports = self.routers[r].ports.len();
            let start = self.routers[r].rr_next;
            for k in 0..nports {
                let p = (start + k) % nports;
                let ready = {
                    let port = &self.routers[r].ports[p];
                    !port.queue.is_empty() && self.routers[port.to].input_free > 0
                };
                if ready {
                    let to = self.routers[r].ports[p].to;
                    self.routers[to].input_free -= 1;
                    self.fire(r, p, now, pass, sink);
                    self.routers[r].shared_busy_until = self.routers[r].ports[p].busy_until;
                    self.routers[r].rr_next = (p + 1) % nports;
                    if self.routers[r].queued > 0 {
                        self.schedule_wake(r, self.routers[r].shared_busy_until);
                    }
                    break;
                }
            }
        } else {
            for p in 0..self.routers[r].ports.len() {
                if self.routers[r].ports[p].queue.is_empty() {
                    continue;
                }
                let busy_until = self.routers[r].ports[p].busy_until;
                if busy_until > now.0 {
                    self.schedule_wake(r, busy_until);
                    continue;
                }
                let to = self.routers[r].ports[p].to;
                if self.routers[to].input_free == 0 {
                    continue;
                }
                self.routers[to].input_free -= 1;
                self.fire(r, p, now, pass, sink);
                if !self.routers[r].ports[p].queue.is_empty() {
                    // More packets behind the one now serializing.
                    self.schedule_wake(r, self.routers[r].ports[p].busy_until);
                }
            }
        }
    }

    /// The transmit pass. With `full_scan` every router holding queued
    /// traffic is visited (the dense reference); otherwise only routers
    /// the event wheel or a same-cycle push woke. Both orders are the
    /// ascending router-index order, so credit contention resolves
    /// identically and the two paths are bit-identical.
    fn transmit(
        &mut self,
        now: Cycles,
        full_scan: bool,
        sink: &mut Option<&mut (dyn TraceSink + '_)>,
    ) {
        let mut pass = std::mem::take(&mut self.ready);
        while let Some(r) = self.wakes.pop_due(now) {
            self.wake_at[r] = u64::MAX;
            if !full_scan {
                pass.insert(r);
            }
        }
        if full_scan {
            for r in 0..self.routers.len() {
                if self.routers[r].queued > 0 {
                    pass.insert(r);
                }
            }
        }
        if self.queued_total > 0 {
            while let Some(r) = pass.pop_first() {
                self.visit_router(r, now, &mut pass, sink);
            }
        }
        pass.clear();
        self.ready = pass;
    }

    /// One engine tick with an optional trace sink: identical to
    /// [`Clocked::tick`] (which delegates here with `None`), but packet
    /// deliveries and link transfers are reported to `sink` as they
    /// happen. The sink is write-only — nothing it does can change
    /// routing, timing, or statistics.
    pub fn tick_traced(&mut self, now: Cycles, mut sink: Option<&mut (dyn TraceSink + '_)>) {
        self.drain_arrivals(now, &mut sink);
        self.drain_ni(now, &mut sink);
        self.transmit(now, false, &mut sink);
        #[cfg(debug_assertions)]
        self.debug_audit(now);
    }

    /// The dense reference tick: identical phase order to [`Noc::tick`],
    /// but the transmit pass scans every router holding queued traffic
    /// instead of consulting the event wheel. Kept for differential
    /// testing — the event-driven path must be bit-identical to this.
    pub fn tick_reference(&mut self, now: Cycles) {
        let mut sink: Option<&mut (dyn TraceSink + '_)> = None;
        self.drain_arrivals(now, &mut sink);
        self.drain_ni(now, &mut sink);
        self.transmit(now, true, &mut sink);
        #[cfg(debug_assertions)]
        self.debug_audit(now);
    }

    /// Debug-build audit of the active-set bookkeeping against ground
    /// truth. The event-driven fast path is only sound while the global
    /// counters mirror the per-router state exactly and the event wheel
    /// never holds an already-due wake after a tick — the precise
    /// conditions under which `next_event_cycle` may fast-forward.
    #[cfg(debug_assertions)]
    fn debug_audit(&self, now: Cycles) {
        let queued: usize = self.routers.iter().map(|r| r.queued).sum();
        debug_assert_eq!(
            self.queued_total, queued,
            "queued_total diverged from per-router queues at {now:?}"
        );
        let ni: usize = self.routers.iter().map(|r| r.ni_in.len()).sum();
        debug_assert_eq!(
            self.ni_pending, ni,
            "ni_pending diverged from NI queues at {now:?}"
        );
        let eject: usize = self.routers.iter().map(|r| r.eject.len()).sum();
        debug_assert_eq!(
            self.eject_pending, eject,
            "eject_pending diverged from eject queues at {now:?}"
        );
        let ready = self.ni_ready.iter().filter(|&&b| b).count();
        debug_assert_eq!(
            self.ni_ready_count, ready,
            "ni_ready_count diverged from ni_ready flags at {now:?}"
        );
        for (r, &at) in self.wake_at.iter().enumerate() {
            debug_assert!(
                at == u64::MAX || at > now.0,
                "router {r} holds a stale wake at {at} after tick {now:?}"
            );
        }
        for (r, rt) in self.routers.iter().enumerate() {
            for (p, port) in rt.ports.iter().enumerate() {
                debug_assert!(
                    !port.down || port.queue.is_empty(),
                    "dead link {r}:{p} holds queued packets at {now:?}"
                );
            }
        }
    }
}

impl Clocked for Noc {
    fn tick(&mut self, now: Cycles) {
        self.tick_traced(now, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn run_until_delivered(noc: &mut Noc, dst: NodeId, limit: u64) -> (Packet, Cycles) {
        let mut now = Cycles(0);
        loop {
            noc.tick(now);
            if let Some(p) = noc.eject(dst) {
                return (p, now);
            }
            now += Cycles(1);
            assert!(now.0 < limit, "packet not delivered within {limit} cycles");
        }
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let topo = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        noc.try_inject(NodeId(0), NodeId(15), vec![9; 24], 7, Cycles(0))
            .unwrap();
        let (p, _) = run_until_delivered(&mut noc, NodeId(15), 1000);
        assert_eq!(p.src, NodeId(0));
        assert_eq!(p.tag, 7);
        assert_eq!(p.data, vec![9; 24]);
        let s = noc.stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered, 1);
        assert!(s.latency.mean() > 0.0);
    }

    #[test]
    fn local_delivery_is_fast() {
        let topo = Topology::build(TopologyKind::Ring, 4, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        noc.try_inject(NodeId(2), NodeId(2), vec![1], 0, Cycles(0))
            .unwrap();
        let (p, when) = run_until_delivered(&mut noc, NodeId(2), 10);
        assert_eq!(p.dst, NodeId(2));
        assert!(when.0 <= 1);
    }

    #[test]
    fn latency_grows_with_hops() {
        // On a large ring, a far destination takes longer than a neighbor.
        let mk = || {
            let topo = Topology::build(TopologyKind::Ring, 16, 1).unwrap();
            Noc::new(topo, NocConfig::default())
        };
        let mut near = mk();
        near.try_inject(NodeId(0), NodeId(1), vec![0; 8], 0, Cycles(0))
            .unwrap();
        let (_, t_near) = run_until_delivered(&mut near, NodeId(1), 1000);
        let mut far = mk();
        far.try_inject(NodeId(0), NodeId(8), vec![0; 8], 0, Cycles(0))
            .unwrap();
        let (_, t_far) = run_until_delivered(&mut far, NodeId(8), 1000);
        assert!(t_far > t_near, "far {t_far} should exceed near {t_near}");
    }

    #[test]
    fn bus_serializes_but_crossbar_switches_in_parallel() {
        // Four disjoint src->dst pairs, all crossing the center.
        let drive = |kind: TopologyKind| -> Cycles {
            let topo = Topology::build(kind, 8, 1).unwrap();
            let mut noc = Noc::new(topo, NocConfig::default());
            for i in 0..4 {
                noc.try_inject(NodeId(i), NodeId(i + 4), vec![0; 56], 0, Cycles(0))
                    .unwrap();
            }
            let mut now = Cycles(0);
            let mut got = 0;
            while got < 4 {
                noc.tick(now);
                for i in 4..8 {
                    if noc.eject(NodeId(i)).is_some() {
                        got += 1;
                    }
                }
                now += Cycles(1);
                assert!(now.0 < 10_000);
            }
            now
        };
        let t_bus = drive(TopologyKind::SharedBus);
        let t_xbar = drive(TopologyKind::Crossbar);
        assert!(
            t_bus.0 > t_xbar.0 + 10,
            "bus {t_bus} should be much slower than crossbar {t_xbar}"
        );
    }

    #[test]
    fn ni_backpressure_refuses_when_full() {
        let topo = Topology::build(TopologyKind::Ring, 4, 1).unwrap();
        let cfg = NocConfig {
            ni_capacity: 2,
            ..NocConfig::default()
        };
        let mut noc = Noc::new(topo, cfg);
        assert!(noc
            .try_inject(NodeId(0), NodeId(2), vec![], 0, Cycles(0))
            .is_ok());
        assert!(noc
            .try_inject(NodeId(0), NodeId(2), vec![], 1, Cycles(0))
            .is_ok());
        assert_eq!(
            noc.try_inject(NodeId(0), NodeId(2), vec![], 2, Cycles(0)),
            Err(InjectError::NiFull)
        );
        assert_eq!(noc.counts().refused, 1);
        assert_eq!(noc.ni_free(NodeId(0)), 0);
    }

    #[test]
    fn bad_endpoints_are_rejected() {
        let topo = Topology::build(TopologyKind::Ring, 4, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        assert_eq!(
            noc.try_inject(NodeId(9), NodeId(0), vec![], 0, Cycles(0)),
            Err(InjectError::BadSource(NodeId(9)))
        );
        assert_eq!(
            noc.try_inject(NodeId(0), NodeId(9), vec![], 0, Cycles(0)),
            Err(InjectError::BadDestination(NodeId(9)))
        );
    }

    #[test]
    fn conservation_every_packet_delivered_exactly_once() {
        let topo = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        let mut now = Cycles(0);
        let mut sent = 0u64;
        let mut got = 0u64;
        // Staggered all-to-one plus neighbor traffic for 200 cycles.
        while now.0 < 200 {
            let src = (now.0 % 16) as usize;
            let dst = ((now.0 * 7 + 3) % 16) as usize;
            if noc
                .try_inject(NodeId(src), NodeId(dst), vec![0; 16], now.0, now)
                .is_ok()
            {
                sent += 1;
            }
            noc.tick(now);
            for e in 0..16 {
                while noc.eject(NodeId(e)).is_some() {
                    got += 1;
                }
            }
            now += Cycles(1);
        }
        // Drain.
        while !noc.is_quiescent() {
            noc.tick(now);
            for e in 0..16 {
                while noc.eject(NodeId(e)).is_some() {
                    got += 1;
                }
            }
            now += Cycles(1);
            assert!(now.0 < 100_000, "network failed to drain");
        }
        assert_eq!(sent, got);
        assert_eq!(noc.counts().delivered, sent);
        assert_eq!(noc.latency_hist().count(), sent);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = Topology::build(TopologyKind::Torus, 16, 2).unwrap();
            let mut noc = Noc::new(topo, NocConfig::default());
            let mut now = Cycles(0);
            while now.0 < 500 {
                let src = ((now.0 * 5) % 16) as usize;
                let dst = ((now.0 * 11 + 1) % 16) as usize;
                let _ = noc.try_inject(NodeId(src), NodeId(dst), vec![0; 32], now.0, now);
                noc.tick(now);
                for e in 0..16 {
                    while noc.eject(NodeId(e)).is_some() {}
                }
                now += Cycles(1);
            }
            let s = noc.stats();
            (
                s.injected,
                s.delivered,
                s.flit_hops,
                s.latency.mean().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queued_counter_tracks_port_queues() {
        // Hammer a mesh with skewed traffic, checking the quiescent-skip
        // counter against the ground-truth queue lengths every cycle.
        let topo = Topology::build(TopologyKind::Mesh, 16, 2).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        let mut now = Cycles(0);
        while now.0 < 400 {
            let src = ((now.0 * 3) % 16) as usize;
            let _ = noc.try_inject(NodeId(src), NodeId(5), vec![0; 48], 0, now);
            noc.tick(now);
            for r in &noc.routers {
                let actual: usize = r.ports.iter().map(|p| p.queue.len()).sum();
                assert_eq!(r.queued, actual);
            }
            // The active-set gate counters track the ground truth exactly.
            let ni_actual: usize = noc.routers.iter().map(|r| r.ni_in.len()).sum();
            assert_eq!(noc.ni_pending, ni_actual);
            let queued_actual: usize = noc.routers.iter().map(|r| r.queued).sum();
            assert_eq!(noc.queued_total, queued_actual);
            let eject_actual: usize = noc.routers.iter().map(|r| r.eject.len()).sum();
            assert_eq!(noc.eject_pending(), eject_actual);
            for e in 0..16 {
                while noc.eject(NodeId(e)).is_some() {}
            }
            assert_eq!(noc.eject_pending(), 0);
            now += Cycles(1);
        }
        // Drain and confirm the counters return to zero with quiescence.
        while !noc.is_quiescent() {
            noc.tick(now);
            for e in 0..16 {
                while noc.eject(NodeId(e)).is_some() {}
            }
            now += Cycles(1);
            assert!(now.0 < 100_000);
        }
        assert!(noc.routers.iter().all(|r| r.queued == 0));
        assert!(!noc.has_work(), "drained fabric reports no work");
        assert_eq!(noc.ni_pending, 0);
        assert_eq!(noc.queued_total, 0);
        assert_eq!(noc.next_event_cycle(now), None);
    }

    #[test]
    fn has_work_and_next_event_follow_traffic() {
        let topo = Topology::build(TopologyKind::Ring, 8, 7).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        assert!(!noc.has_work());
        assert_eq!(noc.next_event_cycle(Cycles(0)), None);
        noc.try_inject(NodeId(0), NodeId(3), vec![0; 16], 0, Cycles(0))
            .unwrap();
        // Queued NI traffic: work due immediately.
        assert!(noc.has_work());
        assert_eq!(noc.next_event_cycle(Cycles(0)), Some(Cycles(0)));
        noc.tick(Cycles(0));
        // Now the packet is serializing over a 7-cycle link: the next event
        // is its arrival, strictly in the future and never overshot.
        let next = noc
            .next_event_cycle(Cycles(1))
            .expect("a transfer is in flight");
        assert!(
            next > Cycles(1),
            "wire latency means a future event: {next}"
        );
        let mut now = Cycles(1);
        while noc.eject(NodeId(3)).is_none() {
            now += Cycles(1);
            noc.tick(now);
            assert!(now.0 < 1_000);
        }
        assert!(now >= next, "packet cannot arrive before the next event");
    }

    #[test]
    fn stalled_port_delays_delivery() {
        let deliver_at = |stall: Option<u64>| -> u64 {
            let topo = Topology::build(TopologyKind::Ring, 8, 1).unwrap();
            let mut noc = Noc::new(topo, NocConfig::default());
            noc.try_inject(NodeId(0), NodeId(2), vec![0; 16], 0, Cycles(0))
                .unwrap();
            if let Some(until) = stall {
                let port = noc.topology().next_hop(0, 2).unwrap();
                noc.stall_port(0, port, until);
            }
            run_until_delivered(&mut noc, NodeId(2), 10_000).1 .0
        };
        let clean = deliver_at(None);
        let stalled = deliver_at(Some(50));
        assert!(
            stalled >= 50 && stalled > clean,
            "stall must delay delivery: clean {clean}, stalled {stalled}"
        );
        // Router-wide stalls delay at least as much as a single port.
        let topo = Topology::build(TopologyKind::Ring, 8, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        noc.try_inject(NodeId(0), NodeId(2), vec![0; 16], 0, Cycles(0))
            .unwrap();
        noc.stall_router(0, 80);
        let (_, t) = run_until_delivered(&mut noc, NodeId(2), 10_000);
        assert!(t.0 >= 80);
    }

    #[test]
    fn failed_link_reroutes_queued_traffic() {
        // 4x4 mesh, 0 -> 3 along row 0. Kill 0's east port after the
        // packet is queued on it; the packet must detour and still arrive.
        let topo = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        noc.try_inject(NodeId(0), NodeId(3), vec![7; 16], 9, Cycles(0))
            .unwrap();
        // One tick moves the packet from the NI onto the east port queue.
        let east = noc.topology().next_hop(0, 3).unwrap();
        noc.drain_arrivals(Cycles(0), &mut None);
        noc.drain_ni(Cycles(0), &mut None);
        assert!(!noc.routers[0].ports[east].queue.is_empty());
        assert!(noc.fail_link(0, east, Cycles(0)));
        assert!(!noc.fail_link(0, east, Cycles(0)), "idempotent");
        assert!(noc.routers[0].ports[east].queue.is_empty());
        assert_eq!(noc.dead_links(), &[(0, east)]);
        let (p, _) = run_until_delivered(&mut noc, NodeId(3), 10_000);
        assert_eq!(p.data, vec![7; 16]);
        assert_eq!(noc.dropped_packets(), 0);
    }

    #[test]
    fn disconnection_drops_deterministically() {
        // Crossbar endpoint 0 has exactly one outbound link; killing it
        // strands every remote packet from node 0.
        let topo = Topology::build(TopologyKind::Crossbar, 4, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        noc.try_inject(NodeId(0), NodeId(2), vec![1; 24], 0, Cycles(0))
            .unwrap();
        assert!(noc.fail_link(0, 0, Cycles(0)));
        let mut now = Cycles(0);
        while noc.has_work() {
            noc.tick(now);
            now += Cycles(1);
            assert!(now.0 < 1_000);
        }
        assert_eq!(noc.dropped_packets(), 1);
        assert!(noc.dropped_flits() > 0);
        let bufs = noc.take_dropped_buffers();
        assert_eq!(bufs.len(), 1);
        assert!(!noc.has_dropped_buffers());
        assert!(noc.is_quiescent());
    }

    #[test]
    fn drop_next_takes_head_of_line() {
        let topo = Topology::build(TopologyKind::Ring, 8, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        assert!(!noc.drop_next(0, Cycles(0)), "nothing to drop yet");
        noc.try_inject(NodeId(0), NodeId(3), vec![2; 16], 0, Cycles(0))
            .unwrap();
        // Still in the NI: the NI head is dropped.
        assert!(noc.drop_next(0, Cycles(0)));
        assert_eq!(noc.dropped_packets(), 1);
        assert_eq!(noc.take_dropped_buffers().len(), 1);
        let mut now = Cycles(0);
        while noc.has_work() {
            noc.tick(now);
            now += Cycles(1);
        }
        assert!(noc.is_quiescent());
        assert_eq!(noc.counts().delivered, 0);
    }

    #[test]
    fn corrupt_next_flips_payload_in_place() {
        let topo = Topology::build(TopologyKind::Ring, 8, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        assert!(!noc.corrupt_next(0));
        noc.try_inject(NodeId(0), NodeId(3), vec![0x11; 16], 0, Cycles(0))
            .unwrap();
        assert!(noc.corrupt_next(0));
        assert_eq!(noc.corrupted_packets(), 1);
        let (p, _) = run_until_delivered(&mut noc, NodeId(3), 10_000);
        assert_eq!(p.data[0], 0x11 ^ 0xA5);
        assert!(p.data[1..].iter().all(|&b| b == 0x11));
    }

    #[test]
    fn fat_tree_delivers_cross_traffic() {
        let topo = Topology::build(TopologyKind::FatTree, 16, 1).unwrap();
        let mut noc = Noc::new(topo, NocConfig::default());
        for i in 0..8 {
            noc.try_inject(NodeId(i), NodeId(15 - i), vec![0; 40], i as u64, Cycles(0))
                .unwrap();
        }
        let mut now = Cycles(0);
        let mut got = 0;
        while got < 8 {
            noc.tick(now);
            for e in 0..16 {
                while noc.eject(NodeId(e)).is_some() {
                    got += 1;
                }
            }
            now += Cycles(1);
            assert!(now.0 < 10_000);
        }
    }
}
