//! Flit-accounted network-on-chip simulator.
//!
//! The paper (§6.1) names the NoC as "a key component of the MP-SoC
//! platform" and asks for characterization of "the various topologies —
//! ranging from bus, ring, tree to full-crossbar — and their effectiveness
//! for different application domains". This crate provides:
//!
//! * [`topology`] — graph builders for shared bus, ring, 2-D mesh, torus,
//!   fat tree (the SPIN network of §8 is a fat tree) and full crossbar,
//!   with deterministic routing tables.
//! * [`engine`] — the cycle-stepped [`Noc`] engine: packet-granular virtual
//!   cut-through with credit back-pressure and bubble-rule injection.
//! * [`traffic`] — classical synthetic patterns (uniform, hotspot, neighbor,
//!   bit complement, transpose).
//! * [`sweep`] — open-loop load sweeps producing latency/throughput curves
//!   and saturation points (experiment F4).
//!
//! # Examples
//!
//! ```
//! use nw_noc::{Noc, NocConfig, Topology, TopologyKind};
//! use nw_sim::Clocked;
//! use nw_types::{Cycles, NodeId};
//!
//! let topo = Topology::build(TopologyKind::FatTree, 16, 1)?;
//! assert_eq!(topo.hops(0, 15), 4); // leaf → root → leaf
//!
//! let mut noc = Noc::new(topo, NocConfig::default());
//! noc.try_inject(NodeId(0), NodeId(15), b"hello".to_vec(), 0, Cycles(0)).unwrap();
//! for c in 0..100 { noc.tick(Cycles(c)); }
//! assert_eq!(noc.stats().delivered, 1);
//! # Ok::<(), nw_noc::topology::BuildTopologyError>(())
//! ```

pub mod engine;
pub mod packet;
pub mod pool;
pub mod sweep;
pub mod topology;
pub mod traffic;

pub use engine::{InjectError, Noc, NocConfig, NocCounts, NocStats};
pub use packet::{Packet, PacketId};
pub use pool::PayloadPool;
pub use sweep::{run_open_loop, saturation_load, sweep_load, OpenLoopConfig, OpenLoopResult};
pub use topology::{BuildTopologyError, Topology, TopologyKind};
pub use traffic::TrafficPattern;
