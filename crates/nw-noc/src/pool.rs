//! A recycling arena for packet payload buffers.
//!
//! Every packet on the NoC carries a `Vec<u8>` payload. Busy workloads
//! (line-rate IPv4, 8 Gb/s video) inject tens of packets per simulated
//! microsecond, and allocating a fresh vector per packet — plus one more
//! for every marshalled DSOC message — made the allocator a measurable
//! slice of the busy-path profile. [`PayloadPool`] keeps consumed payload
//! buffers on a free list: the platform returns each packet's buffer when
//! the packet is ejected and consumed, and every producer (service replies,
//! ingress invocations, handler-synthesized messages) draws from the pool
//! instead of the allocator.
//!
//! Recycled buffers are handed out cleared and zero-filled to the requested
//! length, exactly like the `vec![0; n]` they replace, so pooling is
//! invisible to the simulation: payload contents, packet timing and
//! reports are bit-identical with or without it.

/// A free list of payload buffers.
///
/// # Examples
///
/// ```
/// use nw_noc::PayloadPool;
///
/// let mut pool = PayloadPool::new();
/// let buf = pool.take_zeroed(64);
/// assert_eq!(buf, vec![0u8; 64]);
/// pool.put(buf);
/// // The next request reuses the returned buffer's allocation.
/// let again = pool.take_zeroed(16);
/// assert_eq!(again.len(), 16);
/// assert!(again.capacity() >= 64);
/// assert_eq!(pool.recycled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Vec<Vec<u8>>,
    recycled: u64,
    allocated: u64,
    taken: u64,
    returned: u64,
}

/// Snapshot-oriented clone: free-list buffers are all length 0, so a
/// derived clone would shed their allocations and hand the restored
/// platform a pool of zero-capacity buffers — observably different free
/// list behavior, since `put` drops capacity-0 returns. Cloning capacity
/// instead of contents keeps the restored pool's ledger trajectory
/// bit-identical to the original's.
impl Clone for PayloadPool {
    fn clone(&self) -> Self {
        PayloadPool {
            free: self
                .free
                .iter()
                .map(|v| Vec::with_capacity(v.capacity()))
                .collect(),
            recycled: self.recycled,
            allocated: self.allocated,
            taken: self.taken,
            returned: self.returned,
        }
    }
}

impl PayloadPool {
    /// Buffers retained at most; returns beyond this are dropped so a
    /// traffic burst cannot pin an unbounded free list.
    pub const MAX_FREE: usize = 4096;

    /// Creates an empty pool.
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// Takes an empty buffer (length 0), reusing a recycled allocation when
    /// one is available.
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(v) => {
                self.recycled += 1;
                v
            }
            None => {
                self.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Takes a buffer of `len` zero bytes — content-identical to
    /// `vec![0u8; len]`, minus the allocation when a recycled buffer fits.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<u8> {
        let mut v = self.take();
        v.resize(len, 0);
        v
    }

    /// Grows `data` with zero padding to `len` bytes (a no-op when already
    /// long enough), drawing a pooled buffer instead of allocating when
    /// `data` owns no storage yet. The single home of the "pad a payload
    /// to its declared wire size" policy.
    pub fn pad_zeroed(&mut self, data: &mut Vec<u8>, len: usize) {
        if data.len() >= len {
            return;
        }
        if data.capacity() == 0 {
            *data = self.take_zeroed(len);
        } else {
            data.resize(len, 0);
        }
    }

    /// Returns a consumed buffer to the free list. The buffer is cleared
    /// here (cheap: `Vec::clear` on `u8` is a length reset) so takes never
    /// see stale bytes. Zero-capacity buffers and overflow beyond
    /// [`PayloadPool::MAX_FREE`] are dropped.
    pub fn put(&mut self, mut v: Vec<u8>) {
        self.returned += 1;
        if v.capacity() == 0 || self.free.len() >= Self::MAX_FREE {
            return;
        }
        v.clear();
        self.free.push(v);
    }

    /// Buffers handed out from the free list so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Buffers that had to be allocated fresh.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Buffers currently on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Buffers acquired but not yet returned: `taken - returned`.
    ///
    /// A quiesced platform with a finite workload must report zero — every
    /// payload buffer handed out was eventually consumed and recycled. The
    /// count is signed because the pool also accepts buffers it never
    /// handed out (a packet built from a caller-owned `Vec` is still
    /// recycled on consumption), which can push returns past takes.
    pub fn outstanding(&self) -> i64 {
        self.taken as i64 - self.returned as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_matches_vec_macro() {
        let mut pool = PayloadPool::new();
        for len in [0usize, 1, 7, 64, 1000] {
            assert_eq!(pool.take_zeroed(len), vec![0u8; len]);
        }
    }

    #[test]
    fn recycled_buffers_are_cleared_and_zeroed() {
        let mut pool = PayloadPool::new();
        pool.put(vec![0xAB; 128]);
        let v = pool.take_zeroed(32);
        assert_eq!(v, vec![0u8; 32], "no stale bytes may leak through");
        assert!(v.capacity() >= 128, "allocation was reused");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.allocated(), 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_retained() {
        let mut pool = PayloadPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.free_len(), 0);
        let _ = pool.take_zeroed(4);
        assert_eq!(pool.allocated(), 1);
    }

    #[test]
    fn outstanding_tracks_the_take_put_balance() {
        let mut pool = PayloadPool::new();
        let a = pool.take_zeroed(8);
        let b = pool.take();
        assert_eq!(pool.outstanding(), 2);
        pool.put(a);
        pool.put(b); // zero-capacity: dropped, but still a return
        assert_eq!(pool.outstanding(), 0);
        pool.put(vec![1; 4]); // caller-owned buffer recycled at consumption
        assert_eq!(pool.outstanding(), -1);
    }

    #[test]
    fn clone_preserves_free_list_capacities_and_ledger() {
        let mut pool = PayloadPool::new();
        pool.put(vec![0xCD; 96]);
        let held = pool.take_zeroed(8);
        let copy = pool.clone();
        assert_eq!(copy.free_len(), pool.free_len());
        assert_eq!(copy.outstanding(), pool.outstanding());
        assert_eq!(copy.recycled(), pool.recycled());
        drop(held);
        let mut copy = copy;
        pool.put(vec![0xEE; 32]);
        copy.put(vec![0xEE; 32]);
        // A recycled draw on the clone reuses a real allocation, exactly
        // like the original — the clone did not shed free-list capacity.
        let a = pool.take_zeroed(4);
        let b = copy.take_zeroed(4);
        assert!(a.capacity() > 0 && b.capacity() > 0);
        assert_eq!(pool.recycled(), copy.recycled());
        assert_eq!(pool.allocated(), copy.allocated());
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = PayloadPool::new();
        for _ in 0..(PayloadPool::MAX_FREE + 10) {
            pool.put(vec![1; 8]);
        }
        assert_eq!(pool.free_len(), PayloadPool::MAX_FREE);
    }
}
