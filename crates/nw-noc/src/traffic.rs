//! Synthetic traffic patterns for open-loop topology characterization.
//!
//! These are the classical patterns used in interconnect evaluation; the
//! paper's §6.1 asks exactly for this kind of characterization "for
//! different application domains". Uniform random models well-spread
//! multiprocessor traffic, hotspot models a shared memory controller or the
//! bus-master bottleneck, neighbor models pipelined streaming, and bit
//! complement is the worst case for meshes.

use nw_types::NodeId;
use rand::Rng;
use std::fmt;

/// Destination selection policy for synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding self).
    Uniform,
    /// With probability `fraction`, send to `target`; otherwise uniform.
    Hotspot {
        /// The hotspot endpoint.
        target: NodeId,
        /// Fraction of packets aimed at the hotspot.
        fraction: f64,
    },
    /// Fixed next-neighbor destination `(src + 1) mod n` (streaming pipelines).
    Neighbor,
    /// Bit-complement permutation: `dst = !src` within the address width.
    BitComplement,
    /// Transpose permutation on the most-square grid: `(x, y) -> (y, x)`.
    Transpose,
}

impl TrafficPattern {
    /// Picks the destination for a packet from `src` in an `n`-endpoint
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no possible non-self destination).
    pub fn pick_dst<R: Rng>(&self, src: NodeId, n: usize, rng: &mut R) -> NodeId {
        assert!(n >= 2, "traffic needs at least two endpoints");
        match *self {
            TrafficPattern::Uniform => uniform_excluding(src, n, rng),
            TrafficPattern::Hotspot { target, fraction } => {
                if rng.gen_bool(fraction.clamp(0.0, 1.0)) && target != src {
                    target
                } else {
                    uniform_excluding(src, n, rng)
                }
            }
            TrafficPattern::Neighbor => NodeId((src.0 + 1) % n),
            TrafficPattern::BitComplement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let mask = if bits == 0 { 0 } else { (1usize << bits) - 1 };
                let d = (!src.0) & mask;
                if d >= n || d == src.0 {
                    uniform_excluding(src, n, rng)
                } else {
                    NodeId(d)
                }
            }
            TrafficPattern::Transpose => {
                let (w, h) = crate::topology::most_square(n);
                let (x, y) = (src.0 % w, src.0 / w);
                // Transpose is only a permutation on square grids; fall back
                // to uniform for the remainder.
                if x < h && y < w {
                    let d = x * w + y;
                    if d != src.0 && d < n {
                        return NodeId(d);
                    }
                }
                uniform_excluding(src, n, rng)
            }
        }
    }
}

fn uniform_excluding<R: Rng>(src: NodeId, n: usize, rng: &mut R) -> NodeId {
    let d = rng.gen_range(0..n - 1);
    NodeId(if d >= src.0 { d + 1 } else { d })
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficPattern::Uniform => write!(f, "uniform"),
            TrafficPattern::Hotspot { target, fraction } => {
                write!(f, "hotspot({target},{:.0}%)", fraction * 100.0)
            }
            TrafficPattern::Neighbor => write!(f, "neighbor"),
            TrafficPattern::BitComplement => write!(f, "bit-complement"),
            TrafficPattern::Transpose => write!(f, "transpose"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_picks_self_and_covers_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let d = TrafficPattern::Uniform.pick_dst(NodeId(3), 8, &mut rng);
            assert_ne!(d, NodeId(3));
            seen[d.0] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let pat = TrafficPattern::Hotspot {
            target: NodeId(0),
            fraction: 0.5,
        };
        let mut hits = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if pat.pick_dst(NodeId(5), 16, &mut rng) == NodeId(0) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        // 50% targeted + ~3.3% of the uniform remainder.
        assert!(frac > 0.45 && frac < 0.60, "hotspot fraction {frac}");
    }

    #[test]
    fn neighbor_is_deterministic_ring() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            TrafficPattern::Neighbor.pick_dst(NodeId(7), 8, &mut rng),
            NodeId(0)
        );
        assert_eq!(
            TrafficPattern::Neighbor.pick_dst(NodeId(2), 8, &mut rng),
            NodeId(3)
        );
    }

    #[test]
    fn bit_complement_on_power_of_two() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            TrafficPattern::BitComplement.pick_dst(NodeId(0), 16, &mut rng),
            NodeId(15)
        );
        assert_eq!(
            TrafficPattern::BitComplement.pick_dst(NodeId(5), 16, &mut rng),
            NodeId(10)
        );
    }

    #[test]
    fn transpose_on_square_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        // 4x4 grid: node 1 = (1,0) -> (0,1) = node 4.
        assert_eq!(
            TrafficPattern::Transpose.pick_dst(NodeId(1), 16, &mut rng),
            NodeId(4)
        );
    }

    #[test]
    #[should_panic(expected = "at least two endpoints")]
    fn single_endpoint_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        TrafficPattern::Uniform.pick_dst(NodeId(0), 1, &mut rng);
    }
}
