//! Open-loop load sweeps: the harness behind experiment F4
//! (topology characterization, paper §6.1).
//!
//! Endpoints inject Bernoulli traffic at a configurable offered load and the
//! harness reports accepted throughput and the latency distribution. Sweeping
//! the offered load produces the classic latency/throughput curve whose knee
//! is the topology's saturation point.

use crate::engine::{Noc, NocConfig};
use crate::topology::{BuildTopologyError, Topology, TopologyKind};
use crate::traffic::TrafficPattern;
use nw_sim::{Clocked, Histogram};
use nw_types::{Cycles, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one open-loop measurement run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in flits per cycle per endpoint (0.0..=1.0 is sensible).
    pub offered_load: f64,
    /// Payload size of generated packets.
    pub payload_bytes: usize,
    /// Destination selection policy.
    pub pattern: TrafficPattern,
    /// Warm-up cycles excluded from measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// NoC timing configuration.
    pub noc: NocConfig,
    /// Per-hop link latency in cycles.
    pub link_latency: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            offered_load: 0.1,
            payload_bytes: 32,
            pattern: TrafficPattern::Uniform,
            warmup: 2_000,
            measure: 10_000,
            seed: 0xD0C_5EED,
            noc: NocConfig::default(),
            link_latency: 1,
        }
    }
}

/// Results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// Topology that was driven.
    pub kind: TopologyKind,
    /// Endpoint count.
    pub n_endpoints: usize,
    /// Offered load (flits/cycle/endpoint) as configured.
    pub offered: f64,
    /// Accepted throughput (delivered flits/cycle/endpoint) in the
    /// measurement window.
    pub accepted: f64,
    /// Offered load actually generated (flits/cycle/endpoint) in the
    /// measurement window. The Bernoulli injection process only realizes
    /// `offered` in expectation, so saturation is judged against this.
    pub generated: f64,
    /// Latency distribution of packets delivered in the measurement window.
    pub latency: Histogram,
    /// True when the network failed to keep up: delivered flits fell below
    /// 95% of the flits generated in the measurement window.
    pub saturated: bool,
}

impl OpenLoopResult {
    /// Mean latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Runs one open-loop measurement on a freshly built topology.
///
/// # Errors
///
/// Propagates [`BuildTopologyError`] from topology construction.
///
/// # Examples
///
/// ```
/// use nw_noc::sweep::{run_open_loop, OpenLoopConfig};
/// use nw_noc::topology::TopologyKind;
///
/// let mut cfg = OpenLoopConfig::default();
/// cfg.offered_load = 0.05;
/// cfg.warmup = 200;
/// cfg.measure = 1_000;
/// let r = run_open_loop(TopologyKind::Mesh, 16, &cfg)?;
/// assert!(r.accepted > 0.0);
/// # Ok::<(), nw_noc::topology::BuildTopologyError>(())
/// ```
pub fn run_open_loop(
    kind: TopologyKind,
    n: usize,
    cfg: &OpenLoopConfig,
) -> Result<OpenLoopResult, BuildTopologyError> {
    let topo = Topology::build(kind, n, cfg.link_latency)?;
    let mut noc = Noc::new(topo, cfg.noc);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Offered load is stated in flits; convert to a packet generation
    // probability per endpoint per cycle.
    let probe = crate::packet::Packet {
        id: crate::packet::PacketId(0),
        src: NodeId(0),
        dst: NodeId(0),
        data: vec![0; cfg.payload_bytes],
        tag: 0,
        injected_at: Cycles::ZERO,
    };
    let flits_per_packet = probe.flits(cfg.noc.flit_bytes) as f64;
    let p_gen = (cfg.offered_load / flits_per_packet).clamp(0.0, 1.0);

    let total = cfg.warmup + cfg.measure;
    let mut latency = Histogram::new();
    let mut delivered_flits = 0u64;
    let mut generated_flits = 0u64;
    let mut now = Cycles(0);
    // Ejected payload buffers feed the next injections instead of the
    // allocator; contents stay `vec![0; payload_bytes]`-identical.
    let mut pool = crate::pool::PayloadPool::new();

    while now.0 < total {
        if n >= 2 {
            for src in 0..n {
                if rng.gen_bool(p_gen) {
                    if now.0 >= cfg.warmup {
                        generated_flits += flits_per_packet as u64;
                    }
                    let dst = cfg.pattern.pick_dst(NodeId(src), n, &mut rng);
                    // Refused injections are lost offered load — exactly what
                    // saturation means in an open-loop experiment.
                    let payload = pool.take_zeroed(cfg.payload_bytes);
                    let _ = noc.try_inject(NodeId(src), dst, payload, now.0, now);
                }
            }
        }
        noc.tick(now);
        for e in 0..n {
            while let Some(mut p) = noc.eject(NodeId(e)) {
                if now.0 >= cfg.warmup {
                    latency.record(now.saturating_sub(p.injected_at));
                    delivered_flits += p.flits(cfg.noc.flit_bytes);
                }
                pool.put(std::mem::take(&mut p.data));
            }
        }
        now += Cycles(1);
    }

    let accepted = delivered_flits as f64 / (cfg.measure as f64 * n as f64);
    let generated = generated_flits as f64 / (cfg.measure as f64 * n as f64);
    // Judging saturation against the *realized* offered load (not the
    // configured expectation) keeps the verdict free of Bernoulli sampling
    // noise at light loads and short measurement windows.
    let saturated = delivered_flits < (0.95 * generated_flits as f64) as u64;
    Ok(OpenLoopResult {
        kind,
        n_endpoints: n,
        offered: cfg.offered_load,
        accepted,
        generated,
        latency,
        saturated,
    })
}

/// Sweeps offered load and returns one result per point — the data behind a
/// latency/throughput curve.
///
/// # Errors
///
/// Propagates [`BuildTopologyError`] from topology construction.
pub fn sweep_load(
    kind: TopologyKind,
    n: usize,
    loads: &[f64],
    base: &OpenLoopConfig,
) -> Result<Vec<OpenLoopResult>, BuildTopologyError> {
    loads
        .iter()
        .map(|&l| {
            let mut cfg = base.clone();
            cfg.offered_load = l;
            run_open_loop(kind, n, &cfg)
        })
        .collect()
}

/// Finds the saturation load of a topology by bisection on the offered load:
/// the highest load (within `tol`) at which delivered flits stay ≥ 95% of
/// the flits actually generated in the measurement window.
///
/// # Errors
///
/// Propagates [`BuildTopologyError`] from topology construction.
pub fn saturation_load(
    kind: TopologyKind,
    n: usize,
    base: &OpenLoopConfig,
    tol: f64,
) -> Result<f64, BuildTopologyError> {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let mut cfg = base.clone();
        cfg.offered_load = mid;
        let r = run_open_loop(kind, n, &cfg)?;
        if r.saturated {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OpenLoopConfig {
        OpenLoopConfig {
            warmup: 500,
            measure: 3_000,
            ..OpenLoopConfig::default()
        }
    }

    #[test]
    fn light_load_is_unsaturated_with_low_latency() {
        let mut cfg = quick();
        cfg.offered_load = 0.02;
        let r = run_open_loop(TopologyKind::Mesh, 16, &cfg).unwrap();
        assert!(!r.saturated, "2% load must not saturate a mesh");
        assert!(r.accepted > 0.015, "accepted {}", r.accepted);
        assert!(r.mean_latency() < 60.0, "latency {}", r.mean_latency());
    }

    #[test]
    fn bus_saturates_before_crossbar() {
        let cfg = quick();
        let bus = saturation_load(TopologyKind::SharedBus, 16, &cfg, 0.02).unwrap();
        let xbar = saturation_load(TopologyKind::Crossbar, 16, &cfg, 0.02).unwrap();
        assert!(
            xbar > bus * 2.0,
            "crossbar saturation {xbar} should dwarf bus {bus}"
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let cfg = quick();
        let rs = sweep_load(TopologyKind::Mesh, 16, &[0.02, 0.30], &cfg).unwrap();
        assert!(
            rs[1].mean_latency() > rs[0].mean_latency(),
            "latency must rise with load: {} vs {}",
            rs[0].mean_latency(),
            rs[1].mean_latency()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let mut cfg = quick();
        cfg.offered_load = 0.1;
        let a = run_open_loop(TopologyKind::FatTree, 16, &cfg).unwrap();
        let b = run_open_loop(TopologyKind::FatTree, 16, &cfg).unwrap();
        assert_eq!(a.accepted.to_bits(), b.accepted.to_bits());
        assert_eq!(a.latency.count(), b.latency.count());
    }

    #[test]
    fn hotspot_saturates_earlier_than_uniform() {
        let mut cfg = quick();
        cfg.pattern = TrafficPattern::Uniform;
        let uni = saturation_load(TopologyKind::Mesh, 16, &cfg, 0.02).unwrap();
        cfg.pattern = TrafficPattern::Hotspot {
            target: NodeId(0),
            fraction: 0.5,
        };
        let hot = saturation_load(TopologyKind::Mesh, 16, &cfg, 0.02).unwrap();
        assert!(
            hot < uni,
            "hotspot {hot} must saturate before uniform {uni}"
        );
    }
}
