//! NoC topology graphs and routing tables.
//!
//! The paper (§6.1) calls for characterizing "the various topologies —
//! ranging from bus, ring, tree to full-crossbar". This module builds those
//! graphs (plus the 2-D mesh and torus that dominated later NoC practice)
//! and precomputes deterministic next-hop routing tables for each.
//!
//! A topology is a directed graph of *routers*. The first `n_endpoints`
//! routers are endpoint routers with a network interface attached; additional
//! routers (bus arbiter, crossbar core, tree internals) carry traffic only.

use std::fmt;

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTopologyError {
    /// The endpoint count was zero.
    NoEndpoints,
    /// Mesh/torus dimensions do not multiply to the endpoint count.
    BadDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Fat-tree arity must be at least 2.
    BadArity(usize),
}

impl fmt::Display for BuildTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTopologyError::NoEndpoints => write!(f, "topology needs at least one endpoint"),
            BuildTopologyError::BadDimensions { width, height } => {
                write!(f, "invalid mesh dimensions {width}x{height}")
            }
            BuildTopologyError::BadArity(a) => write!(f, "fat-tree arity {a} must be >= 2"),
        }
    }
}

impl std::error::Error for BuildTopologyError {}

/// The topology families of the paper's §6.1 menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// A single shared bus: all endpoints hang off one arbiter that carries
    /// one transfer at a time (the "traditional shared bus" the paper says
    /// NoCs move away from).
    SharedBus,
    /// Bidirectional ring.
    Ring,
    /// 2-D mesh, XY dimension-order routed.
    Mesh,
    /// 2-D torus (mesh with wraparound), dimension-order routed.
    Torus,
    /// Fat tree (the SPIN network of the paper's §8 is a 32-port fat tree):
    /// link capacity doubles toward the root.
    FatTree,
    /// Ideal full crossbar: a single switch with per-output serialization.
    Crossbar,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::SharedBus => "bus",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::FatTree => "fat-tree",
            TopologyKind::Crossbar => "crossbar",
        };
        f.write_str(s)
    }
}

/// One directed link out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Destination router index.
    pub to: usize,
    /// Wire traversal latency in cycles (on top of serialization).
    pub latency: u64,
    /// Link width in flits per cycle (fat-tree upper links are wider).
    pub width: u64,
}

/// A built topology: graph, router modes and routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    n_endpoints: usize,
    /// Adjacency list per router.
    links: Vec<Vec<Link>>,
    /// Routers that serialize all their ports through one shared medium.
    shared: Vec<bool>,
    /// `next_hop[r][d]` = adjacency index (into `links[r]`) of the port that
    /// leads toward endpoint `d`, or `usize::MAX` when `r == d`.
    next_hop: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology of the given kind for `n` endpoints with the given
    /// per-hop link latency.
    ///
    /// Mesh and torus dimensions are chosen as the most square factorization
    /// of `n`. Fat trees use arity 4 (SPIN-like).
    ///
    /// # Errors
    ///
    /// Returns [`BuildTopologyError::NoEndpoints`] if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nw_noc::topology::{Topology, TopologyKind};
    /// let t = Topology::build(TopologyKind::Ring, 16, 1)?;
    /// assert_eq!(t.n_endpoints(), 16);
    /// # Ok::<(), nw_noc::topology::BuildTopologyError>(())
    /// ```
    pub fn build(
        kind: TopologyKind,
        n: usize,
        link_latency: u64,
    ) -> Result<Self, BuildTopologyError> {
        if n == 0 {
            return Err(BuildTopologyError::NoEndpoints);
        }
        match kind {
            TopologyKind::SharedBus => Ok(Self::star(n, link_latency, true)),
            TopologyKind::Crossbar => Ok(Self::star(n, link_latency, false)),
            TopologyKind::Ring => Ok(Self::ring(n, link_latency)),
            TopologyKind::Mesh => {
                let (w, h) = most_square(n);
                Self::mesh(w, h, link_latency, false)
            }
            TopologyKind::Torus => {
                let (w, h) = most_square(n);
                Self::mesh(w, h, link_latency, true)
            }
            TopologyKind::FatTree => Self::fat_tree(n, 4, link_latency),
        }
    }

    /// Star topology with a central router: a bus when `shared_center`, an
    /// ideal crossbar otherwise.
    fn star(n: usize, lat: u64, shared_center: bool) -> Self {
        let center = n;
        let mut links = vec![Vec::new(); n + 1];
        for i in 0..n {
            links[i].push(Link {
                to: center,
                latency: lat,
                width: 1,
            });
            links[center].push(Link {
                to: i,
                latency: lat,
                width: 1,
            });
        }
        let mut shared = vec![false; n + 1];
        shared[center] = shared_center;
        let kind = if shared_center {
            TopologyKind::SharedBus
        } else {
            TopologyKind::Crossbar
        };
        Self::finish(kind, n, links, shared)
    }

    fn ring(n: usize, lat: u64) -> Self {
        let mut links = vec![Vec::new(); n];
        if n > 1 {
            for (i, node_links) in links.iter_mut().enumerate() {
                let cw = (i + 1) % n;
                let ccw = (i + n - 1) % n;
                node_links.push(Link {
                    to: cw,
                    latency: lat,
                    width: 1,
                });
                if ccw != cw {
                    node_links.push(Link {
                        to: ccw,
                        latency: lat,
                        width: 1,
                    });
                }
            }
        }
        Self::finish(TopologyKind::Ring, n, links, vec![false; n])
    }

    fn mesh(w: usize, h: usize, lat: u64, wrap: bool) -> Result<Self, BuildTopologyError> {
        if w == 0 || h == 0 {
            return Err(BuildTopologyError::BadDimensions {
                width: w,
                height: h,
            });
        }
        let n = w * h;
        let idx = |x: usize, y: usize| y * w + x;
        let mut links = vec![Vec::new(); n];
        for y in 0..h {
            for x in 0..w {
                let me = idx(x, y);
                let mut push = |to: usize| {
                    if to != me {
                        links[me].push(Link {
                            to,
                            latency: lat,
                            width: 1,
                        });
                    }
                };
                if x + 1 < w {
                    push(idx(x + 1, y));
                } else if wrap && w > 1 {
                    push(idx(0, y));
                }
                if x > 0 {
                    push(idx(x - 1, y));
                } else if wrap && w > 1 {
                    push(idx(w - 1, y));
                }
                if y + 1 < h {
                    push(idx(x, y + 1));
                } else if wrap && h > 1 {
                    push(idx(x, 0));
                }
                if y > 0 {
                    push(idx(x, y - 1));
                } else if wrap && h > 1 {
                    push(idx(x, h - 1));
                }
            }
        }
        // Deduplicate (wraparound on width-2 dimensions creates duplicates).
        for l in &mut links {
            l.sort_by_key(|k| k.to);
            l.dedup_by_key(|k| k.to);
        }
        let kind = if wrap {
            TopologyKind::Torus
        } else {
            TopologyKind::Mesh
        };
        let mut topo = Self::finish(kind, n, links, vec![false; n]);
        topo.install_xy_routing(w, h, wrap);
        Ok(topo)
    }

    /// XY dimension-order routing for mesh/torus: resolve the X offset first,
    /// then Y; on a torus each dimension takes the shorter way around.
    fn install_xy_routing(&mut self, w: usize, h: usize, wrap: bool) {
        let n = w * h;
        let idx = |x: usize, y: usize| y * w + x;
        for r in 0..n {
            let (rx, ry) = (r % w, r / w);
            for d in 0..n {
                if r == d {
                    self.next_hop[r][d] = usize::MAX;
                    continue;
                }
                let (dx, dy) = (d % w, d / w);
                let target = if rx != dx {
                    let step = dim_step(rx, dx, w, wrap);
                    idx(step, ry)
                } else {
                    let step = dim_step(ry, dy, h, wrap);
                    idx(rx, step)
                };
                let port = self.links[r]
                    .iter()
                    .position(|l| l.to == target)
                    .expect("XY neighbor must exist in mesh adjacency");
                self.next_hop[r][d] = port;
            }
        }
    }

    fn fat_tree(n: usize, arity: usize, lat: u64) -> Result<Self, BuildTopologyError> {
        if arity < 2 {
            return Err(BuildTopologyError::BadArity(arity));
        }
        // Level 0: endpoints. Build internal levels until one root remains.
        let mut links: Vec<Vec<Link>> = vec![Vec::new(); n];
        let mut level: Vec<usize> = (0..n).collect();
        let mut width = 1u64;
        while level.len() > 1 {
            let parents = level.len().div_ceil(arity);
            let mut next_level = Vec::with_capacity(parents);
            for p in 0..parents {
                let pid = links.len();
                links.push(Vec::new());
                next_level.push(pid);
                for c in 0..arity {
                    let ci = p * arity + c;
                    if ci >= level.len() {
                        break;
                    }
                    let child = level[ci];
                    links[child].push(Link {
                        to: pid,
                        latency: lat,
                        width,
                    });
                    links[pid].push(Link {
                        to: child,
                        latency: lat,
                        width,
                    });
                }
            }
            level = next_level;
            // Fat links: capacity doubles per level toward the root.
            width *= 2;
        }
        let shared = vec![false; links.len()];
        Ok(Self::finish(TopologyKind::FatTree, n, links, shared))
    }

    /// Computes BFS routing tables and assembles the struct. Mesh/torus
    /// overwrite the table with XY routing afterwards.
    fn finish(
        kind: TopologyKind,
        n_endpoints: usize,
        links: Vec<Vec<Link>>,
        shared: Vec<bool>,
    ) -> Self {
        let next_hop = Self::bfs_tables(&links, n_endpoints, &[]);
        Topology {
            kind,
            n_endpoints,
            links,
            shared,
            next_hop,
        }
    }

    /// Per-destination BFS over the reverse adjacency, skipping any
    /// directed link listed in `dead` (as `(router, port-index)` pairs).
    /// Routers that cannot reach a destination keep `usize::MAX`.
    fn bfs_tables(
        links: &[Vec<Link>],
        n_endpoints: usize,
        dead: &[(usize, usize)],
    ) -> Vec<Vec<usize>> {
        let nr = links.len();
        let is_dead = |r: usize, p: usize| dead.contains(&(r, p));
        let mut next_hop = vec![vec![usize::MAX; n_endpoints]; nr];
        // Reverse adjacency for BFS from each destination endpoint.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); nr];
        for (from, ls) in links.iter().enumerate() {
            for (port, l) in ls.iter().enumerate() {
                if !is_dead(from, port) {
                    rev[l.to].push(from);
                }
            }
        }
        for r in &mut rev {
            r.sort_unstable();
            r.dedup();
        }
        for d in 0..n_endpoints {
            // dist and the "first hop toward d" for every router.
            let mut dist = vec![usize::MAX; nr];
            dist[d] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(d);
            while let Some(u) = queue.pop_front() {
                for &p in &rev[u] {
                    if dist[p] == usize::MAX {
                        dist[p] = dist[u] + 1;
                        // The live port at p leading to u is on a shortest
                        // path to d.
                        let port = links[p]
                            .iter()
                            .enumerate()
                            .find(|&(pi, l)| l.to == u && !is_dead(p, pi))
                            .map(|(pi, _)| pi)
                            .expect("reverse edge must exist forward");
                        next_hop[p][d] = port;
                        queue.push_back(p);
                    }
                }
            }
        }
        next_hop
    }

    /// Recomputes every routing table around a set of permanently dead
    /// directed links (`(router, port-index)` pairs) — the degraded-mode
    /// reroute of the fault-injection layer.
    ///
    /// The adjacency itself is untouched, so port indices stay aligned with
    /// [`links_of`](Self::links_of); only `next_hop` changes. Mesh/torus
    /// tables fall back from XY dimension-order to plain BFS shortest
    /// paths, and destinations a router can no longer reach get no entry
    /// (both [`next_hop`](Self::next_hop) and
    /// [`try_hops`](Self::try_hops) return `None`).
    pub fn recompute_routes(&mut self, dead: &[(usize, usize)]) {
        self.next_hop = Self::bfs_tables(&self.links, self.n_endpoints, dead);
    }

    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of endpoint routers (nodes components can attach to).
    pub fn n_endpoints(&self) -> usize {
        self.n_endpoints
    }

    /// Total router count including internal routers.
    pub fn n_routers(&self) -> usize {
        self.links.len()
    }

    /// Outgoing links of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn links_of(&self, r: usize) -> &[Link] {
        &self.links[r]
    }

    /// Whether router `r` serializes all ports through one shared medium.
    pub fn is_shared(&self, r: usize) -> bool {
        self.shared[r]
    }

    /// Port index at router `r` leading toward endpoint `d`, or `None` when
    /// `r` is the destination.
    pub fn next_hop(&self, r: usize, d: usize) -> Option<usize> {
        let p = self.next_hop[r][d];
        (p != usize::MAX).then_some(p)
    }

    /// Hop count from endpoint `a` to endpoint `b` following the routing
    /// tables (0 when `a == b`).
    ///
    /// # Panics
    ///
    /// Panics when the routing table cannot reach `b` from `a` (possible
    /// only after [`recompute_routes`](Self::recompute_routes) severed the
    /// pair) — use [`try_hops`](Self::try_hops) on degraded topologies.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.try_hops(a, b)
            .expect("routing table must reach destination")
    }

    /// Hop count from endpoint `a` to endpoint `b`, or `None` when the
    /// routing tables no longer connect the pair (degraded topology after
    /// permanent link faults).
    pub fn try_hops(&self, a: usize, b: usize) -> Option<usize> {
        let mut cur = a;
        let mut hops = 0;
        while cur != b {
            let port = self.next_hop[cur][b];
            if port == usize::MAX {
                return None;
            }
            cur = self.links[cur][port].to;
            hops += 1;
            assert!(hops <= self.links.len() + 1, "routing loop detected");
        }
        Some(hops)
    }

    /// Mean hop distance over all ordered endpoint pairs.
    pub fn mean_hops(&self) -> f64 {
        let n = self.n_endpoints;
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b);
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }

    /// Bisection capacity in flit-widths: a crude upper-bound comparator used
    /// by the topology characterization experiment (F4).
    pub fn total_link_capacity(&self) -> u64 {
        self.links.iter().flatten().map(|l| l.width).sum()
    }
}

/// Next coordinate when moving one step from `from` toward `to` along a
/// dimension of size `len`, wrapping if `wrap` and the wrap direction is
/// strictly shorter (ties go the non-wrap way).
fn dim_step(from: usize, to: usize, len: usize, wrap: bool) -> usize {
    debug_assert_ne!(from, to);
    let fwd = (to + len - from) % len; // steps going +1 with wrap
    let bwd = (from + len - to) % len; // steps going -1 with wrap
    let go_fwd = if !wrap {
        to > from
    } else if fwd < bwd {
        true
    } else if bwd < fwd {
        false
    } else {
        to > from
    };
    if go_fwd {
        (from + 1) % len
    } else {
        (from + len - 1) % len
    }
}

/// Most square factorization `(w, h)` of `n` with `w >= h`.
pub fn most_square(n: usize) -> (usize, usize) {
    let mut h = (n as f64).sqrt() as usize;
    while h > 1 && !n.is_multiple_of(h) {
        h -= 1;
    }
    let h = h.max(1);
    (n / h, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [TopologyKind; 6] = [
        TopologyKind::SharedBus,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::FatTree,
        TopologyKind::Crossbar,
    ];

    #[test]
    fn zero_endpoints_is_error() {
        for k in KINDS {
            let err = Topology::build(k, 0, 1).unwrap_err();
            assert_eq!(err, BuildTopologyError::NoEndpoints);
        }
    }

    #[test]
    fn all_pairs_reachable_all_kinds() {
        for k in KINDS {
            for n in [1usize, 2, 3, 4, 9, 16, 17, 32] {
                let t = Topology::build(k, n, 1).unwrap();
                assert_eq!(t.n_endpoints(), n, "{k} n={n}");
                for a in 0..n {
                    for b in 0..n {
                        let h = t.hops(a, b);
                        if a == b {
                            assert_eq!(h, 0);
                        } else {
                            assert!(h >= 1, "{k} {a}->{b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bus_and_crossbar_are_two_hops() {
        for k in [TopologyKind::SharedBus, TopologyKind::Crossbar] {
            let t = Topology::build(k, 8, 1).unwrap();
            assert_eq!(t.n_routers(), 9);
            for a in 0..8 {
                for b in 0..8 {
                    if a != b {
                        assert_eq!(t.hops(a, b), 2);
                    }
                }
            }
        }
    }

    #[test]
    fn ring_takes_shortest_direction() {
        let t = Topology::build(TopologyKind::Ring, 8, 1).unwrap();
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(0, 5), 3);
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        // 4x4 mesh.
        let t = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        // node index = y*4+x: 0=(0,0), 15=(3,3).
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(5, 6), 1);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::build(TopologyKind::Torus, 16, 1).unwrap();
        // (0,0) to (3,0): 1 hop via wraparound instead of 3.
        assert_eq!(t.hops(0, 3), 1);
        assert_eq!(t.hops(0, 15), 2);
    }

    #[test]
    fn fat_tree_structure() {
        let t = Topology::build(TopologyKind::FatTree, 16, 1).unwrap();
        // 16 leaves + 4 L1 + 1 root = 21 routers.
        assert_eq!(t.n_routers(), 21);
        // Siblings under same L1 switch: 2 hops; across the root: 4 hops.
        assert_eq!(t.hops(0, 1), 2);
        assert_eq!(t.hops(0, 15), 4);
        // Upper links are wider than leaf links.
        let leaf_w = t.links_of(0)[0].width;
        let root = t.n_routers() - 1;
        let up_w = t.links_of(root)[0].width;
        assert!(up_w > leaf_w);
    }

    #[test]
    fn mean_hops_ranking_matches_theory() {
        let n = 16;
        let bus = Topology::build(TopologyKind::SharedBus, n, 1).unwrap();
        let ring = Topology::build(TopologyKind::Ring, n, 1).unwrap();
        let mesh = Topology::build(TopologyKind::Mesh, n, 1).unwrap();
        // Ring mean hops (~n/4) exceeds mesh mean hops (~2*sqrt(n)/3) at n=16.
        assert!(ring.mean_hops() > mesh.mean_hops());
        // Star topologies have constant mean hops of 2.
        assert!((bus.mean_hops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn only_bus_center_is_shared() {
        let bus = Topology::build(TopologyKind::SharedBus, 4, 1).unwrap();
        assert!(bus.is_shared(4));
        assert!(!bus.is_shared(0));
        let xbar = Topology::build(TopologyKind::Crossbar, 4, 1).unwrap();
        assert!(!xbar.is_shared(4));
    }

    #[test]
    fn most_square_factorizations() {
        assert_eq!(most_square(16), (4, 4));
        assert_eq!(most_square(12), (4, 3));
        assert_eq!(most_square(17), (17, 1));
        assert_eq!(most_square(1), (1, 1));
    }

    #[test]
    fn single_endpoint_topologies_are_trivial() {
        for k in KINDS {
            let t = Topology::build(k, 1, 1).unwrap();
            assert_eq!(t.hops(0, 0), 0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TopologyKind::FatTree.to_string(), "fat-tree");
        assert_eq!(TopologyKind::SharedBus.to_string(), "bus");
    }

    #[test]
    fn reroute_avoids_dead_link_on_mesh() {
        // 4x4 mesh, XY routing: 0 -> 3 goes east along row 0 through port
        // 0->1. Kill that link; BFS must find a detour (e.g. via row 1).
        let mut t = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        assert_eq!(t.hops(0, 3), 3);
        let dead_port = t.next_hop(0, 1).unwrap();
        assert_eq!(t.links_of(0)[dead_port].to, 1);
        t.recompute_routes(&[(0, dead_port)]);
        // Still reachable, two extra hops around the gap.
        assert_eq!(t.try_hops(0, 3), Some(5));
        assert_eq!(t.try_hops(0, 1), Some(3));
        // The dead port is never the first hop out of router 0 any more.
        for d in 0..16 {
            assert_ne!(t.next_hop(0, d), Some(dead_port), "dest {d}");
        }
        // Reverse direction was not killed: 3 -> 0 still runs the row.
        assert_eq!(t.try_hops(3, 0), Some(3));
    }

    #[test]
    fn reroute_reports_disconnection() {
        // Severing an endpoint's only outbound link on a star disconnects
        // it outbound but leaves it reachable inbound.
        let mut t = Topology::build(TopologyKind::Crossbar, 4, 1).unwrap();
        t.recompute_routes(&[(0, 0)]);
        assert_eq!(t.try_hops(0, 1), None);
        assert_eq!(t.try_hops(1, 0), Some(2));
        assert_eq!(t.try_hops(0, 0), Some(0));
        assert_eq!(t.next_hop(0, 1), None);
    }

    #[test]
    fn reroute_with_no_dead_links_matches_bfs() {
        // An empty dead set degrades mesh XY tables to BFS shortest paths:
        // hop counts stay identical even where port choices differ.
        let reference = Topology::build(TopologyKind::Mesh, 16, 1).unwrap();
        let mut t = reference.clone();
        t.recompute_routes(&[]);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.try_hops(a, b), Some(reference.hops(a, b)));
            }
        }
    }
}
