//! Semiconductor economics and technology-scaling trend models.
//!
//! The paper's motivation (§1, §2, §6) is quantitative even though it is a
//! position paper, and every number it states is reproduced by a model in
//! this crate:
//!
//! * [`nre`] — mask-set NRE ×10 in ~3 generations, > $1M at 90 nm; design
//!   NRE $10–100M; break-even volumes at $5/chip and 20% margin (claims C1,
//!   C2, experiments T1/T2).
//! * [`growth`] — Moore's-law 56%/yr transistor growth versus 140%/yr
//!   embedded-software complexity growth, and the §1 observation that 100M
//!   transistors could hold "over one thousand 32 bit RISC processors"
//!   (claim C3, experiment F3).
//! * [`wire`] — cross-chip propagation delay reaching 6–10 clock cycles at
//!   50 nm (claim C5, experiment F5, after Benini & De Micheli \[12\]).
//! * [`continuum`] — the NRE–flexibility continuum from FPGA through
//!   gate-array-style structured fabrics and platform SoCs to full-custom
//!   ASICs (claim C11, experiment T7).

pub mod continuum;
pub mod growth;
pub mod nre;
pub mod productivity;
pub mod wire;

pub use continuum::{crossover_volume, ImplStyle};
pub use growth::{
    hw_design_effort, hw_transistors, risc_cores_in, sw_complexity, sw_overtakes_hw_year,
};
pub use nre::{break_even_volume, design_nre, mask_set_nre};
pub use productivity::{evolutionary_peak, evolutionary_productivity, platform_productivity};
pub use wire::{cross_chip_delay_cycles, wire_delay_ps_per_mm};
