//! Non-recurring expense models.
//!
//! §1 of the paper: "The SoC mask set manufacturing NRE cost has been
//! multiplied by a factor of ten in about three process technology
//! generations, exceeding 1M$ for current 90nm process … design NRE, which
//! ranges from 10M$ to 100M$ for today's complex 0.13 micron designs."
//! The models here are calibrated on exactly those two anchor points.

use nw_types::{Dollars, TechNode};

/// Mask-set manufacturing NRE at a node.
///
/// Anchored at $1M for 90 nm with a ×10 growth per 3 generations (×10^(1/3)
/// per generation), per the paper's §1.
///
/// # Examples
///
/// ```
/// use nw_econ::mask_set_nre;
/// use nw_types::TechNode;
///
/// let m90 = mask_set_nre(TechNode::N90);
/// assert!((m90.millions() - 1.0).abs() < 1e-9);
/// // Three generations earlier: one tenth.
/// let m250 = mask_set_nre(TechNode::N250);
/// assert!((m250.millions() - 0.1).abs() < 1e-6);
/// ```
pub fn mask_set_nre(node: TechNode) -> Dollars {
    let gens_past_90 = node.ladder_position() - TechNode::N90.ladder_position();
    Dollars::from_millions(10f64.powf(gens_past_90 / 3.0))
}

/// Design NRE for a complex SoC at a node.
///
/// The paper gives $10–100M for 0.13 µm; `complexity` in `[0, 1]` spans that
/// range geometrically (0 = modest 10M$ design, 1 = flagship 100M$ design).
/// Design cost grows ~1.5× per generation (design-productivity gap: tools
/// improve slower than transistor counts grow).
///
/// # Panics
///
/// Panics if `complexity` is outside `[0, 1]`.
pub fn design_nre(node: TechNode, complexity: f64) -> Dollars {
    assert!(
        (0.0..=1.0).contains(&complexity),
        "complexity {complexity} must be in [0, 1]"
    );
    let base = Dollars::from_millions(10f64 * 10f64.powf(complexity));
    let gens_past_130 = node.ladder_position() - TechNode::N130.ladder_position();
    base * 1.5f64.powf(gens_past_130)
}

/// Units that must be sold to recover `nre` at a given unit price and profit
/// margin — the paper's "selling over one million chips simply to pay for
/// the mask set NRE".
///
/// # Panics
///
/// Panics if `price` or `margin` is not positive.
///
/// # Examples
///
/// ```
/// use nw_econ::{break_even_volume, mask_set_nre};
/// use nw_types::{Dollars, TechNode};
///
/// // The paper's example: $5 chip, 20% margin, $1M mask at 90nm → 1M units.
/// let v = break_even_volume(mask_set_nre(TechNode::N90), Dollars(5.0), 0.20);
/// assert!((v - 1.0e6).abs() < 1.0);
/// ```
pub fn break_even_volume(nre: Dollars, price: Dollars, margin: f64) -> f64 {
    assert!(price.0 > 0.0, "price must be positive");
    assert!(margin > 0.0, "margin must be positive");
    nre.0 / (price.0 * margin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_nre_tenfold_in_three_generations() {
        // C1: ×10 per 3 generations, in both directions from the anchor.
        let ratio = mask_set_nre(TechNode::N45).0 / mask_set_nre(TechNode::N90).0;
        assert!((ratio - 10f64.powf(2.0 / 3.0)).abs() < 1e-6);
        let ratio3 = mask_set_nre(TechNode::N90).0 / mask_set_nre(TechNode::N250).0;
        assert!((ratio3 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn mask_nre_exceeds_1m_at_90nm_and_below() {
        assert!(mask_set_nre(TechNode::N90).millions() >= 1.0);
        assert!(mask_set_nre(TechNode::N65).millions() > 1.0);
        assert!(mask_set_nre(TechNode::N130).millions() < 1.0);
    }

    #[test]
    fn design_nre_range_at_130nm() {
        // C2: $10M to $100M for 0.13 micron designs.
        assert!((design_nre(TechNode::N130, 0.0).millions() - 10.0).abs() < 1e-9);
        assert!((design_nre(TechNode::N130, 1.0).millions() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn design_breakeven_10_to_100_million_units() {
        // C2: "volumes of 10 to 100 million chips to break even".
        let price = Dollars(5.0);
        let lo = break_even_volume(design_nre(TechNode::N130, 0.0), price, 0.20);
        let hi = break_even_volume(design_nre(TechNode::N130, 1.0), price, 0.20);
        assert!((lo - 10e6).abs() < 1.0, "low end {lo}");
        assert!((hi - 100e6).abs() < 10.0, "high end {hi}");
    }

    #[test]
    fn design_nre_grows_with_node() {
        assert!(design_nre(TechNode::N90, 0.5).0 > design_nre(TechNode::N130, 0.5).0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_complexity_panics() {
        design_nre(TechNode::N90, 1.5);
    }

    #[test]
    #[should_panic(expected = "price must be positive")]
    fn bad_price_panics() {
        break_even_volume(Dollars(1.0), Dollars(0.0), 0.2);
    }
}
