//! The NRE–flexibility continuum.
//!
//! §1 of the paper surveys the implementation-style spectrum: FPGAs ("higher
//! power and cost preclude high-volume and low-power applications"),
//! "gate-array style fabric and top metal-level configuration" structured
//! parts as "an intermediate point on the NRE-flexibility continuum",
//! software-programmable platform SoCs (the paper's thesis), and full cell
//! ASICs. Experiment T7 tabulates the continuum and the volume crossovers
//! between neighboring styles.

use crate::nre::{design_nre, mask_set_nre};
use nw_types::{Dollars, TechNode};
use std::fmt;

/// Implementation styles on the continuum, ordered from most flexible /
/// lowest NRE to least flexible / highest NRE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplStyle {
    /// Off-the-shelf FPGA: zero mask NRE, big unit-cost and power penalty.
    Fpga,
    /// Structured array (gate-array fabric, top-metal configuration only):
    /// a fraction of the mask set, moderate unit penalty.
    StructuredArray,
    /// Software-programmable platform SoC (the paper's FPPA direction):
    /// full mask set amortized over a product family, small unit penalty
    /// versus a dedicated ASIC.
    PlatformSoc,
    /// Full cell-based ASIC: full mask + design NRE, unit-cost baseline.
    CellAsic,
}

impl ImplStyle {
    /// All four styles, most flexible first.
    pub const ALL: [ImplStyle; 4] = [
        ImplStyle::Fpga,
        ImplStyle::StructuredArray,
        ImplStyle::PlatformSoc,
        ImplStyle::CellAsic,
    ];

    /// Up-front NRE for a product using this style at `node`.
    ///
    /// Platform SoCs amortize their (large) platform NRE over
    /// `platform_products` derivative products, per the paper's "a SoC
    /// design platform needs to be amortized over many variants and
    /// generations of a product family".
    pub fn product_nre(&self, node: TechNode, platform_products: f64) -> Dollars {
        let mask = mask_set_nre(node);
        match self {
            // FPGA: no masks; modest board/tool NRE.
            ImplStyle::Fpga => Dollars::from_millions(0.1),
            // Top-metal configuration: ~25% of the mask set plus a light
            // design effort.
            ImplStyle::StructuredArray => mask * 0.25 + Dollars::from_millions(1.0),
            // Full platform (masks + flagship design NRE) amortized, plus a
            // small per-product software/configuration effort.
            ImplStyle::PlatformSoc => {
                let platform = mask + design_nre(node, 0.8);
                platform * (1.0 / platform_products.max(1.0)) + Dollars::from_millions(2.0)
            }
            // Dedicated chip: everything, alone.
            ImplStyle::CellAsic => mask + design_nre(node, 0.5),
        }
    }

    /// Unit-cost multiplier versus the cell-ASIC baseline (silicon area and
    /// speed/power overheads folded into cost).
    pub fn unit_cost_factor(&self) -> f64 {
        match self {
            ImplStyle::Fpga => 8.0,
            ImplStyle::StructuredArray => 2.5,
            ImplStyle::PlatformSoc => 1.3,
            ImplStyle::CellAsic => 1.0,
        }
    }

    /// Post-fabrication flexibility score in `[0, 1]` (what fraction of
    /// product behaviour can change after silicon).
    pub fn flexibility(&self) -> f64 {
        match self {
            ImplStyle::Fpga => 1.0,
            ImplStyle::StructuredArray => 0.15,
            ImplStyle::PlatformSoc => 0.85,
            ImplStyle::CellAsic => 0.02,
        }
    }

    /// Total cost of shipping `volume` units at `unit_base` baseline silicon
    /// cost.
    pub fn total_cost(
        &self,
        node: TechNode,
        platform_products: f64,
        unit_base: Dollars,
        volume: f64,
    ) -> Dollars {
        self.product_nre(node, platform_products) + unit_base * self.unit_cost_factor() * volume
    }
}

impl fmt::Display for ImplStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ImplStyle::Fpga => "FPGA",
            ImplStyle::StructuredArray => "structured-array",
            ImplStyle::PlatformSoc => "platform-SoC",
            ImplStyle::CellAsic => "cell-ASIC",
        };
        f.write_str(s)
    }
}

/// Volume at which style `b` becomes cheaper than style `a` (where `a` has
/// lower NRE and higher unit cost). Returns `None` when the curves do not
/// cross (one style dominates).
pub fn crossover_volume(
    a: ImplStyle,
    b: ImplStyle,
    node: TechNode,
    platform_products: f64,
    unit_base: Dollars,
) -> Option<f64> {
    let d_nre = b.product_nre(node, platform_products).0 - a.product_nre(node, platform_products).0;
    let d_unit = (a.unit_cost_factor() - b.unit_cost_factor()) * unit_base.0;
    if d_unit <= 0.0 || d_nre <= 0.0 {
        return None;
    }
    Some(d_nre / d_unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODE: TechNode = TechNode::N90;
    const FAMILY: f64 = 10.0;

    #[test]
    fn nre_ordering_matches_the_continuum() {
        let nres: Vec<f64> = ImplStyle::ALL
            .iter()
            .map(|s| s.product_nre(NODE, FAMILY).0)
            .collect();
        for w in nres.windows(2) {
            assert!(
                w[0] < w[1],
                "NRE must increase along the continuum: {nres:?}"
            );
        }
    }

    #[test]
    fn unit_cost_ordering_is_inverse() {
        let units: Vec<f64> = ImplStyle::ALL
            .iter()
            .map(|s| s.unit_cost_factor())
            .collect();
        for w in units.windows(2) {
            assert!(w[0] > w[1], "unit cost must fall along the continuum");
        }
    }

    #[test]
    fn platform_soc_keeps_most_flexibility() {
        assert!(ImplStyle::PlatformSoc.flexibility() > 0.5);
        assert!(ImplStyle::CellAsic.flexibility() < 0.1);
        assert_eq!(ImplStyle::Fpga.flexibility(), 1.0);
    }

    #[test]
    fn low_volume_favors_fpga_high_volume_favors_asic() {
        let unit = Dollars(5.0);
        let total = |s: ImplStyle, v: f64| s.total_cost(NODE, FAMILY, unit, v).0;
        // 10k units: FPGA wins despite 8x unit cost.
        assert!(total(ImplStyle::Fpga, 10e3) < total(ImplStyle::CellAsic, 10e3));
        // 10M units: ASIC wins.
        assert!(total(ImplStyle::CellAsic, 10e6) < total(ImplStyle::Fpga, 10e6));
    }

    #[test]
    fn crossovers_exist_between_neighbors() {
        let unit = Dollars(5.0);
        let mut last = 0.0;
        for w in ImplStyle::ALL.windows(2) {
            let v = crossover_volume(w[0], w[1], NODE, FAMILY, unit)
                .unwrap_or_else(|| panic!("{} vs {} must cross", w[0], w[1]));
            assert!(
                v > last,
                "crossovers must move to higher volumes: {v} after {last}"
            );
            last = v;
        }
    }

    #[test]
    fn platform_amortization_lowers_product_nre() {
        let solo = ImplStyle::PlatformSoc.product_nre(NODE, 1.0);
        let family = ImplStyle::PlatformSoc.product_nre(NODE, 10.0);
        assert!(family.0 < solo.0 / 3.0);
    }

    #[test]
    fn no_crossover_when_dominated() {
        // Comparing a style with itself: no crossing.
        assert!(
            crossover_volume(ImplStyle::Fpga, ImplStyle::Fpga, NODE, FAMILY, Dollars(5.0))
                .is_none()
        );
    }
}
