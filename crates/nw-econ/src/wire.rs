//! Cross-chip wire delay versus technology node.
//!
//! §6.1 of the paper, citing Benini & De Micheli \[12\]: "In 50 nm
//! technologies, it is predicted that the intra-chip propagation delay will
//! be between six and ten clock cycles." The model here reproduces that
//! prediction: per-mm wire delay worsens inversely with feature size (RC of
//! minimum-pitch global wires), while the core clock speeds up ~1.4× per
//! generation — multiplying into the cycle counts that motivated
//! networks-on-chip in the first place.

use nw_types::TechNode;

/// Propagation delay of a repeated global wire, in picoseconds per mm.
///
/// Calibrated so the 50 nm node lands inside the paper's 6–10 cycle window
/// for a 20 mm cross-chip route: ~46 ps/mm at 0.35 µm growing as
/// `350 / feature`.
pub fn wire_delay_ps_per_mm(node: TechNode) -> f64 {
    46.0 * 350.0 / f64::from(node.feature_nm())
}

/// Cross-chip propagation delay in clock cycles at the node's nominal clock
/// for a route of `distance_mm`.
///
/// # Examples
///
/// ```
/// use nw_econ::cross_chip_delay_cycles;
/// use nw_types::TechNode;
///
/// let c50 = cross_chip_delay_cycles(TechNode::N50, 20.0);
/// assert!(c50 >= 6.0 && c50 <= 10.0, "the paper's 6-10 cycle window");
/// ```
pub fn cross_chip_delay_cycles(node: TechNode, distance_mm: f64) -> f64 {
    let delay_s = wire_delay_ps_per_mm(node) * distance_mm * 1e-12;
    delay_s * node.nominal_clock_hz()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_nm_hits_the_papers_window() {
        let c = cross_chip_delay_cycles(TechNode::N50, TechNode::N50.die_edge_mm());
        assert!((6.0..=10.0).contains(&c), "50nm cross-chip = {c} cycles");
    }

    #[test]
    fn old_nodes_cross_in_under_a_cycle() {
        // In the 0.35 µm era, wires were effectively free.
        let c = cross_chip_delay_cycles(TechNode::N350, 20.0);
        assert!(c < 0.5, "350nm cross-chip = {c} cycles");
    }

    #[test]
    fn delay_cycles_grow_monotonically_down_the_ladder() {
        let mut last = 0.0;
        for n in TechNode::LADDER {
            let c = cross_chip_delay_cycles(n, 20.0);
            assert!(c > last, "{n}: {c} after {last}");
            last = c;
        }
    }

    #[test]
    fn delay_scales_linearly_with_distance() {
        let one = cross_chip_delay_cycles(TechNode::N90, 1.0);
        let twenty = cross_chip_delay_cycles(TechNode::N90, 20.0);
        assert!((twenty / one - 20.0).abs() < 1e-9);
    }

    #[test]
    fn per_mm_delay_worsens_with_scaling() {
        assert!(wire_delay_ps_per_mm(TechNode::N50) > wire_delay_ps_per_mm(TechNode::N350));
    }
}
