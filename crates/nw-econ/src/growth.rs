//! Hardware-versus-software complexity growth.
//!
//! §6 of the paper: "The growth of hardware complexity in SoC's has tracked
//! Moore's law, with a resulting growth of 56% in transistor count per year.
//! However, industry studies show that the complexity of embedded S/W is
//! rising at a staggering 140% per year. In many leading SoC's today, the
//! embedded S/W development effort has surpassed that of the H/W design
//! effort."

/// Reference year for the growth series (the paper's "today" is 2003; both
/// efforts are taken as having been equal around 1998, consistent with
/// "has surpassed" by 2003).
pub const BASE_YEAR: u32 = 1998;

/// Transistor count of a leading SoC in `year`, growing 56%/yr from a 20M
/// transistor design at [`BASE_YEAR`] (which lands at ~120M in 2003 — the
/// paper's "over 100 million transistors").
pub fn hw_transistors(year: u32) -> f64 {
    20e6 * 1.56f64.powf(f64::from(year) - f64::from(BASE_YEAR))
}

/// Embedded-software complexity (in normalized effort units, 1.0 at
/// [`BASE_YEAR`]) growing 140%/yr.
pub fn sw_complexity(year: u32) -> f64 {
    2.4f64.powf(f64::from(year) - f64::from(BASE_YEAR))
}

/// Hardware design effort in the same normalized units (1.0 at
/// [`BASE_YEAR`]), growing with transistor count but deflated by design
/// reuse/tool productivity gains (~21%/yr per the classic ITRS
/// design-productivity figures), netting ~29%/yr effort growth.
pub fn hw_design_effort(year: u32) -> f64 {
    (1.56f64 / 1.21).powf(f64::from(year) - f64::from(BASE_YEAR))
}

/// First year (searching from [`BASE_YEAR`]) in which software effort
/// exceeds hardware design effort by at least `factor`.
pub fn sw_overtakes_hw_year(factor: f64) -> u32 {
    (BASE_YEAR..BASE_YEAR + 50)
        .find(|&y| sw_complexity(y) >= factor * hw_design_effort(y))
        .unwrap_or(BASE_YEAR + 50)
}

/// How many simple 32-bit RISC cores fit in `transistors` — the paper's §1:
/// 100M transistors is "enough to theoretically place the logic of over one
/// thousand 32 bit RISC processors on a die" (i.e. ~100k transistors per
/// core, the classic integer-RISC logic budget).
pub fn risc_cores_in(transistors: f64) -> f64 {
    transistors / 100e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_count_matches_the_papers_today() {
        // "over 100 million transistors" in 2003.
        let t2003 = hw_transistors(2003);
        assert!(t2003 > 100e6 && t2003 < 250e6, "2003 count {t2003}");
    }

    #[test]
    fn thousand_risc_cores_claim() {
        // §1: 100M transistors ⇒ over one thousand 32-bit RISC cores.
        assert!(risc_cores_in(100e6) >= 1000.0);
        assert!(risc_cores_in(hw_transistors(2003)) > 1000.0);
    }

    #[test]
    fn growth_rates_are_as_stated() {
        assert!((hw_transistors(1999) / hw_transistors(1998) - 1.56).abs() < 1e-9);
        assert!((sw_complexity(2000) / sw_complexity(1999) - 2.4).abs() < 1e-9);
    }

    #[test]
    fn sw_overtakes_hw_quickly() {
        // Equal at BASE_YEAR; SW pulls ahead immediately and is >2x within
        // two years — consistent with "has surpassed" by 2003.
        let y = sw_overtakes_hw_year(1.0);
        assert_eq!(y, BASE_YEAR);
        let y2 = sw_overtakes_hw_year(2.0);
        assert!(y2 <= 2000, "2x crossover at {y2}");
        let y10 = sw_overtakes_hw_year(10.0);
        assert!((2001..=2005).contains(&y10), "10x crossover at {y10}");
    }

    #[test]
    fn effort_units_are_normalized_at_base() {
        assert!((sw_complexity(BASE_YEAR) - 1.0).abs() < 1e-12);
        assert!((hw_design_effort(BASE_YEAR) - 1.0).abs() < 1e-12);
    }
}
