//! Design productivity versus complexity — the paper's §2 warning.
//!
//! "In fact, it could be argued that for 90nm technologies and beyond, the
//! design productivity (transistors designed per man-year) will actually
//! decline due to the new deep submicron effects."
//!
//! The model: baseline productivity grows with tool/reuse improvements
//! (~21%/yr, the classic ITRS design-technology figure), but below 130 nm
//! each generation adds a deep-submicron verification/closure *tax*
//! (signal integrity, OCV, leakage, DFM) that compounds — so net
//! productivity peaks and then declines, exactly the §2 argument for
//! changing the methodology instead of scaling it.

use nw_types::TechNode;

/// Transistors designed per man-year at `node` under the evolutionary
/// (paper's "same way we are doing it now") methodology.
///
/// Calibrated at 1M transistors/man-year at 0.35 µm with 21%/yr tool gains
/// (~1.5 years per node ⇒ ×1.33 per generation) and a deep-submicron
/// closure tax of 35% extra effort per generation below 130 nm.
pub fn evolutionary_productivity(node: TechNode) -> f64 {
    let gens = node.ladder_position();
    let tools = 1.0e6 * 1.33f64.powf(gens);
    let dsm_gens = (gens - TechNode::N130.ladder_position()).max(0.0);
    let tax = 1.35f64.powf(dsm_gens);
    tools / tax
}

/// Productivity under the paper's platform methodology: the platform user
/// writes software against a stable programming model, so the deep-
/// submicron tax is paid once per *platform*, not per product. Modeled as
/// the tool curve with only a mild (5%/generation) integration overhead.
pub fn platform_productivity(node: TechNode) -> f64 {
    let gens = node.ladder_position();
    let tools = 1.0e6 * 1.33f64.powf(gens);
    let dsm_gens = (gens - TechNode::N130.ladder_position()).max(0.0);
    tools / 1.05f64.powf(dsm_gens)
}

/// The node at which evolutionary productivity peaks (searching the
/// ladder): the paper predicts decline "for 90nm technologies and beyond".
pub fn evolutionary_peak() -> TechNode {
    TechNode::LADDER
        .into_iter()
        .max_by(|a, b| {
            evolutionary_productivity(*a)
                .partial_cmp(&evolutionary_productivity(*b))
                .expect("finite productivity")
        })
        .expect("ladder is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn productivity_declines_beyond_130nm_under_evolution() {
        // §2: decline at 90 nm and beyond.
        let p130 = evolutionary_productivity(TechNode::N130);
        let p90 = evolutionary_productivity(TechNode::N90);
        let p65 = evolutionary_productivity(TechNode::N65);
        let p45 = evolutionary_productivity(TechNode::N45);
        assert!(
            p90 < p130 * 1.0,
            "90nm ({p90}) should not beat 130nm ({p130})"
        );
        assert!(p65 < p90);
        assert!(p45 < p65);
    }

    #[test]
    fn peak_is_at_130nm() {
        assert_eq!(evolutionary_peak(), TechNode::N130);
    }

    #[test]
    fn platform_methodology_keeps_growing() {
        let p130 = platform_productivity(TechNode::N130);
        let p45 = platform_productivity(TechNode::N45);
        assert!(p45 > p130, "platform curve must keep rising");
        // And beats evolutionary by a widening factor at 45 nm.
        let ratio = p45 / evolutionary_productivity(TechNode::N45);
        assert!(ratio > 2.0, "gap at 45nm should be large: {ratio}");
    }

    #[test]
    fn curves_agree_above_130nm() {
        for n in [
            TechNode::N350,
            TechNode::N250,
            TechNode::N180,
            TechNode::N130,
        ] {
            let a = evolutionary_productivity(n);
            let b = platform_productivity(n);
            assert!((a - b).abs() < 1e-6, "{n}: {a} vs {b}");
        }
    }
}
