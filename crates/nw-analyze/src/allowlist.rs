//! The checked-in allowlist of grandfathered findings.
//!
//! Format — one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! RULE path/relative/to/repo.rs — justification (required)
//! ```
//!
//! An entry suppresses every finding of `RULE` in that file. Entries are
//! audited by the engine: a line that does not parse, names an unknown
//! rule, lacks a justification, or no longer matches any finding raises
//! an [`AL01`](crate::RuleId::Al01) diagnostic — the allowlist can only
//! shrink truthfully, never rot.

use crate::diag::{Diagnostic, RuleId};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule this entry suppresses.
    pub rule: RuleId,
    /// Repo-relative path the suppression applies to.
    pub path: String,
    /// Why the finding is acceptable (required, non-empty).
    pub reason: String,
    /// 1-based line in the allowlist file (for AL01 reporting).
    pub line: usize,
}

/// A parsed allowlist: entries plus the diagnostics its own text earned.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Well-formed entries.
    pub entries: Vec<AllowEntry>,
    /// AL01 findings for malformed lines.
    pub problems: Vec<Diagnostic>,
}

impl Allowlist {
    /// Parses allowlist text. `source_path` names the file in AL01
    /// diagnostics (normally `nw-analyze.allow`).
    pub fn parse(source_path: &str, text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut problem = |msg: String| {
                list.problems.push(Diagnostic {
                    rule: RuleId::Al01,
                    path: source_path.to_string(),
                    line: n + 1,
                    col: 1,
                    message: msg,
                });
            };
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule_txt), Some(path)) = (parts.next(), parts.next()) else {
                problem(format!("unparseable allowlist line: `{line}`"));
                continue;
            };
            let Some(rule) = RuleId::from_id(rule_txt) else {
                problem(format!("unknown rule id `{rule_txt}` in allowlist"));
                continue;
            };
            let reason = parts
                .next()
                .unwrap_or("")
                .trim_start_matches(['—', '-', ':', ' '])
                .trim();
            if reason.is_empty() {
                problem(format!(
                    "allowlist entry {rule} {path} has no justification — every \
                     grandfathered finding must say why it is safe"
                ));
                continue;
            }
            list.entries.push(AllowEntry {
                rule,
                path: path.to_string(),
                reason: reason.to_string(),
                line: n + 1,
            });
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_requires_reasons() {
        let text = "\
# comment
ND01 crates/x/src/a.rs — test oracle, iteration order unobserved

WR01 crates/y/src/wire.rs: bounded by construction
ND01 crates/z/src/b.rs
ZZ99 crates/z/src/b.rs — nope
";
        let list = Allowlist::parse("nw-analyze.allow", text);
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].rule, RuleId::Nd01);
        assert_eq!(list.entries[0].path, "crates/x/src/a.rs");
        assert!(list.entries[0].reason.starts_with("test oracle"));
        assert_eq!(list.entries[1].rule, RuleId::Wr01);
        // Missing reason and unknown rule are AL01 problems.
        assert_eq!(list.problems.len(), 2);
        assert!(list.problems.iter().all(|p| p.rule == RuleId::Al01));
        assert_eq!(list.problems[0].line, 5);
        assert_eq!(list.problems[1].line, 6);
    }
}
