//! In-source suppression markers.
//!
//! A marker is a comment of the form:
//!
//! ```text
//! // nw-analyze: allow(ND01): reason this site is safe
//! // nw-analyze: allow-file(RH01): reason the whole file is exempt
//! ```
//!
//! `allow(RULE)` suppresses findings of that rule on the marker's own
//! line and on the next line carrying code — intervening comment-only
//! or blank lines are skipped, so a multi-line justification still
//! covers the statement under it. `allow-file(RULE)` suppresses the
//! rule for the whole
//! file — the shape RH01 needs, where the "finding" is the absence of a
//! recycle anywhere in the module. The reason text is mandatory: a
//! marker without one, or naming an unknown rule, is itself an
//! [`AL01`](crate::RuleId::Al01) finding.

use crate::diag::{Diagnostic, RuleId};
use crate::scan::SourceFile;

/// Suppression state extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Markers {
    /// `(rule, 0-based line)` pairs of every line a marker covers: the
    /// marker's own line and the next line carrying code.
    pub line_allows: Vec<(RuleId, usize)>,
    /// Rules suppressed for the whole file.
    pub file_allows: Vec<RuleId>,
    /// AL01 findings for malformed markers.
    pub problems: Vec<Diagnostic>,
}

impl Markers {
    /// Scans a file's comment view for markers.
    pub fn collect(file: &SourceFile) -> Markers {
        let mut m = Markers::default();
        for (n, line) in file.lines.iter().enumerate() {
            let comment = &line.comment;
            let mut from = 0;
            while let Some(rel) = comment[from..].find("nw-analyze:") {
                let at = from + rel + "nw-analyze:".len();
                let rest = comment[at..].trim_start();
                from = at;
                let (file_wide, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
                    (true, b)
                } else if let Some(b) = rest.strip_prefix("allow(") {
                    (false, b)
                } else {
                    m.problems.push(Diagnostic {
                        rule: RuleId::Al01,
                        path: file.path.clone(),
                        line: n + 1,
                        col: 1,
                        message: "nw-analyze marker must be allow(RULE): reason or \
                                  allow-file(RULE): reason"
                            .into(),
                    });
                    continue;
                };
                let Some((rule_txt, after)) = body.split_once(')') else {
                    m.problems.push(Diagnostic {
                        rule: RuleId::Al01,
                        path: file.path.clone(),
                        line: n + 1,
                        col: 1,
                        message: "unterminated nw-analyze marker (missing `)`)".into(),
                    });
                    continue;
                };
                let Some(rule) = RuleId::from_id(rule_txt.trim()) else {
                    m.problems.push(Diagnostic {
                        rule: RuleId::Al01,
                        path: file.path.clone(),
                        line: n + 1,
                        col: 1,
                        message: format!("unknown rule id `{}` in marker", rule_txt.trim()),
                    });
                    continue;
                };
                let reason = after.trim_start_matches(['—', '-', ':', ' ']).trim();
                if reason.is_empty() {
                    m.problems.push(Diagnostic {
                        rule: RuleId::Al01,
                        path: file.path.clone(),
                        line: n + 1,
                        col: 1,
                        message: format!(
                            "marker allow({rule}) has no reason — say why the site is safe"
                        ),
                    });
                    continue;
                }
                if file_wide {
                    m.file_allows.push(rule);
                } else {
                    m.line_allows.push((rule, n));
                    // Cover the statement the marker annotates: the next
                    // line with any code on it (justifications may span
                    // several comment lines).
                    if let Some(next) = file.lines[n + 1..]
                        .iter()
                        .position(|l| !l.code.trim().is_empty())
                    {
                        m.line_allows.push((rule, n + 1 + next));
                    }
                }
            }
        }
        m
    }

    /// Is a finding of `rule` at 0-based `line` suppressed by a marker?
    pub fn suppresses(&self, rule: RuleId, line: usize) -> bool {
        self.file_allows.contains(&rule)
            || self
                .line_allows
                .iter()
                .any(|&(r, at)| r == rule && line == at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_markers_cover_self_and_next_line() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// nw-analyze: allow(ND03): config knob, read once\n// spanning a second comment line\nstatic A: AtomicU8 = x;\nstatic B: AtomicU8 = y;\n",
        );
        let m = Markers::collect(&f);
        assert!(m.problems.is_empty());
        assert!(m.suppresses(RuleId::Nd03, 0));
        // Comment-only lines between the marker and the statement are
        // skipped; the statement itself is covered, its successor is not.
        assert!(m.suppresses(RuleId::Nd03, 2));
        assert!(!m.suppresses(RuleId::Nd03, 3));
        assert!(!m.suppresses(RuleId::Nd01, 2));
    }

    #[test]
    fn file_markers_cover_everything_and_reasons_are_required() {
        let f = SourceFile::parse(
            "x.rs",
            "// nw-analyze: allow-file(RH01): buffers transfer to the platform\n\
             // nw-analyze: allow(ND01)\n\
             // nw-analyze: allow(ND99): what\n",
        );
        let m = Markers::collect(&f);
        assert!(m.suppresses(RuleId::Rh01, 500));
        assert_eq!(m.problems.len(), 2, "{:?}", m.problems);
        assert!(m.problems[0].message.contains("no reason"));
        assert!(m.problems[1].message.contains("unknown rule"));
    }
}
