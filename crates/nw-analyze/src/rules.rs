//! The determinism and resource-hygiene rules.
//!
//! Each rule is a lexical pass over a [`SourceFile`]'s code view (comments
//! and string contents already removed by [`crate::scan`]). Rules return
//! *raw* findings; suppression markers and the allowlist are applied by
//! [`crate::engine`], so fixtures can assert on the unsuppressed set.

use crate::diag::{Diagnostic, RuleId};
use crate::scan::SourceFile;

/// Crates whose state can reach a `PlatformReport` or dispatch order —
/// the ND01/ND03 scope. Paths are repo-relative prefixes. `nw-fault` is
/// in scope because fault timelines steer everything downstream: a
/// non-deterministic campaign would break the faulted bit-identity
/// contract exactly like a non-deterministic NoC.
const SIM_RESULT_CRATES: [&str; 5] = [
    "crates/core/",
    "crates/nw-noc/",
    "crates/nw-sim/",
    "crates/nw-dsoc/",
    "crates/nw-fault/",
];

/// The timing harness: the only code allowed to read wall clocks (ND02).
const TIMING_CRATES: [&str; 1] = ["crates/bench/"];

fn in_sim_result_scope(path: &str) -> bool {
    SIM_RESULT_CRATES.iter().any(|p| path.starts_with(p))
}

fn in_timing_scope(path: &str) -> bool {
    TIMING_CRATES.iter().any(|p| path.starts_with(p))
}

/// Is the char a Rust identifier char (for whole-token matching)?
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Every match of `token` in `code` at identifier boundaries, as 0-based
/// byte columns. Qualified prefixes are fine (`collections::HashMap`
/// matches `HashMap`); identifier continuations are not (`HashMapExt`
/// does not).
fn token_matches(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !code[at + token.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len();
    }
    out
}

fn diag(rule: RuleId, file: &SourceFile, line0: usize, col0: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: line0 + 1,
        col: col0 + 1,
        message,
    }
}

/// ND01: unordered hash collections in sim-result crates.
fn nd01(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_sim_result_scope(&file.path) {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        for token in ["HashMap", "HashSet"] {
            for col in token_matches(&line.code, token) {
                out.push(diag(
                    RuleId::Nd01,
                    file,
                    n,
                    col,
                    format!(
                        "{token} in a sim-result crate: iteration order is per-process; \
                         use BTreeMap/BTreeSet or sorted iteration"
                    ),
                ));
            }
        }
    }
}

/// ND02: wall-clock and entropy sources outside the timing harness.
fn nd02(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if in_timing_scope(&file.path) {
        return;
    }
    // Qualified tokens: matching `thread::current`/`thread::ThreadId`
    // keeps the platform's own `nw_types::ThreadId` out of scope.
    const SOURCES: [(&str, &str); 6] = [
        ("Instant::now", "wall-clock read"),
        ("SystemTime", "wall-clock read"),
        ("thread_rng", "OS-seeded RNG"),
        ("thread::current", "thread identity"),
        ("thread::ThreadId", "thread identity"),
        ("RandomState", "per-process hasher seed"),
    ];
    for (n, line) in file.lines.iter().enumerate() {
        for (token, what) in SOURCES {
            for col in token_matches(&line.code, token) {
                out.push(diag(
                    RuleId::Nd02,
                    file,
                    n,
                    col,
                    format!(
                        "{token} ({what}) outside the nw_bench timing harness: \
                         simulation state must be a function of config and seed"
                    ),
                ));
            }
        }
    }
}

/// ND03: mutable global state in sim-result crates.
fn nd03(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_sim_result_scope(&file.path) {
        return;
    }
    const INTERIOR_MUT: [&str; 8] = [
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicBool",
        "Mutex",
        "RwLock",
    ];
    const LAZY_MUT: [&str; 5] = ["OnceLock", "OnceCell", "LazyLock", "RefCell", "UnsafeCell"];
    for (n, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        for col in token_matches(code, "static") {
            // `&'static` and `'static` are lifetimes, not items.
            if code[..col].trim_end().ends_with('\'') {
                continue;
            }
            let rest = &code[col + "static".len()..];
            if rest.trim_start().starts_with("mut ") {
                out.push(diag(
                    RuleId::Nd03,
                    file,
                    n,
                    col,
                    "static mut in a sim-result crate: mutable globals outlive the \
                     platform and leak state across runs"
                        .into(),
                ));
                continue;
            }
            // `static NAME: Type = ...` with an interior-mutable type.
            if let Some(ty) = rest.split_once(':').map(|(_, t)| t) {
                if INTERIOR_MUT
                    .iter()
                    .chain(LAZY_MUT.iter())
                    .any(|t| !token_matches(ty, t).is_empty())
                {
                    out.push(diag(
                        RuleId::Nd03,
                        file,
                        n,
                        col,
                        "interior-mutable static in a sim-result crate: process-global \
                         state must not influence simulation results"
                            .into(),
                    ));
                }
            }
        }
    }
}

/// RH01: `PayloadPool` acquire-family calls with no recycle in the file.
fn rh01(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    // The pool's own module defines the API; pairing is meaningless there.
    if file.path.ends_with("nw-noc/src/pool.rs") {
        return;
    }
    const ACQUIRE: [&str; 3] = [".take_zeroed(", ".pad_zeroed(", "pool.take("];
    let mut first_acquire: Option<(usize, usize, &str)> = None;
    let mut acquires = 0usize;
    let mut releases = 0usize;
    for (n, line) in file.lines.iter().enumerate() {
        for token in ACQUIRE {
            if let Some(col) = line.code.find(token) {
                acquires += 1;
                if first_acquire.is_none() {
                    first_acquire = Some((n, col, token));
                }
            }
        }
        if line.code.contains("pool.put(") {
            releases += 1;
        }
    }
    if let Some((n, col, token)) = first_acquire {
        if releases == 0 {
            out.push(diag(
                RuleId::Rh01,
                file,
                n,
                col,
                format!(
                    "{acquires} PayloadPool acquire(s) (first: `{token}`) with no \
                     pool.put in this file: leak-prone unless ownership provably \
                     transfers (mark with nw-analyze: allow-file(RH01): <where \
                     buffers are recycled>)"
                ),
            ));
        }
    }
}

/// WR01: truncating `as` casts on wire encode/decode paths.
fn wr01(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !(file.path.ends_with("wire.rs") || file.path.ends_with("idl.rs")) {
        return;
    }
    // Casts to 64-bit/usize targets widen on every supported platform;
    // only the narrowing targets can silently drop wire bits.
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    for (n, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        for col in token_matches(code, "as") {
            let rest = code[col + 2..].trim_start();
            let Some(ty) = NARROW
                .iter()
                .find(|t| rest.starts_with(**t) && !rest[t.len()..].starts_with(is_ident))
            else {
                continue;
            };
            // `as` must follow an expression, not open a use-alias
            // (`use x as y`) — a narrow type name cannot be an alias
            // in this workspace, but keep imports out anyway.
            if code.trim_start().starts_with("use ") {
                continue;
            }
            out.push(diag(
                RuleId::Wr01,
                file,
                n,
                col,
                format!(
                    "`as {ty}` on a wire encode/decode path truncates silently; \
                     use {ty}::try_from(..) so an oversized value panics loudly"
                ),
            ));
        }
    }
}

/// Runs every source rule over one file, returning *raw* (unsuppressed)
/// findings in stable order.
pub fn scan_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    nd01(file, &mut out);
    nd02(file, &mut out);
    nd03(file, &mut out);
    rh01(file, &mut out);
    wr01(file, &mut out);
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}
