//! Determinism auditor: static analysis over the workspace sources.
//!
//! The whole performance program rests on one contract: **a simulation
//! result is a pure function of its configuration** — the differential
//! suites pin the ActiveSet scheduler, the NoC event wheel and the
//! parallel sweep runner to bit-identical reports. That contract is
//! enforced dynamically, after a divergence already happened. This crate
//! enforces it *statically*: an offline pass over the sources rejects
//! the constructs that historically cause silent nondeterminism or
//! resource leaks before the simulator ever runs.
//!
//! # Rules
//!
//! | id | contract |
//! |------|----------|
//! | ND01 | no `HashMap`/`HashSet` in sim-result crates (`core`, `nw-noc`, `nw-sim`, `nw-dsoc`) |
//! | ND02 | no wall-clock/entropy sources outside the `nw_bench` timing harness |
//! | ND03 | no `static mut` / interior-mutable globals in sim-result crates |
//! | RH01 | every `PayloadPool` acquire is paired with a `pool.put` in the same file |
//! | WR01 | no truncating `as` casts in `wire.rs`/`idl.rs` encode/decode paths |
//! | AL01 | allowlist and marker hygiene (stale entries, missing justifications) |
//!
//! # Suppression
//!
//! Two mechanisms, both requiring a written justification:
//!
//! * **Marker comments** next to the site:
//!   `// nw-analyze: allow(ND03): <reason>` (covers that line and the
//!   next) or `// nw-analyze: allow-file(RH01): <reason>` (whole file).
//! * **The allowlist** `nw-analyze.allow` at the workspace root:
//!   `ND01 crates/nw-noc/tests/prop_delivery.rs — <reason>` lines.
//!   Entries that stop matching a finding become AL01 findings
//!   themselves, so grandfathered grants cannot outlive their sites.
//!
//! The scanner is comment- and string-aware (see [`SourceFile`]): a `HashMap`
//! in a doc comment or a test-fixture string never fires a rule. There
//! is deliberately no `syn`-style parsing — the build container is
//! offline and the rules key on tokens a line scanner resolves exactly.
//!
//! # Entry points
//!
//! [`analyze`] walks a workspace root; [`analyze_sources`] takes
//! pre-scanned [`SourceFile`]s (what the fixture tests use); the
//! `expt lint` subcommand in `nw_bench` wraps [`analyze`] with exit
//! codes and `--json` output for CI.

mod allowlist;
mod diag;
mod engine;
mod markers;
mod rules;
mod scan;

pub use allowlist::{AllowEntry, Allowlist};
pub use diag::{Diagnostic, RuleId, ALL_RULES};
pub use engine::{analyze, analyze_sources, find_root, AnalysisReport, ALLOWLIST_FILE};
pub use markers::Markers;
pub use scan::{Line, SourceFile};
