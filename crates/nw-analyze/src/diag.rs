//! Rule identities and span-level diagnostics.

use std::fmt;

/// Identity of one determinism/hygiene rule.
///
/// The registry is append-only: rule ids are stable strings that appear
/// in allowlist entries, suppression markers and CI output, so renaming
/// or reusing one would silently re-grandfather old findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Unordered hash collections in simulation-result crates.
    Nd01,
    /// Wall-clock or entropy sources outside the timing harness.
    Nd02,
    /// Mutable global state in simulation crates.
    Nd03,
    /// `PayloadPool` acquires without a recycle in the same module.
    Rh01,
    /// Truncating `as` casts on wire encode/decode paths.
    Wr01,
    /// Stale allowlist entries or malformed suppression markers.
    Al01,
}

/// Every registered rule, in report order.
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::Nd01,
    RuleId::Nd02,
    RuleId::Nd03,
    RuleId::Rh01,
    RuleId::Wr01,
    RuleId::Al01,
];

impl RuleId {
    /// The stable textual id (`"ND01"`, ...).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Nd01 => "ND01",
            RuleId::Nd02 => "ND02",
            RuleId::Nd03 => "ND03",
            RuleId::Rh01 => "RH01",
            RuleId::Wr01 => "WR01",
            RuleId::Al01 => "AL01",
        }
    }

    /// One-line description shown by `expt lint --rules` and `expt list`.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::Nd01 => {
                "no HashMap/HashSet in sim-result crates (core, nw-noc, nw-sim, nw-dsoc): \
                 iteration order is seeded per process and can leak into reports"
            }
            RuleId::Nd02 => {
                "no wall-clock or entropy sources (Instant::now, SystemTime, thread_rng, \
                 std::thread identity) outside the nw_bench timing harness"
            }
            RuleId::Nd03 => {
                "no static mut or interior-mutable globals in sim-result crates: \
                 cross-run state breaks replayability"
            }
            RuleId::Rh01 => {
                "every PayloadPool acquire (take/take_zeroed/pad_zeroed) needs a pool.put \
                 in the same file, or an explicit ownership-transfer marker"
            }
            RuleId::Wr01 => {
                "no truncating `as` casts to u8/u16/u32 (or signed) in wire.rs/idl.rs \
                 encode/decode paths: use try_from so overflow panics instead of wrapping"
            }
            RuleId::Al01 => {
                "allowlist hygiene: entries must parse, carry a justification, and still \
                 match a real finding; markers must name a known rule and a reason"
            }
        }
    }

    /// Parses a stable id back to the rule (markers, allowlist files).
    pub fn from_id(s: &str) -> Option<RuleId> {
        ALL_RULES.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a rule firing at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number (0 for file-level findings such as stale
    /// allowlist entries pointing at files with no finding).
    pub line: usize,
    /// 1-based column of the match start (0 when not meaningful).
    pub col: usize,
    /// What was found and why it matters, one sentence.
    pub message: String,
}

impl Diagnostic {
    /// The stable sort key: path, then line, then column, then rule id —
    /// report order never depends on rule evaluation order.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule.id())
    }

    /// Renders as `path:line:col: RULE message` (the grep-able format).
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.message
        )
    }

    /// Renders as a JSON object (hand-rolled; the workspace has no serde).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.rule.id(),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping for the fields we emit.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_descriptions_are_non_empty() {
        for r in ALL_RULES {
            assert_eq!(RuleId::from_id(r.id()), Some(r));
            assert!(!r.description().trim().is_empty());
        }
        assert_eq!(RuleId::from_id("ND99"), None);
    }

    #[test]
    fn render_is_grep_able_and_json_escapes() {
        let d = Diagnostic {
            rule: RuleId::Nd01,
            path: "crates/core/src/platform.rs".into(),
            line: 30,
            col: 5,
            message: "std \"hash\" map".into(),
        };
        assert_eq!(
            d.render(),
            "crates/core/src/platform.rs:30:5: ND01 std \"hash\" map"
        );
        assert!(d.render_json().contains("\\\"hash\\\""));
    }
}
