//! Workspace walking and rule orchestration.

use crate::allowlist::Allowlist;
use crate::diag::{Diagnostic, RuleId};
use crate::markers::Markers;
use crate::rules::scan_file;
use crate::scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the checked-in allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "nw-analyze.allow";

/// Directory names never descended into: build artifacts and the
/// vendored third-party stand-ins are not ours to audit.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// Top-level entries of the workspace that hold first-party sources.
const SOURCE_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// The outcome of an [`analyze`] run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Findings that survived markers and the allowlist, in stable
    /// (path, line, col, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by in-source markers.
    pub marker_suppressed: usize,
    /// Findings suppressed by allowlist entries.
    pub allowlisted: usize,
}

impl AnalysisReport {
    /// True when the audit is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable report: one grep-able line per finding plus a
    /// one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "nw-analyze: {} finding(s) across {} file(s) ({} marker-suppressed, {} allowlisted)\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.marker_suppressed,
            self.allowlisted
        ));
        out
    }

    /// Machine-readable report (`expt lint --json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&d.render_json());
            if i + 1 < self.diagnostics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"marker_suppressed\": {},\n  \
             \"allowlisted\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.marker_suppressed,
            self.allowlisted,
            self.is_clean()
        ));
        out
    }
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// scan order (and therefore the report) is independent of readdir order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes already-scanned sources against an allowlist — the
/// fixture-testable core of the engine ([`analyze`] is the filesystem
/// wrapper around it).
pub fn analyze_sources(files: &[SourceFile], allowlist: &Allowlist) -> AnalysisReport {
    let mut diagnostics: Vec<Diagnostic> = allowlist.problems.clone();
    let mut marker_suppressed = 0;
    let mut allowlisted = 0;
    let mut used_entries = vec![false; allowlist.entries.len()];
    for file in files {
        let markers = Markers::collect(file);
        diagnostics.extend(markers.problems.iter().cloned());
        for d in scan_file(file) {
            if markers.suppresses(d.rule, d.line.saturating_sub(1)) {
                marker_suppressed += 1;
                continue;
            }
            let entry = allowlist
                .entries
                .iter()
                .position(|e| e.rule == d.rule && e.path == d.path);
            if let Some(i) = entry {
                used_entries[i] = true;
                allowlisted += 1;
                continue;
            }
            diagnostics.push(d);
        }
    }
    // Stale entries: the grandfathered finding is gone, so the grant
    // must go too (otherwise it would silently cover a future finding).
    for (i, used) in used_entries.iter().enumerate() {
        if !used {
            let e = &allowlist.entries[i];
            diagnostics.push(Diagnostic {
                rule: RuleId::Al01,
                path: ALLOWLIST_FILE.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "stale allowlist entry: {} {} no longer matches any finding — delete it",
                    e.rule, e.path
                ),
            });
        }
    }
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    AnalysisReport {
        diagnostics,
        files_scanned: files.len(),
        marker_suppressed,
        allowlisted,
    }
}

/// Loads and scans every first-party `.rs` file under `root`, applies
/// the allowlist at `root/nw-analyze.allow` (absence is an empty
/// allowlist, not an error), and returns the surviving findings.
///
/// # Errors
///
/// Propagates I/O errors from walking the tree or reading files.
pub fn analyze(root: &Path) -> io::Result<AnalysisReport> {
    let mut paths = Vec::new();
    for top in SOURCE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(rel, &text));
    }
    let allow_path = root.join(ALLOWLIST_FILE);
    let allowlist = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(ALLOWLIST_FILE, &text),
        Err(_) => Allowlist::default(),
    };
    Ok(analyze_sources(&files, &allowlist))
}

/// Locates the workspace root: walks up from `start` looking for the
/// allowlist file or a `Cargo.toml` declaring `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join(ALLOWLIST_FILE).is_file() {
            return Some(dir);
        }
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
