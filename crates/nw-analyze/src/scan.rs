//! Comment- and string-aware source scanning.
//!
//! The rule engine matches lexical patterns, so it must never fire on a
//! `HashMap` mentioned in a doc comment or embedded in a test-fixture
//! string literal. [`SourceFile::parse`] runs a small Rust-shaped lexer
//! over the text and splits every line into a *code view* (comments
//! removed, string/char literal contents blanked with spaces so columns
//! stay aligned) and a *comment view* (the concatenated comment text,
//! which is where suppression markers live — see [`crate::markers`]).
//!
//! The lexer understands line comments, nested block comments, string
//! and byte-string literals (including multi-line bodies and escapes),
//! raw strings with arbitrary `#` fences, and the char-literal versus
//! lifetime ambiguity (`'a'` is a literal, `'static` is not). It does
//! not need a full parser: rules key on tokens that survive this
//! stripping.

/// One line of a scanned source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked.
    /// Byte offsets match the original line, so pattern columns are
    /// real columns.
    pub code: String,
    /// Concatenated text of every comment that touches this line.
    pub comment: String,
}

/// A scanned source file: repo-relative path plus per-line views.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the path rules scope on).
    pub path: String,
    /// The per-line code/comment split, in file order.
    pub lines: Vec<Line>,
}

/// Lexer mode carried across lines.
enum Mode {
    Code,
    /// Inside `/* ... */`, with the current nesting depth.
    Block(u32),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string; the payload is the number of `#` fences.
    RawStr(u32),
}

impl SourceFile {
    /// Scans `text` into per-line code and comment views.
    pub fn parse(path: impl Into<String>, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut mode = Mode::Code;
        for raw in text.lines() {
            let mut code = String::with_capacity(raw.len());
            let mut comment = String::new();
            let bytes: Vec<char> = raw.chars().collect();
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                match mode {
                    Mode::Code => match c {
                        '/' if next == Some('/') => {
                            comment.push_str(&raw[byte_at(raw, i)..]);
                            i = bytes.len();
                        }
                        '/' if next == Some('*') => {
                            mode = Mode::Block(1);
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                        }
                        '"' => {
                            mode = Mode::Str;
                            code.push('"');
                            i += 1;
                        }
                        'r' | 'b' if starts_raw(&bytes, i) => {
                            let (fences, consumed) = raw_open(&bytes, i);
                            mode = Mode::RawStr(fences);
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                            i += consumed;
                        }
                        'b' if next == Some('"') => {
                            mode = Mode::Str;
                            code.push(' ');
                            code.push('"');
                            i += 2;
                        }
                        '\'' => {
                            // Char literal or lifetime? A literal closes
                            // within a few chars or starts with an escape.
                            if let Some(len) = char_literal_len(&bytes, i) {
                                for _ in 0..len {
                                    code.push(' ');
                                }
                                i += len;
                            } else {
                                code.push('\'');
                                i += 1;
                            }
                        }
                        _ => {
                            code.push(c);
                            i += 1;
                        }
                    },
                    Mode::Block(depth) => {
                        if c == '*' && next == Some('/') {
                            mode = if depth == 1 {
                                Mode::Code
                            } else {
                                Mode::Block(depth - 1)
                            };
                            comment.push_str("*/");
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            mode = Mode::Block(depth + 1);
                            comment.push_str("/*");
                            i += 2;
                        } else {
                            comment.push(c);
                            i += 1;
                        }
                    }
                    Mode::Str => {
                        if c == '\\' {
                            code.push(' ');
                            if next.is_some() {
                                code.push(' ');
                                i += 1;
                            }
                            i += 1;
                        } else if c == '"' {
                            mode = Mode::Code;
                            code.push('"');
                            i += 1;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    Mode::RawStr(fences) => {
                        if c == '"' && closes_raw(&bytes, i, fences) {
                            mode = Mode::Code;
                            for _ in 0..(1 + fences as usize) {
                                code.push(' ');
                            }
                            i += 1 + fences as usize;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            // A multi-line string keeps its mode; a line comment does not.
            lines.push(Line { code, comment });
        }
        SourceFile {
            path: path.into(),
            lines,
        }
    }
}

/// Byte offset of char index `i` in `s` (lines are short; linear is fine).
fn byte_at(s: &str, i: usize) -> usize {
    s.char_indices()
        .nth(i)
        .map(|(b, _)| b)
        .unwrap_or_else(|| s.len())
}

/// Does a raw (byte) string literal start at `i` (`r"`, `r#`, `br"`, ...)?
fn starts_raw(bytes: &[char], i: usize) -> bool {
    // Reject identifiers ending in r/b (e.g. `var"` cannot occur, but
    // `foo_r` followed by something else can): the previous char must
    // not be part of an identifier.
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Length (in chars) of the raw-string opener at `i`, plus its fence count.
fn raw_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut fences = 0;
    while bytes.get(j) == Some(&'#') {
        fences += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (fences, j - i)
}

/// Does the `"` at `i` close a raw string with `fences` trailing `#`s?
fn closes_raw(bytes: &[char], i: usize, fences: u32) -> bool {
    (1..=fences as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Length of the char literal starting at the `'` at `i`, or `None` when
/// this apostrophe introduces a lifetime.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // Escaped literal: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                if bytes[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        _ => (bytes.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        SourceFile::parse("x.rs", src)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn line_comments_are_stripped_and_kept_as_comment_text() {
        let f = SourceFile::parse("x.rs", "let a = 1; // uses HashMap\n");
        assert_eq!(f.lines[0].code, "let a = 1; ");
        assert!(f.lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let c = code_of("a /* x /* y */ HashMap */ b\nstill /* open\nHashMap */ done");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[1].contains("HashMap"));
        assert!(!c[2].contains("HashMap"));
        assert!(c[2].contains("done"));
    }

    #[test]
    fn string_contents_are_blanked_columns_preserved() {
        let c = code_of(r#"let s = "HashMap"; let t = 2;"#);
        assert!(!c[0].contains("HashMap"));
        assert_eq!(c[0].len(), r#"let s = "HashMap"; let t = 2;"#.len());
        assert!(c[0].contains("let t = 2;"));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let c = code_of(r#"let s = "a\"HashMap\"b"; HashSet"#);
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("HashSet"));
    }

    #[test]
    fn raw_strings_with_fences_are_blanked() {
        let c = code_of("let s = r#\"HashMap \" still\"#; HashSet");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("HashSet"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = code_of("let q: &'static str = x; let c = '\"'; let d = 'h'; HashMap");
        assert!(c[0].contains("'static"));
        assert!(c[0].contains("HashMap"));
        // The quote char literal must not open a string that would
        // swallow the rest of the line.
        assert!(!c[0].contains('h') || c[0].contains("HashMap"));
    }

    #[test]
    fn multiline_strings_carry_state() {
        let c = code_of("let s = \"open\nHashMap\nend\"; HashSet");
        assert!(!c[1].contains("HashMap"));
        assert!(c[2].contains("HashSet"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = SourceFile::parse("x.rs", "/// uses HashMap\nfn f() {}");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
    }
}
