//! The auditor audits its own workspace: the tree this crate ships in
//! must be clean under every rule, with every surviving exemption
//! justified via a marker or allowlist entry. This is the same check CI
//! runs as `expt lint` — kept here too so `cargo test -p nw-analyze`
//! fails the moment a nondeterminism hazard lands anywhere.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/nw-analyze -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root")
}

#[test]
fn workspace_is_clean_under_every_rule() {
    let report = nw_analyze::analyze(workspace_root()).expect("workspace tree is readable");
    assert!(
        report.is_clean(),
        "nw-analyze found violations:\n{}",
        report.render()
    );
    // The scan is not vacuous: it must have covered the whole tree.
    assert!(
        report.files_scanned > 80,
        "only {} files scanned — walker lost a source root?",
        report.files_scanned
    );
}

#[test]
fn workspace_exemptions_are_exercised() {
    let report = nw_analyze::analyze(workspace_root()).expect("workspace tree is readable");
    // The repo carries real grandfathered sites: markers (ND03 scheduler
    // and sweep-thread knobs, RH01 runtime ownership transfer) and at
    // least one allowlist entry. If these go to zero the mechanisms are
    // untested in the wild and the docs are stale.
    assert!(
        report.marker_suppressed >= 3,
        "expected marker-suppressed sites, got {}",
        report.marker_suppressed
    );
    assert!(
        report.allowlisted >= 1,
        "expected allowlisted sites, got {}",
        report.allowlisted
    );
}

#[test]
fn profiler_wall_clock_is_allowlisted_not_invisible() {
    // nw-obs's host profiler reads `Instant::now` by design — wall-clock is
    // its measurand. That must surface as *allowlisted* ND02 findings (the
    // auditor sees the sites; the grant in nw-analyze.allow justifies
    // them), never as silence: if the allowlisted count here drops, either
    // the profiler moved (update the allowlist path) or the scanner
    // stopped seeing nw-obs at all.
    let report = nw_analyze::analyze(workspace_root()).expect("workspace tree is readable");
    assert!(
        report.is_clean(),
        "profiler wall-clock must be covered by the allowlist:\n{}",
        report.render()
    );
    assert!(
        report.allowlisted >= 4,
        "expected the nw-obs ND02 sites on top of the ND01 grant, got {}",
        report.allowlisted
    );
}
