//! Per-rule fixture tests: every rule fires on a seeded violation and stays
//! silent on the idiomatic alternative, and both suppression channels
//! (in-source markers, the checked-in allowlist) are exercised end to end
//! through [`nw_analyze::analyze_sources`] — the same entry point `expt
//! lint` drives, minus the filesystem walk.

use nw_analyze::{analyze_sources, Allowlist, RuleId, SourceFile};

/// Runs the analyzer over inline sources with an empty allowlist.
fn scan(files: &[(&str, &str)]) -> nw_analyze::AnalysisReport {
    scan_with_allowlist(files, "")
}

/// Runs the analyzer over inline sources with an inline allowlist.
fn scan_with_allowlist(files: &[(&str, &str)], allow: &str) -> nw_analyze::AnalysisReport {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile::parse(*path, text))
        .collect();
    let allowlist = Allowlist::parse("nw-analyze.allow", allow);
    analyze_sources(&sources, &allowlist)
}

/// The rule ids of every finding, in report order.
fn rules_of(report: &nw_analyze::AnalysisReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule.id()).collect()
}

#[test]
fn nd01_flags_hash_collections_only_in_sim_result_crates() {
    let hit = scan(&[(
        "crates/core/src/x.rs",
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
    )]);
    assert_eq!(rules_of(&hit), ["ND01", "ND01", "ND01"]);
    assert_eq!(hit.diagnostics[0].line, 1);

    // BTreeMap is the sanctioned replacement; bench crates are out of scope.
    let clean = scan(&[
        (
            "crates/core/src/x.rs",
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
        ),
        (
            "crates/bench/src/x.rs",
            "use std::collections::HashMap;\n",
        ),
    ]);
    assert!(clean.is_clean(), "{}", clean.render());

    // Mentions inside strings and comments are not code.
    let quoted = scan(&[(
        "crates/nw-noc/src/x.rs",
        "// a HashMap would be wrong here\nfn f() -> &'static str { \"HashMap\" }\n",
    )]);
    assert!(quoted.is_clean(), "{}", quoted.render());
}

#[test]
fn nd02_flags_wall_clock_and_entropy_outside_the_bench_harness() {
    let hit = scan(&[(
        "crates/nw-sim/src/x.rs",
        "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
    )]);
    assert_eq!(rules_of(&hit), ["ND02"]);

    // The bench harness owns timing; a sim-crate Duration (no clock read)
    // is fine, and so is a type merely named like the std thread id.
    let clean = scan(&[
        (
            "crates/bench/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
        ),
        (
            "crates/core/src/x.rs",
            "use std::time::Duration;\nuse nw_types::ThreadId;\n",
        ),
    ]);
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn nd03_flags_mutable_globals_in_sim_result_crates() {
    let hit = scan(&[(
        "crates/nw-dsoc/src/x.rs",
        "static mut COUNTER: u64 = 0;\nstatic CACHE: OnceLock<u64> = OnceLock::new();\n",
    )]);
    assert_eq!(rules_of(&hit), ["ND03", "ND03"]);

    // Const statics and `'static` lifetimes are not mutable globals.
    let clean = scan(&[(
        "crates/nw-dsoc/src/x.rs",
        "static NAMES: [&'static str; 2] = [\"a\", \"b\"];\nfn f(s: &'static str) -> &'static str { s }\n",
    )]);
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn nd02_and_nd03_guard_the_fault_crate() {
    // The fault-injection contract: campaign generation must draw from the
    // seeded vendored RNG only. `thread_rng` (OS entropy) and mutable
    // globals inside `nw-fault` sources are exactly the bugs that would
    // break faulted bit-identity, so both rules must fire there.
    let hit = scan(&[(
        "crates/nw-fault/src/lib.rs",
        "fn gen() -> u64 { thread_rng().gen() }\n\
         static mut LAST_SEED: u64 = 0;\n\
         static CACHE: OnceLock<u64> = OnceLock::new();\n",
    )]);
    assert_eq!(rules_of(&hit), ["ND02", "ND03", "ND03"], "{}", hit.render());

    // The sanctioned idiom — a seeded StdRng threaded by value — is clean.
    let clean = scan(&[(
        "crates/nw-fault/src/lib.rs",
        "use rand::rngs::StdRng;\nuse rand::SeedableRng;\n\
         fn gen(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n",
    )]);
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn nd01_and_nd03_guard_the_snapshot_layer() {
    // The checkpoint/fork contract: snapshots must be plain-old-data owned
    // by value. A global snapshot cache or a hash-keyed replica table in
    // `crates/core` are exactly the bugs that would let replicas share
    // state (or observe iteration order), so both rules must fire on them.
    let hit = scan(&[(
        "crates/core/src/platform.rs",
        "static LAST_SNAPSHOT: OnceLock<PlatformSnapshot> = OnceLock::new();\n\
         fn replicas() -> HashMap<u64, PlatformSnapshot> { HashMap::new() }\n",
    )]);
    assert_eq!(rules_of(&hit), ["ND03", "ND01", "ND01"], "{}", hit.render());

    // The sanctioned shape — field-literal state clone, RNG state as a
    // plain array, seeded reconstruction — is clean with no exemptions.
    let clean = scan(&[(
        "crates/core/src/platform.rs",
        "use rand::rngs::StdRng;\nuse rand::SeedableRng;\n\
         pub struct PlatformSnapshot { rng_state: [u64; 4], seed: u64 }\n\
         fn capture(rng: &StdRng, seed: u64) -> PlatformSnapshot {\n\
             PlatformSnapshot { rng_state: rng.get_state(), seed }\n\
         }\n\
         fn thaw(s: &PlatformSnapshot) -> StdRng { StdRng::from_state(s.rng_state) }\n",
    )]);
    assert!(clean.is_clean(), "{}", clean.render());

    // And the checked-in allowlist grants the snapshot layer nothing: the
    // shipped platform/runtime code passes on its own, so bit-identity of
    // restored runs is pinned by the lint gate, not excused from it.
    let committed = include_str!("../../../nw-analyze.allow");
    for file in ["platform.rs", "runtime.rs", "resilience.rs"] {
        assert!(
            !committed.contains(file),
            "nw-analyze.allow must not exempt the snapshot layer ({file})"
        );
    }
}

#[test]
fn rh01_flags_pool_acquires_with_no_release_in_the_module() {
    let hit = scan(&[(
        "crates/core/src/x.rs",
        "fn f(pool: &mut PayloadPool) -> Vec<u8> { pool.take_zeroed(64) }\n",
    )]);
    assert_eq!(rules_of(&hit), ["RH01"]);

    // A matching pool.put in the same module balances the ledger.
    let clean = scan(&[(
        "crates/core/src/x.rs",
        "fn f(pool: &mut PayloadPool) { let v = pool.take_zeroed(64); pool.put(v); }\n",
    )]);
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn wr01_flags_truncating_casts_in_wire_modules_only() {
    let hit = scan(&[(
        "crates/nw-dsoc/src/wire.rs",
        "fn enc(len: usize) -> [u8; 4] { (len as u32).to_le_bytes() }\n",
    )]);
    assert_eq!(rules_of(&hit), ["WR01"]);

    let clean = scan(&[
        // try_from is the sanctioned conversion; widening casts are fine.
        (
            "crates/nw-dsoc/src/wire.rs",
            "fn enc(len: usize) -> u32 { u32::try_from(len).expect(\"fits\") }\n\
             fn dec(b: u8) -> usize { b as usize }\n",
        ),
        // The same truncation outside a wire module is another rule's
        // business (or nobody's), not WR01's.
        (
            "crates/core/src/x.rs",
            "fn f(x: usize) -> u32 { x as u32 }\n",
        ),
    ]);
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn markers_suppress_the_annotated_site_and_are_counted() {
    let report = scan(&[(
        "crates/core/src/x.rs",
        "// nw-analyze: allow(ND03): config knob, read once at construction\n\
         static KNOB: AtomicU8 = AtomicU8::new(0);\n\
         static LEAK: AtomicU8 = AtomicU8::new(0);\n",
    )]);
    // The annotated static is suppressed; the unannotated one still fires.
    assert_eq!(rules_of(&report), ["ND03"]);
    assert_eq!(report.diagnostics[0].line, 3);
    assert_eq!(report.marker_suppressed, 1);
}

#[test]
fn marker_without_a_reason_is_an_al01_finding() {
    let report = scan(&[(
        "crates/core/src/x.rs",
        "// nw-analyze: allow(ND03)\nstatic KNOB: AtomicU8 = AtomicU8::new(0);\n",
    )]);
    // The malformed marker is itself flagged and suppresses nothing.
    assert_eq!(rules_of(&report), ["AL01", "ND03"]);
}

#[test]
fn allowlist_entries_suppress_matching_findings() {
    let report = scan_with_allowlist(
        &[("crates/core/src/x.rs", "use std::collections::HashMap;\n")],
        "ND01 crates/core/src/x.rs — per-key lookups only, order never observed\n",
    );
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.allowlisted, 1);
}

#[test]
fn stale_and_malformed_allowlist_entries_are_al01_findings() {
    // Entry matches nothing: stale. Entry without a reason: malformed.
    let report = scan_with_allowlist(
        &[("crates/core/src/x.rs", "fn f() {}\n")],
        "ND01 crates/core/src/gone.rs — converted to BTreeMap long ago\nWR01 crates/core/src/x.rs\n",
    );
    let rules = rules_of(&report);
    assert_eq!(rules, ["AL01", "AL01"], "{}", report.render());
    assert!(
        report.render().contains("stale") || report.render().contains("match"),
        "stale entries name the problem: {}",
        report.render()
    );
}

#[test]
fn reports_are_stably_sorted_and_render_both_ways() {
    // Two files given out of order, findings on different lines: the report
    // comes back sorted by (path, line, col, rule) so diffs are stable.
    let report = scan(&[
        (
            "crates/nw-sim/src/b.rs",
            "fn f() {}\nstatic mut X: u64 = 0;\n",
        ),
        ("crates/core/src/a.rs", "use std::collections::HashSet;\n"),
    ]);
    let paths: Vec<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert_eq!(paths, ["crates/core/src/a.rs", "crates/nw-sim/src/b.rs"]);
    // A seeded violation drives the non-zero exit in `expt lint`; both
    // renderings carry it.
    assert!(!report.is_clean());
    assert!(report.render().contains("crates/core/src/a.rs:1:"));
    assert!(report.render_json().contains("\"clean\": false"));
    assert_eq!(report.diagnostics[0].rule, RuleId::Nd01);
}
