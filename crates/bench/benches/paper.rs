//! Criterion timing benches for the paper reproduction's hot paths.
//!
//! These complement the `expt` binary: `expt` regenerates the paper's
//! *result* tables (simulated metrics), while these benches time the
//! *implementation* — NoC simulation rate, LPM lookups, packet parsing,
//! DSOC marshalling, the mappers and whole-platform stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nanowall::scenarios::ipv4_rig;
use nw_dsoc::{Message, MethodId};
use nw_ipv4::routes::{synthetic_table, RouteTableConfig};
use nw_ipv4::{
    BinaryTrie, CamTable, Ipv4Header, LinearTable, LpmTable, MultibitTrie, PacketGenerator,
    TrafficMix,
};
use nw_mapping::{GreedyLoadMapper, Mapper, MappingProblem, PeSlot, SimulatedAnnealingMapper};
use nw_noc::{run_open_loop, OpenLoopConfig, TopologyKind};
use nw_types::{NodeId, ObjectId};

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_open_loop");
    let cfg = OpenLoopConfig {
        offered_load: 0.10,
        warmup: 200,
        measure: 2_000,
        ..OpenLoopConfig::default()
    };
    for kind in [
        TopologyKind::SharedBus,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::FatTree,
        TopologyKind::Crossbar,
    ] {
        g.throughput(Throughput::Elements(cfg.measure));
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| run_open_loop(kind, 16, &cfg).expect("valid config"));
        });
    }
    g.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpm_lookup");
    let routes = 16_384;
    let cfg = RouteTableConfig { routes, seed: 7 };

    let mut linear = LinearTable::new();
    let prefixes = synthetic_table(&mut linear, &cfg);
    let mut bin = BinaryTrie::new();
    synthetic_table(&mut bin, &cfg);
    let mut mb4 = MultibitTrie::new(4);
    synthetic_table(&mut mb4, &cfg);
    let mut mb8 = MultibitTrie::new(8);
    synthetic_table(&mut mb8, &cfg);
    let mut cam = CamTable::new();
    synthetic_table(&mut cam, &cfg);

    let probes: Vec<u32> = prefixes.iter().take(1024).map(|p| p.addr | 1).collect();
    g.throughput(Throughput::Elements(probes.len() as u64));
    let run = |t: &dyn LpmTable, probes: &[u32]| -> u64 {
        probes.iter().filter(|&&a| t.lookup(a).is_some()).count() as u64
    };
    g.bench_function("binary_trie", |b| b.iter(|| run(&bin, &probes)));
    g.bench_function("multibit_stride4", |b| b.iter(|| run(&mb4, &probes)));
    g.bench_function("multibit_stride8", |b| b.iter(|| run(&mb8, &probes)));
    g.bench_function("tcam_model", |b| b.iter(|| run(&cam, &probes)));
    g.finish();
}

fn bench_ipv4_datapath(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipv4_datapath");
    let prefixes = {
        let mut t = LinearTable::new();
        synthetic_table(
            &mut t,
            &RouteTableConfig {
                routes: 256,
                seed: 3,
            },
        )
    };
    let mut gen = PacketGenerator::new(prefixes, TrafficMix::WorstCase, 1);
    let packets: Vec<Vec<u8>> = (0..1024).map(|_| gen.next_packet()).collect();
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.bench_function("parse_validate", |b| {
        b.iter(|| {
            packets
                .iter()
                .filter(|p| Ipv4Header::parse(p).is_ok())
                .count()
        })
    });
    g.bench_function("parse_ttl_rewrite", |b| {
        b.iter(|| {
            let mut ok = 0;
            for p in &packets {
                let mut h = Ipv4Header::parse(p).expect("generated packets are valid");
                if h.decrement_ttl().is_ok() {
                    ok += usize::from(h.to_bytes()[8] > 0);
                }
            }
            ok
        })
    });
    g.finish();
}

fn bench_dsoc_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsoc_wire");
    let msg = Message::invocation(ObjectId(7), MethodId(2), 99, vec![0xAB; 40]);
    let bytes = msg.encode();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| msg.encode()));
    g.bench_function("decode", |b| {
        b.iter(|| Message::decode(&bytes).expect("roundtrip"))
    });
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapping");
    let (app, _) = nw_ipv4::app::fast_path_app(4, &nw_ipv4::app::FastPathWeights::default())
        .expect("valid app");
    let n = 8usize;
    let hops: Vec<Vec<f64>> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| ((a as i64 - b as i64).abs()) as f64)
                .collect()
        })
        .collect();
    let problem = MappingProblem::new(
        app,
        vec![0.002; 4],
        (0..n).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
        hops,
    )
    .expect("valid problem");
    g.bench_function("greedy", |b| b.iter(|| GreedyLoadMapper.map(&problem)));
    g.bench_function("simulated_annealing_5k", |b| {
        b.iter(|| {
            SimulatedAnnealingMapper {
                iterations: 5_000,
                ..SimulatedAnnealingMapper::default()
            }
            .map(&problem)
        })
    });
    g.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform");
    g.sample_size(10);
    g.bench_function("ipv4_rig_5k_cycles", |b| {
        b.iter(|| {
            let mut rig = ipv4_rig(4, 8, TopologyKind::Mesh, 2, 2.5);
            rig.platform.run(5_000).tasks_completed
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_noc,
    bench_lpm,
    bench_ipv4_datapath,
    bench_dsoc_wire,
    bench_mapping,
    bench_platform
);
criterion_main!(benches);
