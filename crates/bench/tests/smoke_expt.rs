//! End-to-end smoke tests for the `expt` binary and its experiment registry,
//! plus the scheduler/parallelism differential checks at the experiment
//! (rendered-table) level.

use nanowall::SchedulerMode;
use std::process::Command;

/// Whole experiment tables must be byte-identical whichever scheduler the
/// platforms underneath run on: the active-set scheduler is a pure
/// performance change. (The global default only affects platforms built
/// while it is set; since both modes simulate identically, concurrent tests
/// are unaffected beyond speed.)
#[test]
fn experiment_tables_are_scheduler_invariant() {
    for id in ["f4", "f6", "t8", "t9", "t10", "t11", "t12", "t13"] {
        nanowall::set_default_scheduler_mode(SchedulerMode::Dense);
        let dense = nw_bench::experiments::run_by_id(id, true).expect("registered id");
        nanowall::set_default_scheduler_mode(SchedulerMode::ActiveSet);
        let active = nw_bench::experiments::run_by_id(id, true).expect("registered id");
        assert_eq!(
            dense, active,
            "{id}: active-set scheduler changed the experiment table"
        );
    }
}

/// The parallel sweep runner must not change sweep tables: results return
/// in input order, and every point simulates an independent platform.
#[test]
fn parallel_sweeps_match_serial_tables() {
    // Pool size is flipped through the process-global atomic override (not
    // the environment — setenv while sibling tests run getenv is UB).
    nw_sim::set_sweep_threads(Some(1));
    let f4_serial = nw_bench::experiments::f4_topology::run(true).table;
    let t10_serial = nw_bench::experiments::t10_crypto::run(true).table;
    nw_sim::set_sweep_threads(None);
    let f4_parallel = nw_bench::experiments::f4_topology::run(true).table;
    let t10_parallel = nw_bench::experiments::t10_crypto::run(true).table;
    assert_eq!(
        f4_serial, f4_parallel,
        "f4 sweep diverged under parallelism"
    );
    assert_eq!(
        t10_serial, t10_parallel,
        "t10 sweep diverged under parallelism"
    );
}

/// The cheapest experiment (T1, mask-set NRE — pure arithmetic, no
/// simulation) runs through the library entry point and emits a table.
#[test]
fn t1_mask_nre_emits_a_table() {
    let out = nw_bench::experiments::run_by_id("t1", true).expect("t1 is a registered id");
    assert!(!out.trim().is_empty(), "t1 must emit a non-empty table");
    assert!(
        out.contains("T1"),
        "table header names the experiment: {out}"
    );
    assert!(out.contains("90nm"), "paper's headline node appears: {out}");
    let rows = out.lines().filter(|l| l.contains("nm")).count();
    assert!(rows >= 5, "one row per technology node: {out}");
}

/// Unknown ids are rejected, and every advertised id is runnable (checked
/// here only for the ids that complete in milliseconds).
#[test]
fn registry_is_consistent() {
    assert!(nw_bench::experiments::run_by_id("zz", true).is_none());
    for id in ["t1", "t2", "f3", "t4", "t7", "f1"] {
        assert!(nw_bench::experiments::ALL_IDS.contains(&id));
        let out = nw_bench::experiments::run_by_id(id, true).expect("registered id runs");
        assert!(!out.trim().is_empty(), "{id} must emit output");
    }
}

/// The three application-workload experiments run end-to-end and report
/// non-degenerate numbers: delivered items and nonzero per-item energy.
#[test]
fn workload_experiments_are_nondegenerate() {
    for id in ["t8", "t9", "t10"] {
        let out = nw_bench::experiments::run_by_id(id, true).expect("registered id runs");
        assert!(out.contains(&id.to_uppercase()), "{id} table header: {out}");
        // Every delivered-ratio cell is a percentage; at least one row must
        // deliver traffic.
        assert!(
            out.lines().any(|l| l.contains('%') && !l.contains(" 0%")),
            "{id} must deliver items: {out}"
        );
    }
    // Per-item energy shows up in the video and crypto tables.
    let t8 = nw_bench::experiments::run_by_id("t8", true).unwrap();
    assert!(t8.contains("pJ/slice"), "{t8}");
    let t10 = nw_bench::experiments::run_by_id("t10", true).unwrap();
    assert!(t10.contains("pJ/payload"), "{t10}");
}

/// `expt list` prints every experiment id and covers every entry of the
/// scenario registry — name *and* a non-empty one-line description — so
/// the CLI index can never silently fall behind the catalog.
#[test]
fn expt_list_covers_every_experiment_and_scenario() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let out = Command::new(exe).arg("list").output().expect("spawns");
    assert!(out.status.success(), "expt list must exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in nw_bench::experiments::ALL_IDS {
        assert!(
            stdout.lines().any(|l| l.trim_start().starts_with(id)),
            "list must name {id}: {stdout}"
        );
    }
    let reg = nanowall::ScenarioRegistry::standard();
    assert!(
        reg.names().contains(&"mix"),
        "the mix family must be registered"
    );
    for spec in reg.specs() {
        assert!(
            !spec.summary.trim().is_empty(),
            "{} needs a description",
            spec.name
        );
        let listed = stdout.lines().any(|l| {
            let t = l.trim_start();
            t.starts_with(spec.name) && t.contains(spec.summary)
        });
        assert!(
            listed,
            "list must show scenario {} with its description: {stdout}",
            spec.name
        );
    }
}

/// The determinism-audit rule registry is pinned the same way as the
/// scenario catalog: `expt list` (and `expt lint --rules`) must name every
/// rule id with a non-empty one-line description, so a rule can never be
/// added to the auditor without surfacing in the CLI index.
#[test]
fn expt_list_covers_every_lint_rule() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let list = Command::new(exe).arg("list").output().expect("spawns");
    assert!(list.status.success(), "expt list must exit 0: {list:?}");
    let list_out = String::from_utf8_lossy(&list.stdout);
    let rules = Command::new(exe)
        .args(["lint", "--rules"])
        .output()
        .expect("spawns");
    assert!(
        rules.status.success(),
        "lint --rules must exit 0: {rules:?}"
    );
    let rules_out = String::from_utf8_lossy(&rules.stdout);
    for rule in nw_analyze::ALL_RULES {
        assert!(
            !rule.description().trim().is_empty(),
            "{} needs a description",
            rule.id()
        );
        for (name, out) in [("list", &list_out), ("lint --rules", &rules_out)] {
            let shown = out.lines().any(|l| {
                let t = l.trim_start();
                t.starts_with(rule.id()) && t.contains(rule.description())
            });
            assert!(
                shown,
                "expt {name} must show {} with its description: {out}",
                rule.id()
            );
        }
    }
}

/// `expt lint` over this workspace: exits 0, reports a clean scan in both
/// human and JSON renderings, and rejects unknown flags with a usage error.
#[test]
fn expt_lint_passes_on_this_workspace() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root");

    let clean = Command::new(exe)
        .arg("lint")
        .current_dir(root)
        .output()
        .expect("spawns");
    assert!(
        clean.status.success(),
        "expt lint must exit 0 on a clean tree: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("0 finding(s)"), "summary line: {stdout}");

    let json = Command::new(exe)
        .args(["lint", "--json"])
        .current_dir(root)
        .output()
        .expect("spawns");
    assert!(json.status.success(), "lint --json exits 0: {json:?}");
    let jout = String::from_utf8_lossy(&json.stdout);
    assert!(
        jout.contains("\"clean\": true"),
        "JSON report is clean: {jout}"
    );

    let bad = Command::new(exe)
        .args(["lint", "--frobnicate"])
        .output()
        .expect("spawns");
    assert_eq!(bad.status.code(), Some(2), "unknown flag is a usage error");
}

/// Every registered scenario simulates under both scheduler modes with
/// bit-identical reports — the registry-wide differential check at smoke
/// scope, so a newly registered family (like `mix`) is covered the moment
/// it lands in the catalog.
#[test]
fn every_registered_scenario_runs_under_both_schedulers() {
    for spec in nanowall::ScenarioRegistry::standard().specs() {
        let mut dense = (spec.build)(true);
        dense.platform.set_scheduler_mode(SchedulerMode::Dense);
        let mut active = (spec.build)(true);
        active.platform.set_scheduler_mode(SchedulerMode::ActiveSet);
        let d = dense.run(10_000);
        let a = active.run(10_000);
        assert_eq!(d, a, "{}: schedulers diverged", spec.name);
        assert!(d.tasks_completed > 0, "{} must do work", spec.name);
    }
}

/// `expt --help` and `expt list` both pin the full subcommand table: every
/// entry of [`nw_bench::obs::SUBCOMMANDS`] appears with its one-line
/// description, so a subcommand can never be added without surfacing in
/// both indexes.
#[test]
fn help_and_list_cover_every_subcommand() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let help = Command::new(exe).arg("--help").output().expect("spawns");
    assert!(help.status.success(), "expt --help must exit 0: {help:?}");
    let help_out = String::from_utf8_lossy(&help.stdout);
    let list = Command::new(exe).arg("list").output().expect("spawns");
    assert!(list.status.success(), "expt list must exit 0: {list:?}");
    let list_out = String::from_utf8_lossy(&list.stdout);
    for (name, what) in nw_bench::obs::SUBCOMMANDS {
        assert!(
            !what.trim().is_empty(),
            "subcommand {name} needs a description"
        );
        for (label, out) in [("--help", &help_out), ("list", &list_out)] {
            let shown = out.lines().any(|l| {
                let t = l.trim_start();
                t.starts_with(name) && t.contains(what)
            });
            assert!(
                shown,
                "expt {label} must show {name} with its description: {out}"
            );
        }
    }
    assert!(
        help_out.contains("usage: expt"),
        "help leads with usage: {help_out}"
    );
}

/// `expt trace` end to end: runs the mix scenario, writes a file, and the
/// written JSON passes the Chrome-trace validator — parseable, timestamps
/// monotone non-decreasing, every B paired with an E.
#[test]
fn expt_trace_writes_valid_chrome_trace_json() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let out_path =
        std::env::temp_dir().join(format!("expt_trace_smoke_{}.json", std::process::id()));
    let out = Command::new(exe)
        .args([
            "trace",
            "--scenario",
            "mix",
            "--cycles",
            "20000",
            "--out",
            out_path.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "expt trace must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TRACE  mix"), "summary line: {stdout}");
    assert!(stdout.contains("NoC heatmap"), "heatmap table: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("trace file written");
    let _ = std::fs::remove_file(&out_path);
    let check = nanowall::validate_chrome_trace(&json).expect("written trace passes the validator");
    assert!(check.events > 0, "trace must carry events");
    assert!(
        check.spans > 0 && check.instants > 0,
        "mix trace has both spans and instants: {check:?}"
    );

    // Bad invocations are usage errors, not panics.
    let bad = Command::new(exe)
        .args(["trace", "--scenario", "nope"])
        .output()
        .expect("spawns");
    assert_eq!(bad.status.code(), Some(2), "unknown scenario is an error");
    let unknown = Command::new(exe)
        .args(["trace", "--frobnicate"])
        .output()
        .expect("spawns");
    assert_eq!(unknown.status.code(), Some(2), "unknown flag is an error");
}

/// `expt faults --quick` end to end: the parity harness exits 0 on this
/// tree, reports bit-identical runs, and the table carries every scenario.
#[test]
fn expt_faults_harness_passes_quick() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let out = Command::new(exe)
        .args(["faults", "--quick", "--seed", "1"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "expt faults must exit 0: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAULTS  seed 1"), "header: {stdout}");
    assert!(stdout.contains("bit-identical"), "verdict: {stdout}");
    for name in nanowall::ScenarioRegistry::standard().names() {
        assert!(stdout.contains(name), "row for {name}: {stdout}");
    }

    let unknown = Command::new(exe)
        .args(["faults", "--frobnicate"])
        .output()
        .expect("spawns");
    assert_eq!(unknown.status.code(), Some(2), "unknown flag is an error");
}

/// `expt snapshot --quick` end to end: the checkpoint/restore matrix
/// exits 0 on this tree, covers all eight {scheduler} × {faults} ×
/// {trace} cells, and unknown flags are usage errors (exit 2).
#[test]
fn expt_snapshot_matrix_passes_quick() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let out = Command::new(exe)
        .args(["snapshot", "--quick", "--seed", "7"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "expt snapshot must exit 0: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SNAPSHOT"), "header: {stdout}");
    assert!(stdout.contains("campaign seed 7"), "seed echoed: {stdout}");
    assert!(
        stdout.contains("all cells round-trip bit-identically"),
        "verdict: {stdout}"
    );
    assert!(!stdout.contains("DIVERGED"), "no diverging cell: {stdout}");
    for mode in ["Dense", "ActiveSet"] {
        assert_eq!(
            stdout.matches(mode).count(),
            4,
            "four {mode} cells: {stdout}"
        );
    }

    let unknown = Command::new(exe)
        .args(["snapshot", "--frobnicate"])
        .output()
        .expect("spawns");
    assert_eq!(unknown.status.code(), Some(2), "unknown flag is an error");
}

/// `expt --fast --warm-fork t5` end to end: the warm-fork sweep protocol
/// runs through the binary and labels its table as such.
#[test]
fn expt_warm_fork_flag_runs_a_sweep_grid() {
    let exe = env!("CARGO_BIN_EXE_expt");
    let out = Command::new(exe)
        .args(["--fast", "--warm-fork", "t5"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "expt --warm-fork t5 must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("T5"), "table header: {stdout}");
    assert!(
        stdout.contains("warm-fork"),
        "the protocol is labeled: {stdout}"
    );
}

/// The uniform `--seed` contract: every seed-taking subcommand rejects a
/// malformed value with the usage exit code 2 — before doing any work.
#[test]
fn bad_seed_is_a_usage_error_everywhere() {
    let exe = env!("CARGO_BIN_EXE_expt");
    for sub in [
        vec!["bench", "--quick"],
        vec!["trace", "--scenario", "mix"],
        vec!["profile", "--quick"],
        vec!["faults", "--quick"],
        vec!["snapshot", "--quick"],
    ] {
        for seed in [&["--seed", "banana"][..], &["--seed"][..]] {
            let mut args: Vec<&str> = sub.clone();
            args.extend_from_slice(seed);
            let out = Command::new(exe).args(&args).output().expect("spawns");
            assert_eq!(
                out.status.code(),
                Some(2),
                "{args:?} must be a usage error: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(
                String::from_utf8_lossy(&out.stderr).contains("--seed"),
                "{args:?} names the bad flag"
            );
        }
    }
}

/// The installed binary itself: `expt --fast t1` exits 0 and prints the
/// table; bad ids and empty invocations exit non-zero.
#[test]
fn expt_binary_runs_t1_end_to_end() {
    let exe = env!("CARGO_BIN_EXE_expt");

    let ok = Command::new(exe)
        .args(["--fast", "t1"])
        .output()
        .expect("expt binary spawns");
    assert!(ok.status.success(), "expt t1 must exit 0: {ok:?}");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("T1"), "stdout carries the table: {stdout}");
    assert!(stdout.lines().count() >= 5, "table has rows: {stdout}");

    let bad = Command::new(exe).arg("nope").output().expect("spawns");
    assert!(!bad.status.success(), "unknown id must exit non-zero");

    let none = Command::new(exe).output().expect("spawns");
    assert!(!none.status.success(), "no args must exit non-zero (usage)");
}
