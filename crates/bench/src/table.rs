//! Minimal aligned-column table rendering for experiment output.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use nw_bench::Table;
///
/// let mut t = Table::new(&["node", "mask NRE"]);
/// t.row(&["90nm", "$1.00M"]);
/// let s = t.render();
/// assert!(s.contains("90nm"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let mut measure = |cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        };
        measure(&self.header);
        for r in &self.rows {
            measure(r);
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], width: &[usize]| {
            for (i, w) in width.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < width.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header, &width);
        let rule: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        emit(&mut out, &rule, &width);
        for r in &self.rows {
            emit(&mut out, r, &width);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset everywhere.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].rfind('1').unwrap(), col);
        assert_eq!(lines[3].rfind('2').unwrap(), col);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["only"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }
}
