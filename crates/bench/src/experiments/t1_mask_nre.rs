//! T1 — mask-set NRE trend (claim C1, paper §1).
//!
//! "The SoC mask set manufacturing NRE cost has been multiplied by a factor
//! of ten in about three process technology generations, exceeding 1M$ for
//! current 90nm process."

use crate::Table;
use nw_econ::mask_set_nre;
use nw_types::TechNode;

/// Structured result.
#[derive(Debug)]
pub struct T1Result {
    /// (node, mask NRE in $M) per ladder node.
    pub rows: Vec<(TechNode, f64)>,
    /// Rendered table.
    pub table: String,
}

/// Runs T1.
pub fn run() -> T1Result {
    let mut t = Table::new(&["node", "mask-set NRE", "x vs 3 gens earlier"]);
    let mut rows = Vec::new();
    for node in TechNode::LADDER {
        let nre = mask_set_nre(node);
        rows.push((node, nre.millions()));
        let three_back = TechNode::LADDER
            .iter()
            .find(|n| n.generations_until(node) == 3)
            .map(|&n| nre.0 / mask_set_nre(n).0);
        t.row_owned(vec![
            node.to_string(),
            nre.to_string(),
            three_back.map_or("-".into(), |r| format!("x{r:.1}")),
        ]);
    }
    T1Result {
        rows,
        table: format!(
            "T1  Mask-set NRE by node (paper: x10 per ~3 generations, >$1M at 90nm)\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_and_growth_match_the_paper() {
        let r = run();
        let at90 = r.rows.iter().find(|(n, _)| *n == TechNode::N90).unwrap().1;
        assert!((at90 - 1.0).abs() < 1e-9, "$1M at 90nm");
        let at250 = r.rows.iter().find(|(n, _)| *n == TechNode::N250).unwrap().1;
        assert!((at90 / at250 - 10.0).abs() < 1e-6, "x10 in 3 generations");
        assert!(r.table.contains("x10.0"));
    }
}
