//! F3 — HW vs SW complexity growth (claim C3, paper §6).
//!
//! 56%/yr transistor growth versus 140%/yr embedded-software growth, with
//! software effort overtaking hardware design effort around the paper's
//! publication.

use crate::Table;
use nw_econ::{
    hw_design_effort, hw_transistors, risc_cores_in, sw_complexity, sw_overtakes_hw_year,
};

/// Structured result.
#[derive(Debug)]
pub struct F3Result {
    /// (year, transistors, hw effort, sw effort) series.
    pub series: Vec<(u32, f64, f64, f64)>,
    /// Year software effort reaches 10× hardware effort.
    pub sw_10x_year: u32,
    /// Rendered table.
    pub table: String,
}

/// Runs F3 over 1998–2010.
pub fn run() -> F3Result {
    let mut t = Table::new(&[
        "year",
        "SoC transistors",
        "RISC cores fit",
        "HW effort",
        "SW effort",
        "SW/HW",
    ]);
    let mut series = Vec::new();
    for year in (1998..=2010).step_by(2) {
        let tr = hw_transistors(year);
        let hw = hw_design_effort(year);
        let sw = sw_complexity(year);
        series.push((year, tr, hw, sw));
        t.row_owned(vec![
            year.to_string(),
            format!("{:.0}M", tr / 1e6),
            format!("{:.0}", risc_cores_in(tr)),
            format!("{hw:.1}"),
            format!("{sw:.1}"),
            format!("{:.1}x", sw / hw),
        ]);
    }
    let sw_10x_year = sw_overtakes_hw_year(10.0);
    F3Result {
        series,
        sw_10x_year,
        table: format!(
            "F3  HW (56%/yr) vs embedded-SW (140%/yr) complexity growth (paper §6)\n{}SW reaches 10x HW effort in {sw_10x_year}\n",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let r = run();
        // 2002-2004: >100M transistors, >1000 cores (paper §1).
        let (_, tr2004, _, _) = r.series.iter().find(|s| s.0 == 2004).copied().unwrap();
        assert!(tr2004 > 100e6);
        assert!(risc_cores_in(tr2004) > 1000.0);
        // SW pulls away monotonically.
        for w in r.series.windows(2) {
            assert!(w[1].3 / w[1].2 > w[0].3 / w[0].2);
        }
        assert!((2001..=2005).contains(&r.sw_10x_year));
    }
}
