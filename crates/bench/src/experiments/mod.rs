//! One module per reproduced table/figure. See `DESIGN.md` §4 for the
//! mapping from experiment id to paper claim.

pub mod f1_continuum;
pub mod f2_fppa_tour;
pub mod f3_growth;
pub mod f4_topology;
pub mod f5_wire_delay;
pub mod f6_latency_hiding;
pub mod f7_productivity;
pub mod t10_crypto;
pub mod t11_mix;
pub mod t12_resilience;
pub mod t13_replicas;
pub mod t1_mask_nre;
pub mod t2_breakeven;
pub mod t3_ipv4;
pub mod t4_efpga;
pub mod t5_lpm;
pub mod t6_mapping;
pub mod t7_continuum_cost;
pub mod t8_video;
pub mod t9_modem;

/// One registered experiment: id and one-line title (`expt list` prints
/// both; `run_by_id` accepts the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Experiment id (`t1`, `f4`, …).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
}

/// Every experiment in DESIGN.md order.
pub const EXPERIMENTS: [Experiment; 20] = [
    Experiment {
        id: "t1",
        title: "mask-set NRE by technology node",
    },
    Experiment {
        id: "t2",
        title: "hardwired vs programmable break-even volumes",
    },
    Experiment {
        id: "f3",
        title: "design-complexity growth vs productivity",
    },
    Experiment {
        id: "f4",
        title: "NoC topology characterization (bus/ring/mesh/torus/...)",
    },
    Experiment {
        id: "f5",
        title: "cross-chip wire delay by node",
    },
    Experiment {
        id: "f6",
        title: "multithreaded latency hiding (claim C6)",
    },
    Experiment {
        id: "f7",
        title: "platform productivity model",
    },
    Experiment {
        id: "t3",
        title: "IPv4 fast path at 10 Gb/s worst case (claim C7)",
    },
    Experiment {
        id: "t4",
        title: "eFPGA offload break-even",
    },
    Experiment {
        id: "t5",
        title: "LPM engine shootout",
    },
    Experiment {
        id: "t6",
        title: "MultiFlex mapping quality (claim C10)",
    },
    Experiment {
        id: "t7",
        title: "platform-continuum cost model",
    },
    Experiment {
        id: "t8",
        title: "video codec pipeline: frame-sliced, memory-bound (§7.1)",
    },
    Experiment {
        id: "t9",
        title: "modem baseband chain: latency-critical, twoway-heavy",
    },
    Experiment {
        id: "t10",
        title: "crypto offload: hwip-bound bulk transfer (§6.4)",
    },
    Experiment {
        id: "t11",
        title: "mixed workloads on one fabric: per-workload latency percentiles + deadlines",
    },
    Experiment {
        id: "t12",
        title: "resilience grid: goodput/p99/retries/misses vs injected fault rate",
    },
    Experiment {
        id: "t13",
        title:
            "replica spread: one warmed snapshot forked across fault seeds (min/median/max + CI)",
    },
    Experiment {
        id: "f1",
        title: "platform-continuum positioning",
    },
    Experiment {
        id: "f2",
        title: "Figure 2 FPPA tour",
    },
];

/// Runs one experiment by id and returns its rendered output.
///
/// `fast` shrinks simulation windows for CI-speed runs.
pub fn run_by_id(id: &str, fast: bool) -> Option<String> {
    let out = match id {
        "t1" => t1_mask_nre::run().table,
        "t2" => t2_breakeven::run().table,
        "f3" => f3_growth::run().table,
        "f4" => f4_topology::run(fast).table,
        "f5" => f5_wire_delay::run().table,
        "f6" => f6_latency_hiding::run(fast).table,
        "f7" => f7_productivity::run().table,
        "t3" => t3_ipv4::run(fast).table,
        "t4" => t4_efpga::run().table,
        "t5" => t5_lpm::run(fast).table,
        "t6" => t6_mapping::run(fast).table,
        "t7" => t7_continuum_cost::run().table,
        "t8" => t8_video::run(fast).table,
        "t9" => t9_modem::run(fast).table,
        "t10" => t10_crypto::run(fast).table,
        "t11" => t11_mix::run(fast).table,
        "t12" => t12_resilience::run(fast).table,
        "t13" => t13_replicas::run(fast).table,
        "f1" => f1_continuum::run().table,
        "f2" => f2_fppa_tour::run(fast).table,
        _ => return None,
    };
    Some(out)
}

/// Runs one experiment by id under the warm-fork protocol (`expt <id>
/// --warm-fork`): sweep grids that can share a warmed platform snapshot do
/// (`t11` forks one warmed rig per point, `t5` shares each size's prefix
/// set across engines); grids whose axes are structural run cold and label
/// themselves accordingly (`t3`). Every other experiment has no sweep to
/// warm, so the flag is a no-op and the standard protocol runs.
pub fn run_by_id_warm_fork(id: &str, fast: bool) -> Option<String> {
    match id {
        "t3" => Some(t3_ipv4::run_warm_fork(fast).table),
        "t5" => Some(t5_lpm::run_warm_fork(fast).table),
        "t11" => Some(t11_mix::run_warm_fork(fast).table),
        _ => run_by_id(id, fast),
    }
}

/// All experiment ids in DESIGN.md order (derived from [`EXPERIMENTS`]).
pub const ALL_IDS: [&str; EXPERIMENTS.len()] = {
    let mut ids = [""; EXPERIMENTS.len()];
    let mut i = 0;
    while i < EXPERIMENTS.len() {
        ids[i] = EXPERIMENTS[i].id;
        i += 1;
    }
    ids
};

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn every_experiment_is_titled_and_runnable_by_id() {
        for e in EXPERIMENTS {
            assert!(!e.title.is_empty(), "{}", e.id);
        }
        assert!(ALL_IDS.contains(&"t1") && ALL_IDS.contains(&"t10"));
    }
}
