//! One module per reproduced table/figure. See `DESIGN.md` §4 for the
//! mapping from experiment id to paper claim.

pub mod f1_continuum;
pub mod f2_fppa_tour;
pub mod f3_growth;
pub mod f4_topology;
pub mod f5_wire_delay;
pub mod f6_latency_hiding;
pub mod f7_productivity;
pub mod t1_mask_nre;
pub mod t2_breakeven;
pub mod t3_ipv4;
pub mod t4_efpga;
pub mod t5_lpm;
pub mod t6_mapping;
pub mod t7_continuum_cost;

/// Runs one experiment by id and returns its rendered output.
///
/// `fast` shrinks simulation windows for CI-speed runs.
pub fn run_by_id(id: &str, fast: bool) -> Option<String> {
    let out = match id {
        "t1" => t1_mask_nre::run().table,
        "t2" => t2_breakeven::run().table,
        "f3" => f3_growth::run().table,
        "f4" => f4_topology::run(fast).table,
        "f5" => f5_wire_delay::run().table,
        "f6" => f6_latency_hiding::run(fast).table,
        "f7" => f7_productivity::run().table,
        "t3" => t3_ipv4::run(fast).table,
        "t4" => t4_efpga::run().table,
        "t5" => t5_lpm::run(fast).table,
        "t6" => t6_mapping::run(fast).table,
        "t7" => t7_continuum_cost::run().table,
        "f1" => f1_continuum::run().table,
        "f2" => f2_fppa_tour::run(fast).table,
        _ => return None,
    };
    Some(out)
}

/// All experiment ids in DESIGN.md order.
pub const ALL_IDS: [&str; 14] = [
    "t1", "t2", "f3", "f4", "f5", "f6", "f7", "t3", "t4", "t5", "t6", "t7", "f1", "f2",
];
