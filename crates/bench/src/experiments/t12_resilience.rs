//! T12 — the resilience grid: graceful degradation under injected faults.
//!
//! The nanometer-wall argument cuts both ways: a platform justifies its
//! overhead not just by absorbing new applications but by *keeping them
//! running* as the underlying fabric becomes less reliable. This
//! experiment sweeps a seeded fault campaign's intensity (level 0 = the
//! faultless baseline every other table measures, rising to several times
//! the nominal "unreliable fabric" operating point) across three
//! registered workloads — the IPv4 fast path, the video codec, and the
//! mixed-tenancy rig — with the retry layer on. The observables are the
//! degradation curve: goodput (tasks retired per kilocycle), worst
//! per-object p99, deadline-miss rate, and the recovery work (retries,
//! give-ups, drops) the platform spent staying up.
//!
//! Every point is deterministic: one campaign seed, cycle-stamped fault
//! timelines, and the retry layer's token-correlated backoff — so the grid
//! is reproducible bit for bit, and `expt faults` separately asserts the
//! scheduler-mode parity of exactly these runs.

use crate::Table;
use nanowall::scenarios::ScenarioRegistry;
use nanowall::{FaultCampaign, FaultRates, RetryPolicy};
use nw_sim::parallel_map;

/// The workloads the grid sweeps (all from the standard registry).
const WORKLOADS: [&str; 3] = ["ipv4", "video", "mix"];

/// The campaign seed every point shares, so the level axis is the only
/// thing that varies within a workload column.
const SEED: u64 = 12;

/// One grid point.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Workload (registry scenario name).
    pub workload: String,
    /// Campaign intensity (0.0 = faultless baseline).
    pub level: f64,
    /// Campaign events applied in the window.
    pub faults: u64,
    /// Tasks retired per 1000 cycles — the goodput figure.
    pub goodput: f64,
    /// Worst per-object p99 round-trip latency in cycles (0 when no
    /// object recorded samples).
    pub p99: u64,
    /// Retries the resilience layer issued.
    pub retries: u64,
    /// Calls abandoned after the attempt budget.
    pub give_ups: u64,
    /// Packets the NoC dropped.
    pub dropped: u64,
    /// Deadline misses over recorded round trips, across all budgeted
    /// objects.
    pub miss_rate: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T12Result {
    /// The level × workload grid, level-major.
    pub grid: Vec<ResiliencePoint>,
    /// Rendered table.
    pub table: String,
}

fn measure(workload: &str, level: f64, cycles: u64) -> ResiliencePoint {
    let reg = ScenarioRegistry::standard();
    let mut rig = reg.build(workload, true).expect("registered scenario");
    let shape = rig.platform.fault_shape();
    rig.platform.install_fault_campaign(FaultCampaign::generate(
        SEED,
        cycles,
        &FaultRates::scaled(level),
        &shape,
    ));
    rig.platform.set_retry_policy(RetryPolicy::default());
    let report = rig.run(cycles);
    let p99 = report
        .latency
        .iter()
        .filter(|l| l.count > 0)
        .map(|l| l.p99.0)
        .max()
        .unwrap_or(0);
    let (misses, samples) = report
        .latency
        .iter()
        .filter(|l| l.deadline.is_some() && l.count > 0)
        .fold((0u64, 0u64), |(m, n), l| {
            (m + l.deadline_misses, n + l.count)
        });
    ResiliencePoint {
        workload: workload.to_owned(),
        level,
        faults: report.resilience.faults_injected,
        goodput: report.tasks_per_cycle() * 1_000.0,
        p99,
        retries: report.resilience.retries,
        give_ups: report.resilience.retry_give_ups,
        dropped: report.resilience.packets_dropped,
        miss_rate: if samples == 0 {
            0.0
        } else {
            misses as f64 / samples as f64
        },
    }
}

/// Runs T12: the fault-rate × workload degradation grid.
pub fn run(fast: bool) -> T12Result {
    let cycles = if fast { 20_000 } else { 80_000 };
    let levels: &[f64] = if fast {
        &[0.0, 2.0]
    } else {
        &[0.0, 1.0, 2.0, 4.0]
    };
    let points: Vec<(f64, &str)> = levels
        .iter()
        .flat_map(|&l| WORKLOADS.iter().map(move |&w| (l, w)))
        .collect();
    // Independent platforms per point; order-preserving fan-out keeps the
    // table byte-identical to a serial run.
    let grid: Vec<ResiliencePoint> = parallel_map(points, |(level, w)| measure(w, level, cycles));

    let mut t = Table::new(&[
        "level",
        "workload",
        "faults",
        "goodput/kc",
        "p99",
        "retries",
        "give-ups",
        "dropped",
        "miss",
    ]);
    for p in &grid {
        t.row_owned(vec![
            format!("{:.1}", p.level),
            p.workload.clone(),
            p.faults.to_string(),
            format!("{:.2}", p.goodput),
            format!("{} cyc", p.p99),
            p.retries.to_string(),
            p.give_ups.to_string(),
            p.dropped.to_string(),
            format!("{:.1}%", p.miss_rate * 100.0),
        ]);
    }
    T12Result {
        table: format!(
            "T12  Resilience grid: seeded fault campaigns (seed {SEED}) vs workload, retry layer on\n{}",
            t.render()
        ),
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_faultless_and_degradation_is_graceful() {
        let r = run(true);
        assert_eq!(r.grid.len(), 2 * WORKLOADS.len());
        // Level 0 points are bit-for-bit the faultless platform: no
        // injections, no recovery work.
        for p in r.grid.iter().filter(|p| p.level == 0.0) {
            assert_eq!(p.faults, 0, "{p:?}");
            assert_eq!(p.retries + p.give_ups + p.dropped, 0, "{p:?}");
            assert!(p.goodput > 0.0, "{p:?}");
        }
        // Faulted points actually injected, and the platform kept working
        // (graceful degradation, not collapse).
        for p in r.grid.iter().filter(|p| p.level > 0.0) {
            assert!(p.faults > 0, "{p:?}");
            assert!(p.goodput > 0.0, "campaign must not wedge the rig: {p:?}");
        }
        assert!(r.table.contains("T12"), "{}", r.table);
    }

    #[test]
    fn grid_is_deterministic_across_reruns() {
        let a = run(true);
        let b = run(true);
        for (x, y) in a.grid.iter().zip(&b.grid) {
            assert_eq!(x.faults, y.faults, "{x:?} vs {y:?}");
            assert_eq!(x.retries, y.retries, "{x:?} vs {y:?}");
            assert!((x.goodput - y.goodput).abs() < 1e-12, "{x:?} vs {y:?}");
            assert_eq!(x.p99, y.p99, "{x:?} vs {y:?}");
        }
        assert_eq!(a.table, b.table, "rendered grid must be reproducible");
    }
}
