//! F2 — Figure 2: the FPPA platform tour.
//!
//! Builds the Figure 2 platform (heterogeneous multithreaded PEs, SRAM +
//! eDRAM, eFPGA, hardwired codec, communication I/O, all on a NoC), pushes
//! traffic through every component class, and prints the inventory with
//! per-component activity — the "does every box in the figure actually do
//! something" check.

use crate::Table;
use nanowall::scenarios::fppa_tour_config;
use nanowall::{FppaPlatform, NodeRole};
use nw_fabric::KernelSpec;
use nw_pe::{Op, Program};
use nw_types::Cycles;

/// Structured result.
#[derive(Debug)]
pub struct F2Result {
    /// (component, activity count) per component class.
    pub activity: Vec<(String, u64)>,
    /// Total platform area in mm².
    pub area_mm2: f64,
    /// Rendered table.
    pub table: String,
}

/// Runs F2: exercises PEs, both memories, the eFPGA, the hardwired block
/// and an I/O channel.
pub fn run(fast: bool) -> F2Result {
    let cycles = if fast { 30_000 } else { 100_000 };
    let cfg = fppa_tour_config();
    let mut platform = FppaPlatform::new(cfg).expect("tour config is valid");

    // Configure the fabric with a kernel before traffic arrives.
    platform
        .fabric_mut(0)
        .reconfigure(&KernelSpec::checksum_offload(), Cycles(0))
        .expect("kernel fits the default fabric");

    // Hand-built PE programs touching every service class.
    let sram = platform.memory_node(0);
    let edram = platform.memory_node(1);
    let fabric = platform.fabric_node(0);
    let codec = platform.hwip_node(0);
    let tour = Program::straight_line([
        Op::Compute(30),
        Op::call(sram, 16, 64),
        Op::Compute(20),
        Op::call(edram, 16, 128),
        Op::call(fabric, 32, 8),
        Op::call(codec, 64, 16),
        Op::LocalMem {
            write: true,
            bytes: 64,
        },
    ]);
    for c in 0..cycles {
        for pe in 0..8 {
            while platform.pe(pe).idle_threads() > 0 {
                platform
                    .pe_mut(pe)
                    .spawn(tour.clone())
                    .expect("idle checked");
            }
        }
        platform.step();
        let _ = c;
    }
    let report = platform.report(Cycles(cycles));

    let mut t = Table::new(&["component", "node", "activity"]);
    let mut activity = Vec::new();
    for node in 0..platform.config().n_endpoints() {
        let node_id = nw_types::NodeId(node);
        let (name, count) = match platform.role(node_id).expect("endpoint exists") {
            NodeRole::Pe(i) => (
                format!("pe{i} ({})", platform.config().pes[i].class),
                platform.pe(i).stats().tasks_completed,
            ),
            NodeRole::Memory(i) => (
                format!("memory{i} ({})", platform.config().memories[i].technology),
                report.mem_accesses,
            ),
            NodeRole::Fabric(i) => (format!("efpga{i}"), report.fabric_served),
            NodeRole::HwIp(i) => (platform.config().hwip[i].name.clone(), report.hwip_served),
            NodeRole::Io(i) => (format!("io{i}"), report.io[i].generated),
        };
        t.row_owned(vec![name.clone(), node.to_string(), count.to_string()]);
        activity.push((name, count));
    }

    let area = platform.area().0;
    F2Result {
        activity,
        area_mm2: area,
        table: format!(
            "F2  Figure 2 FPPA tour: every component class under traffic\n{}\nPlatform logic+memory area: {area:.1}mm² | total energy: {} | NoC packets: {}\n",
            t.render(),
            report.energy,
            report.noc.delivered
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_class_sees_traffic() {
        let r = run(true);
        // PEs completed tasks.
        let pe_tasks: u64 = r
            .activity
            .iter()
            .filter(|(n, _)| n.starts_with("pe"))
            .map(|&(_, c)| c)
            .sum();
        assert!(pe_tasks > 100, "PEs idle: {pe_tasks}");
        // Memories, fabric, codec and I/O all active.
        for class in ["memory0", "efpga0", "mpeg4-codec", "io0"] {
            let (_, c) = r
                .activity
                .iter()
                .find(|(n, _)| n.starts_with(class))
                .unwrap_or_else(|| panic!("{class} missing"));
            assert!(*c > 0, "{class} saw no traffic");
        }
        assert!(r.area_mm2 > 5.0);
    }
}
