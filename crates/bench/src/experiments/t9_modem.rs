//! T9 — the modem baseband chain: latency-critical, twoway-heavy.
//!
//! Every symbol burst makes synchronous round trips on its critical path
//! (channel-estimate queries from the demodulator, the link-adaptation
//! report from the FEC decoder), so the workload is the twoway-heavy
//! counterpart to the oneway IPv4 stream: deadline behaviour is set by how
//! well the multithreaded PEs hide NoC latency, not by raw compute. The
//! sweep raises the per-hop link latency and then ablates the thread
//! count at the worst latency — claim C6 measured on an application whose
//! message mix is dominated by request/reply.

use crate::Table;
use nanowall::scenarios::modem_rig;
use nw_apps::{modem_pipeline, ModemParams};
use nw_sim::parallel_map;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct ModemPoint {
    /// Per-hop link latency in cycles.
    pub link_latency: u64,
    /// Hardware threads per PE.
    pub threads: usize,
    /// Fraction of generated bursts decoded and delivered to the MAC.
    pub delivered_ratio: f64,
    /// Mean NoC packet latency in cycles.
    pub noc_latency: f64,
    /// Invocations still queued when the window closed (backlog ⇒ missed
    /// deadlines).
    pub backlog: usize,
    /// Channel-estimator invocations per delivered burst.
    pub est_queries_per_burst: f64,
    /// End-to-end channel-estimate round-trip percentiles in cycles
    /// (request-issue → reply-delivery at the demodulator): p50, p95, p99.
    pub est_p50: u64,
    /// 95th percentile (see `est_p50`).
    pub est_p95: u64,
    /// 99th percentile (see `est_p50`).
    pub est_p99: u64,
    /// The estimator's deadline budget in cycles.
    pub est_deadline: u64,
    /// Fraction of estimate round trips that blew the deadline budget.
    pub est_miss_rate: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T9Result {
    /// Link-latency sweep at 4 threads.
    pub sweep: Vec<ModemPoint>,
    /// Thread ablation at the worst link latency.
    pub thread_ablation: Vec<ModemPoint>,
    /// Twoway fraction of the stage graph's message mix.
    pub twoway_fraction: f64,
    /// Rendered table.
    pub table: String,
}

/// Measures one modem point (shared with T11's deadline restatement, so
/// the two experiments can never drift apart on rig parameters).
pub(crate) fn measure(link_latency: u64, threads: usize, mbps: f64, cycles: u64) -> ModemPoint {
    let params = ModemParams::default();
    let mut rig = modem_rig(&params, 6, threads, link_latency, mbps);
    let est = rig.stage_named("channel-est").expect("stage exists");
    let report = rig.run(cycles);
    let io = &report.io[0];
    let delivered_ratio = if io.generated == 0 {
        0.0
    } else {
        io.transmitted as f64 / io.generated as f64
    };
    let lat = report
        .object_latency(est.0)
        .expect("estimator latency is tracked");
    ModemPoint {
        link_latency,
        threads,
        delivered_ratio,
        noc_latency: report.noc.latency.mean(),
        backlog: report.queued_invocations,
        est_queries_per_burst: if io.transmitted == 0 {
            0.0
        } else {
            report.object_invocations[est.0] as f64 / io.transmitted as f64
        },
        est_p50: lat.p50.0,
        est_p95: lat.p95.0,
        est_p99: lat.p99.0,
        est_deadline: lat.deadline.expect("modem rig sets the budget"),
        est_miss_rate: lat.miss_rate(),
    }
}

/// Runs T9: link-latency sweep, then a thread ablation at the worst point.
pub fn run(fast: bool) -> T9Result {
    let cycles = if fast { 40_000 } else { 120_000 };
    let mbps = 800.0;
    let twoway_fraction = modem_pipeline(&ModemParams::default())
        .spec
        .twoway_fraction();

    let mut t = Table::new(&[
        "link latency",
        "threads",
        "delivered",
        "NoC latency",
        "backlog",
        "est/burst",
        "est p50/p95/p99",
        "deadline",
        "miss",
    ]);
    // Each point builds its own rig, so the sweep fans out over the pool;
    // order is preserved, keeping the table byte-identical to serial.
    let sweep: Vec<ModemPoint> = parallel_map(vec![2u64, 10, 25, 50], |link| {
        measure(link, 4, mbps, cycles)
    });
    for p in &sweep {
        t.row_owned(vec![
            format!("{} cyc", p.link_latency),
            p.threads.to_string(),
            format!("{:.0}%", p.delivered_ratio * 100.0),
            format!("{:.0} cyc", p.noc_latency),
            p.backlog.to_string(),
            format!("{:.1}", p.est_queries_per_burst),
            format!("{}/{}/{} cyc", p.est_p50, p.est_p95, p.est_p99),
            format!("{} cyc", p.est_deadline),
            format!("{:.1}%", p.est_miss_rate * 100.0),
        ]);
    }

    // The ablation runs at a rate that actually loads the PEs, so losing
    // thread contexts shows up as missed bursts rather than slack.
    let worst = sweep.last().map(|p| p.link_latency).unwrap_or(50);
    let stress_mbps = 1800.0;
    let mut at = Table::new(&[
        "threads",
        "delivered",
        "NoC latency",
        "backlog",
        "est p50/p95/p99",
        "miss",
    ]);
    let thread_ablation: Vec<ModemPoint> = parallel_map(vec![1usize, 2, 4, 8], |threads| {
        measure(worst, threads, stress_mbps, cycles)
    });
    for p in &thread_ablation {
        at.row_owned(vec![
            p.threads.to_string(),
            format!("{:.0}%", p.delivered_ratio * 100.0),
            format!("{:.0} cyc", p.noc_latency),
            p.backlog.to_string(),
            format!("{}/{}/{} cyc", p.est_p50, p.est_p95, p.est_p99),
            format!("{:.1}%", p.est_miss_rate * 100.0),
        ]);
    }

    T9Result {
        sweep,
        thread_ablation,
        twoway_fraction,
        table: format!(
            "T9  Modem baseband chain: {:.0}% twoway messages on the burst critical path (paper §7.1)\n{}\nThread ablation at {worst}-cycle links, {stress_mbps:.0} Mb/s:\n{}",
            twoway_fraction * 100.0,
            t.render(),
            at.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modem_chain_is_twoway_heavy_and_thread_sensitive() {
        let r = run(true);
        assert!(r.twoway_fraction > 0.3, "{}", r.twoway_fraction);
        // Short links deliver essentially everything.
        let short = &r.sweep[0];
        assert!(short.delivered_ratio > 0.85, "{short:?}");
        // The estimator is on the per-burst path (~chan_queries per burst).
        assert!(short.est_queries_per_burst > 1.0, "{short:?}");
        // NoC latency grows with the link latency.
        assert!(
            r.sweep.last().unwrap().noc_latency > short.noc_latency,
            "{:?}",
            r.sweep
        );
        // At the worst latency under load, a single context misses bursts
        // that multithreading recovers (the latency-hiding claim on a
        // twoway-heavy app).
        let one = &r.thread_ablation[0];
        let eight = r.thread_ablation.last().unwrap();
        assert!(
            eight.delivered_ratio > one.delivered_ratio + 0.04,
            "{one:?} vs {eight:?}"
        );
        // End-to-end estimate percentiles are live and ordered, and grow
        // with the link latency.
        assert!(short.est_p50 > 0, "{short:?}");
        assert!(
            short.est_p50 <= short.est_p95 && short.est_p95 <= short.est_p99,
            "{short:?}"
        );
        assert!(
            r.sweep.last().unwrap().est_p50 > short.est_p50,
            "{:?}",
            r.sweep
        );
        // The deadline budget is met at nominal load...
        assert!(short.est_miss_rate < 0.01, "{short:?}");
        // ...while under stress a single context blows it and hardware
        // multithreading recovers it — the latency-hiding claim restated
        // as a deadline metric.
        assert!(
            one.est_miss_rate > eight.est_miss_rate + 0.02,
            "{one:?} vs {eight:?}"
        );
    }
}
