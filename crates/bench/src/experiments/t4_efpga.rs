//! T4 — the eFPGA penalty (claim C8, paper §6.3).
//!
//! "Embedded FPGA's will complement the processors, but only with limited
//! scope (less than 5% of the IC functionality). The 10X cost and power
//! penalty of eFPGA's will restrict their further use."
//!
//! Each kernel is costed three ways — software on a GP-RISC PE, mapped on
//! the eFPGA, hardwired — and the functionality-share analysis checks what
//! fraction of a realistic FPPA's area an eFPGA can justify.

use crate::Table;
use nw_fabric::{FabricSpec, KernelSpec, MappedKernel};
use nw_pe::PeClass;

/// One implementation point of a kernel.
#[derive(Debug, Clone)]
pub struct ImplPoint {
    /// "software" / "efpga" / "hardwired".
    pub style: &'static str,
    /// Items per kilocycle.
    pub throughput: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Energy per item (pJ).
    pub energy_pj: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T4Result {
    /// (kernel name, [software, efpga, hardwired]).
    pub kernels: Vec<(String, [ImplPoint; 3])>,
    /// eFPGA area / hardwired area (the "10X cost").
    pub area_penalty: f64,
    /// eFPGA energy / hardwired energy (the "10X power").
    pub energy_penalty: f64,
    /// Rendered table.
    pub table: String,
}

/// Runs T4 over the three reference kernels.
pub fn run() -> T4Result {
    let fabric = FabricSpec::default();
    let risc = PeClass::GpRisc;
    let mut t = Table::new(&[
        "kernel",
        "impl",
        "items/kcycle",
        "area",
        "energy/item",
        "vs hardwired",
    ]);
    let mut kernels = Vec::new();
    for k in [
        KernelSpec::checksum_offload(),
        KernelSpec::header_classify(),
        KernelSpec::crypto_round(),
    ] {
        let m = MappedKernel::map(&k, &fabric);
        let sw = ImplPoint {
            style: "software",
            throughput: 1000.0 / k.sw_cycles_per_item as f64,
            area_mm2: risc.core_area().0,
            energy_pj: risc.energy_per_cycle().0 * k.sw_cycles_per_item as f64,
        };
        let fp = ImplPoint {
            style: "efpga",
            throughput: 1000.0 / m.ii as f64,
            area_mm2: m.area.0,
            energy_pj: m.energy_per_item.0,
        };
        let hw = ImplPoint {
            style: "hardwired",
            throughput: 1000.0 / k.hw_ii as f64,
            area_mm2: k.hw_area.0,
            energy_pj: k.hw_energy_per_item.0,
        };
        for p in [&sw, &fp, &hw] {
            t.row_owned(vec![
                k.name.clone(),
                p.style.into(),
                format!("{:.1}", p.throughput),
                format!("{:.2}mm²", p.area_mm2),
                format!("{:.0}pJ", p.energy_pj),
                format!(
                    "area x{:.1}, energy x{:.1}",
                    p.area_mm2 / hw.area_mm2,
                    p.energy_pj / hw.energy_pj
                ),
            ]);
        }
        kernels.push((k.name.clone(), [sw, fp, hw]));
    }

    // Functionality share: an FPPA with 16 PEs + memories is ~25 mm² of
    // logic; the default 20k-LUT fabric holds one kernel of ~1.2 mm²
    // hardwired-equivalent at 10x = ~1.2mm² actual... compute directly.
    let fabric_area: f64 = MappedKernel::map(&KernelSpec::header_classify(), &fabric)
        .area
        .0;
    let platform_area = 16.0 * PeClass::GpRisc.core_area().0 + 12.0;
    let share = fabric_area / (platform_area + fabric_area);

    T4Result {
        kernels,
        area_penalty: fabric.area_penalty,
        energy_penalty: fabric.energy_penalty,
        table: format!(
            "T4  Kernel implementation comparison (paper §6.3: eFPGA 10x cost & power penalty)\n{}\neFPGA functionality share of a 16-PE FPPA: {:.1}% (paper: <5%)\n",
            t.render(),
            share * 100.0
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_x_penalty_and_ordering() {
        let r = run();
        assert!((r.area_penalty - 10.0).abs() < 1e-9);
        assert!((r.energy_penalty - 10.0).abs() < 1e-9);
        for (name, [sw, fp, hw]) in &r.kernels {
            // Throughput: hardwired >= efpga >> software.
            assert!(hw.throughput >= fp.throughput, "{name}");
            assert!(fp.throughput > 5.0 * sw.throughput, "{name}");
            // Energy: hardwired << efpga << software (for these kernels).
            assert!(fp.energy_pj > 5.0 * hw.energy_pj, "{name}");
            assert!(sw.energy_pj > fp.energy_pj, "{name}");
        }
        assert!(r.table.contains("<5%"));
    }
}
