//! F4 — NoC topology characterization (claim C4, paper §6.1).
//!
//! "There is still much remaining work to be done to characterize the
//! various topologies — ranging from bus, ring, tree to full-crossbar — and
//! their effectiveness for different application domains." This experiment
//! does that work: saturation throughput and low-load latency per topology
//! under uniform and hotspot traffic.

use crate::Table;
use nw_noc::{run_open_loop, saturation_load, OpenLoopConfig, TopologyKind, TrafficPattern};
use nw_sim::parallel_map;
use nw_types::NodeId;

/// One topology's characterization row.
#[derive(Debug, Clone)]
pub struct TopologyRow {
    /// Topology family.
    pub kind: TopologyKind,
    /// Endpoints simulated.
    pub n: usize,
    /// Mean low-load latency (cycles).
    pub low_load_latency: f64,
    /// Saturation load under uniform traffic (flits/cycle/node).
    pub saturation_uniform: f64,
    /// Saturation load under 30% hotspot traffic.
    pub saturation_hotspot: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct F4Result {
    /// One row per topology.
    pub rows: Vec<TopologyRow>,
    /// Rendered table.
    pub table: String,
}

/// Runs F4 at 16 endpoints (32 when `fast` is false adds a second sweep).
pub fn run(fast: bool) -> F4Result {
    let sizes: &[usize] = if fast { &[16] } else { &[16, 32] };
    let kinds = [
        TopologyKind::SharedBus,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::FatTree,
        TopologyKind::Crossbar,
    ];
    let base = OpenLoopConfig {
        warmup: if fast { 500 } else { 2_000 },
        measure: if fast { 4_000 } else { 12_000 },
        ..OpenLoopConfig::default()
    };
    let tol = if fast { 0.04 } else { 0.02 };

    // Every (size, topology) point simulates an independent NoC, so the
    // sweep fans out over the scoped worker pool; results come back in
    // input order, keeping the table byte-identical to the serial loop.
    let points: Vec<(usize, TopologyKind)> = sizes
        .iter()
        .flat_map(|&n| kinds.iter().map(move |&k| (n, k)))
        .collect();
    let rows = parallel_map(points, |(n, kind)| {
        let mut low = base.clone();
        low.offered_load = 0.02;
        let low_r = run_open_loop(kind, n, &low).expect("valid sweep config");
        let sat_u = saturation_load(kind, n, &base, tol).expect("valid sweep config");
        let mut hot = base.clone();
        hot.pattern = TrafficPattern::Hotspot {
            target: NodeId(0),
            fraction: 0.3,
        };
        let sat_h = saturation_load(kind, n, &hot, tol).expect("valid sweep config");
        TopologyRow {
            kind,
            n,
            low_load_latency: low_r.mean_latency(),
            saturation_uniform: sat_u,
            saturation_hotspot: sat_h,
        }
    });

    let mut t = Table::new(&[
        "topology",
        "n",
        "latency @2% load",
        "saturation (uniform)",
        "saturation (hotspot 30%)",
    ]);
    for row in &rows {
        t.row_owned(vec![
            row.kind.to_string(),
            row.n.to_string(),
            format!("{:.1} cyc", row.low_load_latency),
            format!("{:.3} flits/cyc/node", row.saturation_uniform),
            format!("{:.3}", row.saturation_hotspot),
        ]);
    }
    F4Result {
        rows,
        table: format!(
            "F4  Topology characterization (paper §6.1: bus, ring, tree, crossbar)\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_matches_interconnect_theory() {
        let r = run(true);
        let sat = |k: TopologyKind| {
            r.rows
                .iter()
                .find(|row| row.kind == k && row.n == 16)
                .unwrap()
                .saturation_uniform
        };
        // The bus is the floor; the crossbar the ceiling.
        assert!(sat(TopologyKind::SharedBus) < sat(TopologyKind::Ring));
        assert!(sat(TopologyKind::Ring) <= sat(TopologyKind::Mesh) + 0.02);
        assert!(sat(TopologyKind::Mesh) < sat(TopologyKind::Crossbar));
        assert!(sat(TopologyKind::FatTree) > sat(TopologyKind::SharedBus) * 2.0);
        // Hotspot never helps.
        for row in &r.rows {
            assert!(
                row.saturation_hotspot <= row.saturation_uniform + 0.03,
                "{row:?}"
            );
        }
    }
}
