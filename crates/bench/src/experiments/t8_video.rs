//! T8 — the §7.1 video codec pipeline: frame-sliced, memory-bound.
//!
//! The paper's platform pitch names the video pipeline as the workload the
//! FPPA fabric must carry alongside packet processing. This experiment
//! drives the `nw-apps` codec pipeline (ingest → motion-estimate →
//! transform → entropy-code → pack per slice lane, reference-frame fetches
//! against a shared eDRAM store) across line rates, then runs a MultiFlex
//! design-space sweep over the PE pool and extracts the Pareto front —
//! the "rapid exploration and optimization" loop of §7.2 applied to a
//! memory-bound workload.

use crate::Table;
use nanowall::scenarios::video_rig;
use nw_apps::VideoParams;
use nw_mapping::{evaluate_points, pareto_front, DsePoint};
use nw_sim::parallel_map;

/// One line-rate sweep point.
#[derive(Debug, Clone)]
pub struct VideoPoint {
    /// Offered slice rate in Gb/s.
    pub gbps: f64,
    /// Fraction of generated slices that left as packed bitstream.
    pub delivered_ratio: f64,
    /// Frames per second (lanes slices per frame) at the core clock.
    pub frames_per_sec: f64,
    /// Energy per packed slice in picojoules.
    pub energy_per_slice_pj: f64,
    /// Frame-store accesses per delivered slice.
    pub mem_accesses_per_slice: f64,
    /// Mean PE utilization.
    pub mean_util: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T8Result {
    /// Line-rate sweep at the default 4-lane pipeline.
    pub sweep: Vec<VideoPoint>,
    /// PE-pool design points evaluated by the DSE pass.
    pub dse: Vec<DsePoint>,
    /// Indices of the Pareto-efficient design points.
    pub front: Vec<usize>,
    /// Rendered table.
    pub table: String,
}

fn measure(params: &VideoParams, n_pes: usize, gbps: f64, cycles: u64) -> (VideoPoint, u64) {
    let mut rig = video_rig(params, n_pes, 4, 4, gbps);
    let report = rig.run(cycles);
    let io = &report.io[0];
    let delivered_ratio = if io.generated == 0 {
        0.0
    } else {
        io.transmitted as f64 / io.generated as f64
    };
    let point = VideoPoint {
        gbps,
        delivered_ratio,
        frames_per_sec: report.egress_pps(0) / params.lanes as f64,
        energy_per_slice_pj: report.energy_per_transmitted(0).map_or(0.0, |e| e.0),
        mem_accesses_per_slice: if io.transmitted == 0 {
            0.0
        } else {
            report.mem_accesses as f64 / io.transmitted as f64
        },
        mean_util: report.mean_pe_utilization(),
    };
    (point, io.transmitted)
}

/// Runs T8: line-rate sweep, then the PE-pool DSE at the knee rate.
pub fn run(fast: bool) -> T8Result {
    let params = VideoParams::default();
    let cycles = if fast { 40_000 } else { 120_000 };
    let n_pes = 2 * params.lanes + 1;

    // Each sweep point simulates its own platform: fan out over the scoped
    // worker pool (results return in input order — same table, faster).
    let sweep: Vec<VideoPoint> = parallel_map(vec![2.0, 4.0, 6.0, 8.0], |gbps| {
        measure(&params, n_pes, gbps, cycles).0
    });
    let mut t = Table::new(&[
        "line rate",
        "delivered",
        "frames/s",
        "pJ/slice",
        "mem/slice",
        "PE util",
    ]);
    for p in &sweep {
        t.row_owned(vec![
            format!("{:.1} Gb/s", p.gbps),
            format!("{:.0}%", p.delivered_ratio * 100.0),
            format!("{:.0}", p.frames_per_sec),
            format!("{:.0}", p.energy_per_slice_pj),
            format!("{:.1}", p.mem_accesses_per_slice),
            format!("{:.0}%", p.mean_util * 100.0),
        ]);
    }

    // DSE over the PE pool at a demanding rate: how few PEs still hold the
    // line? Quality is inverse delivered throughput, resource is the pool.
    // Pool sizes are independent design points — the parallel sweep runner
    // evaluates them concurrently.
    let dse_cycles = cycles / 2;
    let dse: Vec<DsePoint> = evaluate_points(vec![3usize, 5, 7, 9, 11], |pool| {
        let (_, transmitted) = measure(&params, pool, 6.0, dse_cycles);
        let quality = 1.0 / (transmitted.max(1) as f64);
        DsePoint::new(format!("video-{pool}pe"), pool as f64, quality)
    });
    let front = pareto_front(&dse);
    let mut ft = Table::new(&["design point", "PEs", "1/slices", "on front"]);
    for (i, d) in dse.iter().enumerate() {
        ft.row_owned(vec![
            d.label.clone(),
            format!("{:.0}", d.resource),
            format!("{:.2e}", d.quality),
            if front.contains(&i) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }

    T8Result {
        sweep,
        dse,
        front,
        table: format!(
            "T8  Video codec pipeline: {} slice lanes, memory-bound motion search (paper §7.1)\n{}\nPE-pool DSE at 6 Gb/s (MultiFlex greedy placement, Pareto front starred):\n{}",
            params.lanes,
            t.render(),
            ft.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_pipeline_is_nondegenerate_and_memory_bound() {
        let r = run(true);
        // A sustainable rate delivers most slices with nonzero energy.
        let easy = &r.sweep[0];
        assert!(easy.delivered_ratio > 0.8, "{easy:?}");
        assert!(easy.energy_per_slice_pj > 0.0, "{easy:?}");
        // Every delivered slice hit the frame store at least ref_fetches
        // times (the memory-bound signature).
        assert!(easy.mem_accesses_per_slice >= 3.9, "{easy:?}");
        // Utilization grows with offered load.
        assert!(
            r.sweep.last().unwrap().mean_util > easy.mean_util,
            "{:?}",
            r.sweep
        );
        // The DSE front is non-empty and sorted by resource.
        assert!(!r.front.is_empty());
        for w in r.front.windows(2) {
            assert!(r.dse[w[0]].resource <= r.dse[w[1]].resource);
        }
    }
}
