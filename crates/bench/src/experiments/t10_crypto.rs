//! T10 — the crypto offload rig: hwip-bound bulk transfer.
//!
//! §6.4's standardized hardwired IP behind the NoC, measured: bulk
//! payloads stream block-by-block through a shared AES engine and hash
//! engine, so throughput is set by engine initiation intervals and the
//! per-block NoC round trips — the PEs just orchestrate. The line-rate
//! sweep finds the offload ceiling; the block-size ablation shows the
//! trade between per-call overhead (small blocks → more round trips) and
//! engine occupancy.

use crate::Table;
use nanowall::scenarios::crypto_rig;
use nw_apps::CryptoParams;
use nw_sim::parallel_map;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct CryptoPoint {
    /// Offered bulk rate in Gb/s.
    pub gbps: f64,
    /// Cipher/auth block size in bytes.
    pub block_bytes: u64,
    /// Fraction of generated payloads authenticated and returned.
    pub delivered_ratio: f64,
    /// Achieved egress rate in Gb/s.
    pub egress_gbps: f64,
    /// Engine calls per delivered payload (cipher pass + auth pass).
    pub engine_calls_per_payload: f64,
    /// Energy per delivered payload in picojoules.
    pub energy_per_payload_pj: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T10Result {
    /// Line-rate sweep at the default 128 B block.
    pub sweep: Vec<CryptoPoint>,
    /// Block-size ablation at the knee rate.
    pub block_ablation: Vec<CryptoPoint>,
    /// Rendered table.
    pub table: String,
}

fn measure(gbps: f64, block_bytes: u64, cycles: u64) -> CryptoPoint {
    let params = CryptoParams {
        block_bytes,
        ..CryptoParams::default()
    };
    let mut rig = crypto_rig(&params, 4, 8, 4, gbps);
    let report = rig.run(cycles);
    let io = &report.io[0];
    let delivered_ratio = if io.generated == 0 {
        0.0
    } else {
        io.transmitted as f64 / io.generated as f64
    };
    CryptoPoint {
        gbps,
        block_bytes,
        delivered_ratio,
        egress_gbps: report.egress_pps(0) * params.payload_bytes as f64 * 8.0 / 1e9,
        engine_calls_per_payload: if io.transmitted == 0 {
            0.0
        } else {
            report.hwip_served as f64 / io.transmitted as f64
        },
        energy_per_payload_pj: report.energy_per_transmitted(0).map_or(0.0, |e| e.0),
    }
}

/// Runs T10: line-rate sweep, then the block-size ablation.
pub fn run(fast: bool) -> T10Result {
    let cycles = if fast { 40_000 } else { 120_000 };

    // Sweep points build independent platforms — run them on the parallel
    // sweep pool (input-order results keep the tables byte-identical).
    let sweep: Vec<CryptoPoint> =
        parallel_map(vec![1.0, 2.0, 4.0, 6.0], |gbps| measure(gbps, 128, cycles));
    let mut t = Table::new(&[
        "line rate",
        "block",
        "delivered",
        "egress",
        "engine calls/payload",
        "pJ/payload",
    ]);
    for p in &sweep {
        t.row_owned(vec![
            format!("{:.1} Gb/s", p.gbps),
            format!("{} B", p.block_bytes),
            format!("{:.0}%", p.delivered_ratio * 100.0),
            format!("{:.2} Gb/s", p.egress_gbps),
            format!("{:.1}", p.engine_calls_per_payload),
            format!("{:.0}", p.energy_per_payload_pj),
        ]);
    }

    let block_ablation: Vec<CryptoPoint> = parallel_map(vec![64u64, 128, 256, 512], |block| {
        measure(4.0, block, cycles)
    });
    let mut at = Table::new(&["block", "delivered", "egress", "engine calls/payload"]);
    for p in &block_ablation {
        at.row_owned(vec![
            format!("{} B", p.block_bytes),
            format!("{:.0}%", p.delivered_ratio * 100.0),
            format!("{:.2} Gb/s", p.egress_gbps),
            format!("{:.1}", p.engine_calls_per_payload),
        ]);
    }

    T10Result {
        sweep,
        block_ablation,
        table: format!(
            "T10  Crypto offload: bulk payloads through shared AES/hash engines (paper §6.4)\n{}\nBlock-size ablation at 4 Gb/s:\n{}",
            t.render(),
            at.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_is_hwip_bound_and_nondegenerate() {
        let r = run(true);
        let easy = &r.sweep[0];
        assert!(easy.delivered_ratio > 0.8, "{easy:?}");
        assert!(easy.energy_per_payload_pj > 0.0, "{easy:?}");
        // Both passes run: ≥ 2 × blocks_per_payload engine calls (8 + 8
        // at 1024 B payloads with 128 B blocks).
        assert!(easy.engine_calls_per_payload > 14.0, "{easy:?}");
        // Bigger blocks mean fewer calls per payload.
        let small = &r.block_ablation[0];
        let big = r.block_ablation.last().unwrap();
        assert!(
            small.engine_calls_per_payload > big.engine_calls_per_payload,
            "{small:?} vs {big:?}"
        );
        // Throughput rises with offered load (within noise).
        assert!(
            r.sweep.last().unwrap().egress_gbps > easy.egress_gbps,
            "{:?}",
            r.sweep
        );
    }
}
