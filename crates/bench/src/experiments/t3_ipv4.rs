//! T3 — IPv4 fast path at 10 Gb/s worst case (claim C7, paper §7.2).
//!
//! "We achieved near 100% utilization of the embedded processors and
//! threads, even in presence of NoC interconnect latencies of over 100
//! cycles, while processing worst-case traffic at a 10 Gbit line rate."
//!
//! The sweep grows the worker-PE pool until the platform holds the line.
//! The per-hop link latency is set so that the classify→lookup round trip
//! comfortably exceeds 100 cycles, and hardware threads are what keep the
//! workers busy across it.

use crate::Table;
use nanowall::scenarios::{ipv4_rig, run_ipv4};
use nw_noc::TopologyKind;
use nw_sim::parallel_map;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Ipv4Point {
    /// Worker-chain replicas (worker PEs; +1 lookup ASIP).
    pub replicas: usize,
    /// Hardware threads per PE.
    pub threads: usize,
    /// Fraction of generated packets forwarded.
    pub forwarded_ratio: f64,
    /// Achieved egress rate in Gb/s.
    pub egress_gbps: f64,
    /// Mean worker-PE utilization.
    pub worker_utilization: f64,
    /// Mean NoC packet latency in cycles.
    pub noc_latency: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T3Result {
    /// Sweep over replica counts at 8 threads.
    pub sweep: Vec<Ipv4Point>,
    /// Thread ablation at the line-rate replica count.
    pub thread_ablation: Vec<Ipv4Point>,
    /// Rendered table.
    pub table: String,
}

fn measure(replicas: usize, threads: usize, link_latency: u64, cycles: u64) -> Ipv4Point {
    let mut rig = ipv4_rig(replicas, threads, TopologyKind::Mesh, link_latency, 10.0);
    let report = run_ipv4(&mut rig, cycles);
    let io = &report.io[0];
    let forwarded_ratio = if io.generated == 0 {
        0.0
    } else {
        io.transmitted as f64 / io.generated as f64
    };
    let worker_utilization =
        report.pe_utilization[..replicas].iter().sum::<f64>() / replicas as f64;
    Ipv4Point {
        replicas,
        threads,
        forwarded_ratio,
        egress_gbps: report.egress_pps(0) * 40.0 * 8.0 / 1e9,
        worker_utilization,
        noc_latency: report.noc.latency.mean(),
    }
}

/// Runs T3: replica sweep at 8 threads, then a thread ablation at the
/// line-rate point.
pub fn run(fast: bool) -> T3Result {
    // Per-hop latency 25 on a mesh: multi-hop round trips well over 100 cyc.
    let link_latency = 25;
    let cycles = if fast { 40_000 } else { 150_000 };
    let replica_sweep: &[usize] = if fast {
        &[2, 4, 8, 12, 16]
    } else {
        &[2, 4, 8, 12, 16, 20]
    };

    let mut t = Table::new(&[
        "worker PEs",
        "threads",
        "forwarded",
        "egress",
        "worker util",
        "NoC latency",
    ]);
    // Every sweep point builds its own platform, so the points are
    // embarrassingly parallel; `parallel_map` keeps input order, so the
    // rendered table is byte-identical to the serial loop.
    let sweep: Vec<Ipv4Point> = parallel_map(replica_sweep.to_vec(), |r| {
        measure(r, 8, link_latency, cycles)
    });
    for p in &sweep {
        t.row_owned(vec![
            p.replicas.to_string(),
            p.threads.to_string(),
            format!("{:.0}%", p.forwarded_ratio * 100.0),
            format!("{:.2} Gb/s", p.egress_gbps),
            format!("{:.0}%", p.worker_utilization * 100.0),
            format!("{:.0} cyc", p.noc_latency),
        ]);
    }

    let line_rate_replicas = sweep
        .iter()
        .find(|p| p.forwarded_ratio > 0.95)
        .map(|p| p.replicas)
        .unwrap_or(16);
    let mut at = Table::new(&["threads", "forwarded", "egress", "worker util"]);
    let thread_ablation: Vec<Ipv4Point> = parallel_map(vec![1usize, 2, 4, 8], |threads| {
        measure(line_rate_replicas, threads, link_latency, cycles)
    });
    for p in &thread_ablation {
        at.row_owned(vec![
            p.threads.to_string(),
            format!("{:.0}%", p.forwarded_ratio * 100.0),
            format!("{:.2} Gb/s", p.egress_gbps),
            format!("{:.0}%", p.worker_utilization * 100.0),
        ]);
    }

    T3Result {
        sweep,
        thread_ablation,
        table: format!(
            "T3  IPv4 fast path, 40B worst case at 10 Gb/s, >100-cycle NoC round trips (paper §7.2)\n{}\nThread ablation at {line_rate_replicas} worker PEs:\n{}",
            t.render(),
            at.render()
        ),
    }
}

/// T3 under `--warm-fork`: runs the standard cold protocol, because there
/// is nothing a shared snapshot could honestly buy here — both sweep axes
/// (worker-PE replicas, hardware threads per PE) are *structural*, so every
/// grid point builds a differently-shaped platform and no warmed state can
/// be shared across points. The title says so rather than pretending.
pub fn run_warm_fork(fast: bool) -> T3Result {
    let mut r = run(fast);
    r.table = r.table.replacen(
        "T3  ",
        "T3  [warm-fork requested: sweep axes are structural, cold protocol used]  ",
        1,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_fork_falls_back_to_the_cold_protocol_and_says_so() {
        let warm = run_warm_fork(true);
        assert!(warm.table.contains("structural"), "{}", warm.table);
        assert_eq!(warm.sweep.len(), run(true).sweep.len());
    }

    #[test]
    fn line_rate_reached_with_enough_workers() {
        let r = run(true);
        // Undersized pools drop below line rate with saturated workers...
        let small = &r.sweep[0];
        assert!(small.forwarded_ratio < 0.9, "{small:?}");
        assert!(small.worker_utilization > 0.85, "{small:?}");
        // ...and the big pool holds (near) line rate.
        let big = r.sweep.last().unwrap();
        assert!(big.forwarded_ratio > 0.9, "{big:?}");
        assert!(big.egress_gbps > 8.0, "{big:?}");
        // Throughput is monotone in pool size (within noise).
        for w in r.sweep.windows(2) {
            assert!(w[1].egress_gbps >= w[0].egress_gbps - 0.3);
        }
        // Thread ablation: single-thread workers cannot hold the rate the
        // multithreaded ones do (claim C6/C7 coupling).
        let one = &r.thread_ablation[0];
        let eight = r.thread_ablation.last().unwrap();
        assert!(
            eight.forwarded_ratio > one.forwarded_ratio + 0.15,
            "{one:?} vs {eight:?}"
        );
    }
}
