//! F7 — design productivity beyond 130 nm (paper §2).
//!
//! "It could be argued that for 90nm technologies and beyond, the design
//! productivity (transistors designed per man-year) will actually decline
//! due to the new deep submicron effects" — the paper's core argument for
//! the platform methodology. The table compares the evolutionary curve
//! (tool gains minus a compounding deep-submicron closure tax) against the
//! platform curve (tax paid once per platform).

use crate::Table;
use nw_econ::{evolutionary_peak, evolutionary_productivity, platform_productivity};
use nw_types::TechNode;

/// Structured result.
#[derive(Debug)]
pub struct F7Result {
    /// (node, evolutionary Mtr/man-yr, platform Mtr/man-yr).
    pub rows: Vec<(TechNode, f64, f64)>,
    /// Node where the evolutionary curve peaks.
    pub peak: TechNode,
    /// Rendered table.
    pub table: String,
}

/// Runs F7 across the ladder.
pub fn run() -> F7Result {
    let mut t = Table::new(&[
        "node",
        "evolutionary (Mtr/man-yr)",
        "platform (Mtr/man-yr)",
        "platform advantage",
    ]);
    let mut rows = Vec::new();
    for node in TechNode::LADDER {
        let evo = evolutionary_productivity(node) / 1e6;
        let plat = platform_productivity(node) / 1e6;
        rows.push((node, evo, plat));
        t.row_owned(vec![
            node.to_string(),
            format!("{evo:.2}"),
            format!("{plat:.2}"),
            format!("x{:.2}", plat / evo),
        ]);
    }
    let peak = evolutionary_peak();
    F7Result {
        rows,
        peak,
        table: format!(
            "F7  Design productivity vs node (paper §2: decline at 90nm and beyond)\n{}Evolutionary methodology peaks at {peak}\n",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decline_starts_where_the_paper_says() {
        let r = run();
        assert_eq!(r.peak, TechNode::N130);
        // Monotone decline after the peak on the evolutionary curve.
        let after_peak: Vec<f64> = r
            .rows
            .iter()
            .filter(|(n, _, _)| n.ladder_position() >= TechNode::N130.ladder_position())
            .map(|&(_, e, _)| e)
            .collect();
        for w in after_peak.windows(2) {
            assert!(w[1] < w[0]);
        }
        // The platform curve never declines.
        for w in r.rows.windows(2) {
            assert!(w[1].2 > w[0].2);
        }
    }
}
