//! F1 — Figure 1: the processor-specialization continuum.
//!
//! Time-to-market (development effort) versus product differentiation
//! (throughput and energy per task on the matched kernel), from GP-RISC
//! through configurable processors, DSP and ASIP to eFPGA and hardwired
//! logic.

use crate::Table;
use nw_fabric::{FabricSpec, KernelSpec, MappedKernel};
use nw_pe::{KernelDomain, PeClass};

/// One point on the Figure 1 continuum.
#[derive(Debug, Clone)]
pub struct ContinuumPoint {
    /// Implementation name.
    pub name: String,
    /// Development-effort multiplier vs GP-RISC software.
    pub dev_effort: f64,
    /// Items per kilocycle on the matched kernel.
    pub throughput: f64,
    /// Energy per item in picojoules.
    pub energy_per_item: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct F1Result {
    /// The continuum, most flexible first.
    pub points: Vec<ContinuumPoint>,
    /// Rendered table.
    pub table: String,
}

/// Runs F1 on the header-classification kernel.
pub fn run() -> F1Result {
    let kernel = KernelSpec::header_classify();
    let domain = KernelDomain::PacketHeader;

    let mut points = Vec::new();
    // Software points: one item takes sw_cycles / speedup.
    for class in [
        PeClass::GpRisc,
        PeClass::Configurable { tuned_for: domain },
        PeClass::Dsp,
        PeClass::Asip { domain },
    ] {
        let cycles = kernel.sw_cycles_per_item as f64 / class.speedup(domain);
        points.push(ContinuumPoint {
            name: class.to_string(),
            dev_effort: class.dev_effort(),
            throughput: 1000.0 / cycles,
            energy_per_item: class.energy_per_cycle().0 * cycles,
        });
    }
    // eFPGA point.
    let mapped = MappedKernel::map(&kernel, &FabricSpec::default());
    points.push(ContinuumPoint {
        name: "efpga".into(),
        dev_effort: 6.0, // RTL + P&R flow
        throughput: 1000.0 / mapped.ii as f64,
        energy_per_item: mapped.energy_per_item.0,
    });
    // Hardwired point.
    points.push(ContinuumPoint {
        name: "hardwired".into(),
        dev_effort: 10.0, // full ASIC design + verification
        throughput: 1000.0 / kernel.hw_ii as f64,
        energy_per_item: kernel.hw_energy_per_item.0,
    });

    let mut t = Table::new(&[
        "implementation",
        "dev effort",
        "items/kcycle",
        "energy/item",
    ]);
    for p in &points {
        t.row_owned(vec![
            p.name.clone(),
            format!("{:.1}x", p.dev_effort),
            format!("{:.1}", p.throughput),
            format!("{:.0}pJ", p.energy_per_item),
        ]);
    }
    F1Result {
        points,
        table: format!(
            "F1  Figure 1 continuum on the header-classify kernel: time-to-market vs power/performance\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_and_differentiation_both_rise() {
        let r = run();
        assert_eq!(r.points.len(), 6);
        for w in r.points.windows(2) {
            assert!(
                w[1].dev_effort > w[0].dev_effort,
                "{} vs {}",
                w[0].name,
                w[1].name
            );
        }
        // Hardwired is the throughput and energy champion; GP-RISC the worst.
        let first = &r.points[0];
        let last = r.points.last().unwrap();
        assert!(last.throughput > 50.0 * first.throughput);
        assert!(last.energy_per_item < first.energy_per_item / 50.0);
        // The eFPGA sits strictly between ASIP software and hardwired on
        // energy (its 10x penalty, claim C8).
        let efpga = r.points.iter().find(|p| p.name == "efpga").unwrap();
        assert!(efpga.energy_per_item > last.energy_per_item * 5.0);
    }
}
