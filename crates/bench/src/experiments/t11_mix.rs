//! T11 — mixed workloads on one fabric: the interference experiment.
//!
//! The paper's platform thesis is that heterogeneous applications share a
//! single FPPA under quantified budgets — not merely that each runs well
//! alone. This experiment installs the video codec and an IPv4 fast path
//! *together* (one application graph, one mapper run, one NoC, one frame
//! store) and sweeps both offered loads. The observable is per-workload
//! end-to-end latency: as the video half saturates its lanes, the packet
//! half's route-lookup round trips stretch and start blowing their
//! deadline budget, even while packet throughput still looks healthy —
//! exactly the interference that throughput-only reporting misses.
//!
//! A second section restates the modem rig's deadline behaviour with the
//! same telemetry: the channel-estimate p50/p95/p99 and the deadline-miss
//! rate with and without hardware multithreading.

use super::t9_modem::{self, ModemPoint};
use crate::Table;
use nanowall::scenarios::{mix_demo_params, mix_pe_pool, mix_rig_detailed, MixRig};
use nanowall::FppaPlatform;
use nw_apps::MixParams;
use nw_sim::{parallel_map, LatencyHistogram};
use nw_types::ObjectId;

/// One point of the interference grid.
#[derive(Debug, Clone)]
pub struct MixPoint {
    /// Offered video line rate (channel 0).
    pub video_gbps: f64,
    /// Offered IPv4 line rate (channel 1).
    pub ipv4_gbps: f64,
    /// Fraction of generated slices packed and transmitted.
    pub video_delivered: f64,
    /// Fraction of generated packets rewritten and transmitted.
    pub ipv4_delivered: f64,
    /// Video-workload end-to-end latency percentiles in cycles, merged
    /// across every video object with recorded round trips (frame-store
    /// fetches and rate-control queries): p50, p95, p99.
    pub video_p50: u64,
    /// 95th percentile (see `video_p50`).
    pub video_p95: u64,
    /// 99th percentile (see `video_p50`).
    pub video_p99: u64,
    /// Route-lookup round-trip percentiles in cycles: p50, p95, p99.
    pub lookup_p50: u64,
    /// 95th percentile (see `lookup_p50`).
    pub lookup_p95: u64,
    /// 99th percentile (see `lookup_p50`).
    pub lookup_p99: u64,
    /// The route-lookup deadline budget in cycles.
    pub lookup_deadline: u64,
    /// Raw count of lookup round trips that blew the budget — the same
    /// counter the trace layer emits as [`nanowall::TraceEvent::DeadlineMiss`]
    /// instants, so a Perfetto capture of a grid point and this table agree
    /// event for event.
    pub lookup_misses: u64,
    /// Fraction of lookup round trips that blew the budget.
    pub lookup_miss_rate: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T11Result {
    /// The video-rate × ipv4-rate interference grid.
    pub grid: Vec<MixPoint>,
    /// The modem deadline restatement (thread ablation under stress),
    /// measured by T9's own rig harness ([`t9_modem`]).
    pub modem: Vec<ModemPoint>,
    /// Rendered table.
    pub table: String,
}

/// Merges the latency histograms of the given workload stages into one
/// per-workload distribution (stages without samples contribute nothing).
/// Stage indices resolve to installed objects through the rig's own
/// stage → object directory.
fn merged_latency(mix: &MixRig, stages: &[usize]) -> LatencyHistogram {
    merged_latency_on(&mix.rig.platform, &mix.objects, stages)
}

/// [`merged_latency`] against any platform sharing the rig's object layout
/// (a forked replica keeps the parent's stage → object directory).
fn merged_latency_on(
    platform: &FppaPlatform,
    objects: &[ObjectId],
    stages: &[usize],
) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in stages {
        if let Some(obj) = platform.object_latency(objects[s]) {
            h.merge(obj);
        }
    }
    h
}

fn delivered(io: &nanowall::PlatformReport, ch: usize) -> f64 {
    let r = &io.io[ch];
    if r.generated == 0 {
        0.0
    } else {
        r.transmitted as f64 / r.generated as f64
    }
}

fn measure(params: &MixParams, video_gbps: f64, ipv4_gbps: f64, cycles: u64) -> MixPoint {
    let mut mix = mix_rig_detailed(params, mix_pe_pool(params), 4, 4, video_gbps, ipv4_gbps);
    let report = mix.rig.run(cycles);
    let video = merged_latency(&mix, &mix.workload.video_stages);
    let lookup = report
        .object_latency(mix.objects[mix.workload.route_lookup].0)
        .expect("lookup latency is tracked");
    MixPoint {
        video_gbps,
        ipv4_gbps,
        video_delivered: delivered(&report, 0),
        ipv4_delivered: delivered(&report, 1),
        video_p50: video.p50().0,
        video_p95: video.p95().0,
        video_p99: video.p99().0,
        lookup_p50: lookup.p50.0,
        lookup_p95: lookup.p95.0,
        lookup_p99: lookup.p99.0,
        lookup_deadline: lookup.deadline.expect("mix rig sets the budget"),
        lookup_misses: lookup.deadline_misses,
        lookup_miss_rate: lookup.miss_rate(),
    }
}

/// The grid's (video, ipv4) rate axes.
///
/// The ipv4 axis stays within what the packet chains sustain alone
/// (40-byte worst-case packets), so rising tail latency and deadline
/// misses measure *interference* from the video half, not plain
/// single-workload overload.
fn grid_points(fast: bool) -> Vec<(f64, f64)> {
    let video_rates: &[f64] = if fast { &[1.0, 6.0] } else { &[1.0, 4.0, 8.0] };
    let ipv4_rates: &[f64] = if fast { &[0.3, 1.5] } else { &[0.5, 1.5, 2.5] };
    video_rates
        .iter()
        .flat_map(|&v| ipv4_rates.iter().map(move |&i| (v, i)))
        .collect()
}

/// The interference grid alone (no modem section), under either protocol —
/// also the unit `expt bench` wall-clocks for the warm-fork comparison.
///
/// Cold: every grid point simulates an independent platform from cycle 0,
/// so the whole surface fans out over the worker pool; order is preserved,
/// keeping the table byte-identical to a serial run.
///
/// Warm-fork: one platform is built at the calmest corner's rates, run to
/// the halfway point, and snapshotted; every grid point then forks from
/// that snapshot, retunes the two I/O channel rates, and measures the
/// second half only. Structure (placement, lanes) is pinned at the warmup
/// corner's, and the telemetry covers warmup + measurement — a different,
/// labeled protocol that pays the warmup cost once instead of per point.
pub fn bench_grid(fast: bool, warm_fork: bool) -> Vec<MixPoint> {
    let cycles = if fast { 40_000 } else { 120_000 };
    let params = mix_demo_params(fast);
    let points = grid_points(fast);
    if !warm_fork {
        return parallel_map(points, |(v, i)| measure(&params, v, i, cycles));
    }

    let warm = cycles / 2;
    let window = cycles - warm;
    let (v0, i0) = points[0];
    let mut parent = mix_rig_detailed(&params, mix_pe_pool(&params), 4, 4, v0, i0);
    let _ = parent.rig.run(warm);
    let snap = parent.rig.platform.snapshot();
    let workload = &parent.workload;
    let objects = &parent.objects;
    let forks: Vec<(f64, f64, FppaPlatform)> = points
        .iter()
        .map(|&(v, i)| {
            let mut p = FppaPlatform::from_snapshot(&snap);
            p.set_io_rate(0, nw_types::BitsPerSec::from_gbps(v));
            p.set_io_rate(1, nw_types::BitsPerSec::from_gbps(i));
            (v, i, p)
        })
        .collect();
    parallel_map(forks, |(video_gbps, ipv4_gbps, mut p)| {
        let report = p.run(window);
        let video = merged_latency_on(&p, objects, &workload.video_stages);
        let lookup = report
            .object_latency(objects[workload.route_lookup].0)
            .expect("lookup latency is tracked");
        MixPoint {
            video_gbps,
            ipv4_gbps,
            video_delivered: delivered(&report, 0),
            ipv4_delivered: delivered(&report, 1),
            video_p50: video.p50().0,
            video_p95: video.p95().0,
            video_p99: video.p99().0,
            lookup_p50: lookup.p50.0,
            lookup_p95: lookup.p95.0,
            lookup_p99: lookup.p99.0,
            lookup_deadline: lookup.deadline.expect("mix rig sets the budget"),
            lookup_misses: lookup.deadline_misses,
            lookup_miss_rate: lookup.miss_rate(),
        }
    })
}

/// Runs T11: the interference grid, then the modem deadline restatement.
pub fn run(fast: bool) -> T11Result {
    run_protocol(fast, false)
}

/// T11 under the warm-fork protocol (see [`bench_grid`]): the interference
/// grid reuses one warmed snapshot, the modem section is unchanged (its
/// thread-count axis is structural, so no warmup can be shared).
pub fn run_warm_fork(fast: bool) -> T11Result {
    run_protocol(fast, true)
}

fn run_protocol(fast: bool, warm_fork: bool) -> T11Result {
    let cycles = if fast { 40_000 } else { 120_000 };
    let grid = bench_grid(fast, warm_fork);

    let mut t = Table::new(&[
        "video Gb/s",
        "ipv4 Gb/s",
        "video del",
        "ipv4 del",
        "video p50/p95/p99",
        "lookup p50/p95/p99",
        "deadline",
        "misses",
        "miss",
    ]);
    for p in &grid {
        t.row_owned(vec![
            format!("{:.1}", p.video_gbps),
            format!("{:.1}", p.ipv4_gbps),
            format!("{:.0}%", p.video_delivered * 100.0),
            format!("{:.0}%", p.ipv4_delivered * 100.0),
            format!("{}/{}/{} cyc", p.video_p50, p.video_p95, p.video_p99),
            format!("{}/{}/{} cyc", p.lookup_p50, p.lookup_p95, p.lookup_p99),
            format!("{} cyc", p.lookup_deadline),
            p.lookup_misses.to_string(),
            format!("{:.1}%", p.lookup_miss_rate * 100.0),
        ]);
    }

    // A deliberate restatement of T9's stress ablation, measured by T9's
    // own harness so the two tables cannot drift: T11 is the latency
    // experiment, and its output must answer "does the modem meet its
    // deadline?" on its own.
    let modem: Vec<ModemPoint> = parallel_map(vec![1usize, 2, 4], |threads| {
        t9_modem::measure(50, threads, 1800.0, cycles)
    });
    let mut mt = Table::new(&["threads", "est p50/p95/p99", "miss"]);
    for p in &modem {
        mt.row_owned(vec![
            p.threads.to_string(),
            format!("{}/{}/{} cyc", p.est_p50, p.est_p95, p.est_p99),
            format!("{:.1}%", p.est_miss_rate * 100.0),
        ]);
    }

    let protocol = if warm_fork {
        " [warm-fork: one warmed snapshot, rates retuned per point, second half measured]"
    } else {
        ""
    };
    T11Result {
        table: format!(
            "T11  Mixed workloads on one fabric: video codec + IPv4 fast path, per-workload end-to-end latency{protocol}\n{}\nModem deadline under stress (50-cycle links, 1800 Mb/s): channel-estimate round trips vs budget\n{}",
            t.render(),
            mt.render()
        ),
        grid,
        modem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_shows_up_in_packet_latency() {
        let r = run(true);
        assert_eq!(r.grid.len(), 4);
        // Every point measures both workloads.
        for p in &r.grid {
            assert!(p.video_p50 > 0, "{p:?}");
            assert!(p.lookup_p50 > 0, "{p:?}");
            assert!(
                p.lookup_p50 <= p.lookup_p95 && p.lookup_p95 <= p.lookup_p99,
                "{p:?}"
            );
        }
        // The gentle corner delivers both workloads and meets the budget.
        let calm = &r.grid[0];
        assert!(calm.video_delivered > 0.7, "{calm:?}");
        assert!(calm.ipv4_delivered > 0.7, "{calm:?}");
        assert!(calm.lookup_miss_rate < 0.05, "{calm:?}");
        // Cranking the video load stretches the packet tail: the hottest
        // corner's lookup p99 dominates the calm corner's.
        let hot = r.grid.last().unwrap();
        assert!(hot.lookup_p99 >= calm.lookup_p99, "{calm:?} vs {hot:?}");
        // The modem section reports live percentiles and recovers its
        // deadline with threads.
        assert_eq!(r.modem.len(), 3);
        let one = &r.modem[0];
        let four = r.modem.last().unwrap();
        assert!(one.est_p50 > 0, "{one:?}");
        assert!(
            one.est_miss_rate >= four.est_miss_rate,
            "{one:?} vs {four:?}"
        );
    }

    /// The warm-fork protocol measures the same interference physics on a
    /// shared warmed snapshot: every point still records both workloads,
    /// the retuned rates actually take (points diverge), and the whole
    /// grid is deterministic across reruns.
    #[test]
    fn warm_fork_grid_is_live_retuned_and_deterministic() {
        let a = run_warm_fork(true);
        assert_eq!(a.grid.len(), 4);
        for p in &a.grid {
            assert!(p.video_p50 > 0, "{p:?}");
            assert!(p.lookup_p50 > 0, "{p:?}");
            assert!(p.video_delivered > 0.0, "{p:?}");
        }
        // Retuning is real: the hot corner's offered video load dwarfs the
        // calm corner's generated traffic even though both share a warmup.
        let calm = &a.grid[0];
        let hot = a.grid.last().unwrap();
        assert!(
            hot.lookup_p99 >= calm.lookup_p99,
            "video pressure must stretch the packet tail: {calm:?} vs {hot:?}"
        );
        assert!(a.table.contains("warm-fork"), "{}", a.table);

        let b = run_warm_fork(true);
        assert_eq!(a.table, b.table, "warm-fork grid must be reproducible");
    }

    /// The trace layer and the interference table count the same misses:
    /// rerun the grid's hottest corner with a trace sink installed and
    /// check the `DeadlineMiss` instants attributed to the route-lookup
    /// object match the report's `deadline_misses` exactly.
    #[test]
    fn trace_deadline_misses_agree_with_the_grid() {
        use nanowall::{RingBufferSink, TraceEvent};

        let cycles = 40_000;
        let params = mix_demo_params(true);
        let point = measure(&params, 8.0, 2.5, cycles);

        let mut mix = mix_rig_detailed(&params, mix_pe_pool(&params), 4, 4, 8.0, 2.5);
        mix.rig
            .platform
            .set_trace_sink(Box::new(RingBufferSink::new(1 << 18)));
        mix.rig.run(cycles);
        let mut sink = mix.rig.platform.take_trace_sink().expect("sink installed");
        let ring = sink
            .as_any_mut()
            .downcast_mut::<RingBufferSink>()
            .expect("ring sink");
        assert_eq!(ring.dropped(), 0, "ring must hold the whole capture");
        let lookup_obj = mix.objects[mix.workload.route_lookup].0;
        let traced_misses = ring
            .drain()
            .iter()
            .filter(
                |e| matches!(e, TraceEvent::DeadlineMiss { object, .. } if *object == lookup_obj),
            )
            .count() as u64;
        assert_eq!(
            traced_misses, point.lookup_misses,
            "trace and table disagree on lookup deadline misses"
        );
        assert!(traced_misses > 0, "the hot corner must miss its budget");
    }
}
