//! F6 — hardware multithreading hides NoC latency (claim C6, paper §6.2).
//!
//! "Multithreading lets the processor execute other streams while another
//! thread is blocked on a high latency operation." The matrix below sweeps
//! one-way link latency against hardware thread count; the ablation
//! compares scheduling policies and swap penalties.

use crate::Table;
use nanowall::scenarios::{latency_hiding, LatencyHidingPoint};
use nw_pe::SchedPolicy;

/// Structured result.
#[derive(Debug)]
pub struct F6Result {
    /// utilization\[latency_idx\]\[thread_idx\].
    pub matrix: Vec<Vec<LatencyHidingPoint>>,
    /// Latencies swept.
    pub latencies: Vec<u64>,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// Rendered table.
    pub table: String,
}

/// Runs F6: utilization vs link latency × thread count, plus the
/// scheduling-policy ablation.
pub fn run(fast: bool) -> F6Result {
    let latencies: Vec<u64> = vec![5, 25, 50, 100, 200];
    let threads: Vec<usize> = vec![1, 2, 4, 8, 16];
    let compute = 40;
    let cycles = if fast { 15_000 } else { 60_000 };

    let mut t = Table::new(&[
        "one-way latency",
        "1 thr",
        "2 thr",
        "4 thr",
        "8 thr",
        "16 thr",
    ]);
    let mut matrix = Vec::new();
    for &lat in &latencies {
        let mut row = Vec::new();
        let mut cells = vec![format!("{lat} cyc")];
        for &thr in &threads {
            let p = latency_hiding(thr, lat, compute, SchedPolicy::SwitchOnStall, 1, cycles);
            cells.push(format!("{:.0}%", p.utilization * 100.0));
            row.push(p);
        }
        t.row_owned(cells);
        matrix.push(row);
    }

    // Ablation at the paper's ">100 cycle" point.
    let mut ab = Table::new(&["scheduling", "swap penalty", "utilization @100cyc, 8 thr"]);
    for (policy, name, pen) in [
        (SchedPolicy::SwitchOnStall, "switch-on-stall", 1u64),
        (SchedPolicy::SwitchOnStall, "switch-on-stall", 0),
        (SchedPolicy::SwitchOnStall, "switch-on-stall", 4),
        (SchedPolicy::RoundRobin, "round-robin (barrel)", 0),
    ] {
        let p = latency_hiding(8, 100, compute, policy, pen, cycles);
        ab.row_owned(vec![
            name.into(),
            format!("{pen} cyc"),
            format!("{:.1}%", p.utilization * 100.0),
        ]);
    }

    F6Result {
        matrix,
        latencies,
        threads,
        table: format!(
            "F6  Core utilization vs NoC latency x HW threads (paper §6.2, 1-cycle swap)\n{}\nScheduling ablation:\n{}",
            t.render(),
            ab.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_recover_utilization_at_high_latency() {
        let r = run(true);
        // Row for 100-cycle latency.
        let idx = r.latencies.iter().position(|&l| l == 100).unwrap();
        let row = &r.matrix[idx];
        // Monotone improvement with thread count.
        for w in row.windows(2) {
            assert!(
                w[1].utilization >= w[0].utilization - 0.02,
                "{:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Claim C6/C7 shape: 1 thread starves, 16 threads near-full.
        assert!(row[0].utilization < 0.4, "1 thread: {}", row[0].utilization);
        assert!(
            row.last().unwrap().utilization > 0.9,
            "16 threads: {}",
            row.last().unwrap().utilization
        );
        // More latency always hurts a single-thread core.
        let single: Vec<f64> = r.matrix.iter().map(|row| row[0].utilization).collect();
        for w in single.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }
}
