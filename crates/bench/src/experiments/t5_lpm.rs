//! T5 — SRAM-trie LPM versus CAM (claim C9, paper §8 citing NPSE \[9\]).
//!
//! "In comparison with CAM-based look-up methods, it relies on an
//! SRAM-based approach that is more memory and power-efficient."
//!
//! The comparison: storage bits (scaled by the TCAM cell-area ratio for a
//! fair silicon comparison), worst-case memory accesses per lookup, and
//! energy per search, across table sizes — plus the stride ablation for the
//! multibit trie.

use crate::Table;
use nw_ipv4::routes::{install_prefixes, synthetic_prefixes, synthetic_table, RouteTableConfig};
use nw_ipv4::{BinaryTrie, CamTable, LpmTable, MultibitTrie, Prefix};
use nw_sim::parallel_map;

/// One engine × table-size measurement.
#[derive(Debug, Clone)]
pub struct LpmRow {
    /// Engine name.
    pub engine: String,
    /// Routes installed.
    pub routes: usize,
    /// Storage megabits (SRAM-equivalent silicon for the CAM row).
    pub silicon_mbits: f64,
    /// Worst-case memory accesses per lookup.
    pub accesses: u32,
    /// Energy per lookup in pJ.
    pub energy_pj: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T5Result {
    /// All measurements.
    pub rows: Vec<LpmRow>,
    /// Rendered table.
    pub table: String,
}

/// Reads one populated engine's costs off as a table row.
fn row_of<T: LpmTable>(engine: &T, routes: usize) -> LpmRow {
    let tcam = engine.name() == "tcam";
    let silicon_ratio = if tcam {
        CamTable::AREA_RATIO_VS_SRAM
    } else {
        1.0
    };
    LpmRow {
        engine: engine.name().to_string(),
        routes,
        silicon_mbits: engine.storage_bits() as f64 * silicon_ratio / 1e6,
        accesses: engine.worst_case_accesses(),
        energy_pj: engine.lookup_energy_pj(),
    }
}

fn measure<T: LpmTable>(mut engine: T, routes: usize, seed: u64) -> LpmRow {
    let cfg = RouteTableConfig { routes, seed };
    let _prefixes = synthetic_table(&mut engine, &cfg);
    row_of(&engine, routes)
}

/// [`measure`] on a pre-generated prefix set (the warm-fork path: the RNG
/// work of one table size is paid once and shared by every engine).
fn measure_shared<T: LpmTable>(mut engine: T, prefixes: &[Prefix]) -> LpmRow {
    install_prefixes(&mut engine, prefixes);
    row_of(&engine, prefixes.len())
}

/// The five contenders, each paired with its shared-prefix twin.
const N_ENGINES: usize = 5;

/// Runs T5 over 1k/4k/16k routes (plus 64k when not `fast`).
pub fn run(fast: bool) -> T5Result {
    run_protocol(fast, false)
}

/// T5 under the warm-fork protocol: each table size's synthetic prefix set
/// is generated **once** and installed into all five engines, instead of
/// every (size, engine) cell regenerating it from the seed. The rows are
/// identical to [`run`]'s by construction (pinned by the module tests) —
/// only the wall-clock changes.
pub fn run_warm_fork(fast: bool) -> T5Result {
    run_protocol(fast, true)
}

fn run_protocol(fast: bool, warm_fork: bool) -> T5Result {
    let sizes: &[usize] = if fast {
        &[1_000, 4_000, 16_000]
    } else {
        &[1_000, 4_000, 16_000, 64_000]
    };
    let mut rows = Vec::new();
    let mut t = Table::new(&[
        "routes",
        "engine",
        "silicon (SRAM-eq Mbit)",
        "accesses/lookup",
        "energy/lookup",
    ]);
    // Building and populating 64k-route tables dominates T5's wall-clock;
    // every (size, engine) cell is independent, so the grid fans out over
    // the sweep pool. `parallel_map` preserves input order — the table
    // renders byte-identically to the serial nested loop. One entry per
    // contender; the chunking back into per-size groups keys off its len.
    let cells: Vec<LpmRow> = if warm_fork {
        let sets: Vec<Vec<Prefix>> = parallel_map(sizes.to_vec(), |routes| {
            synthetic_prefixes(&RouteTableConfig { routes, seed: 42 })
        });
        let engines: &[fn(&[Prefix]) -> LpmRow] = &[
            |ps| measure_shared(BinaryTrie::new(), ps),
            |ps| measure_shared(MultibitTrie::new(2), ps),
            |ps| measure_shared(MultibitTrie::new(4), ps),
            |ps| measure_shared(MultibitTrie::new(8), ps),
            |ps| measure_shared(CamTable::new(), ps),
        ];
        let grid: Vec<(usize, usize)> = (0..sets.len())
            .flat_map(|s| (0..engines.len()).map(move |e| (s, e)))
            .collect();
        parallel_map(grid, |(s, engine)| engines[engine](&sets[s]))
    } else {
        let engines: &[fn(usize) -> LpmRow] = &[
            |n| measure(BinaryTrie::new(), n, 42),
            |n| measure(MultibitTrie::new(2), n, 42),
            |n| measure(MultibitTrie::new(4), n, 42),
            |n| measure(MultibitTrie::new(8), n, 42),
            |n| measure(CamTable::new(), n, 42),
        ];
        let grid: Vec<(usize, usize)> = sizes
            .iter()
            .flat_map(|&n| (0..engines.len()).map(move |e| (n, e)))
            .collect();
        parallel_map(grid, |(n, engine)| engines[engine](n))
    };
    for chunk in cells.chunks(N_ENGINES) {
        let n = chunk[0].routes;
        for e in chunk.iter().cloned() {
            t.row_owned(vec![
                n.to_string(),
                if e.engine == "multibit-trie" {
                    // Distinguish strides: re-derive from access count.
                    format!("{} (stride {})", e.engine, 32 / e.accesses)
                } else {
                    e.engine.clone()
                },
                format!("{:.2}", e.silicon_mbits),
                e.accesses.to_string(),
                format!("{:.1}pJ", e.energy_pj),
            ]);
            rows.push(e);
        }
    }
    let protocol = if warm_fork {
        " [warm-fork: one prefix set per size, shared across engines]"
    } else {
        ""
    };
    T5Result {
        rows,
        table: format!(
            "T5  LPM engines: SRAM tries vs ternary CAM (paper §8, NPSE [9]){protocol}\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_trie_beats_cam_on_energy_and_scales_flat() {
        let r = run(true);
        let at = |engine: &str, accesses: u32, n: usize| {
            r.rows
                .iter()
                .find(|row| {
                    row.engine == engine
                        && row.routes == n
                        && (accesses == 0 || row.accesses == accesses)
                })
                .cloned()
                .unwrap()
        };
        for &n in &[1_000usize, 16_000] {
            let trie = at("multibit-trie", 8, n); // stride 4
            let cam = at("tcam", 0, n);
            // C9: the SRAM approach is more power-efficient.
            assert!(
                cam.energy_pj > 10.0 * trie.energy_pj,
                "n={n}: cam {} vs trie {}",
                cam.energy_pj,
                trie.energy_pj
            );
        }
        // CAM search energy grows linearly with the table; the trie's is flat.
        let trie_small = at("multibit-trie", 8, 1_000).energy_pj;
        let trie_big = at("multibit-trie", 8, 16_000).energy_pj;
        assert!((trie_big - trie_small).abs() < 1e-9);
        let cam_small = at("tcam", 0, 1_000).energy_pj;
        let cam_big = at("tcam", 0, 16_000).energy_pj;
        assert!(cam_big > 10.0 * cam_small);
    }

    #[test]
    fn warm_fork_rows_match_the_cold_protocol_exactly() {
        let cold = run(true);
        let warm = run_warm_fork(true);
        assert_eq!(cold.rows.len(), warm.rows.len());
        for (c, w) in cold.rows.iter().zip(&warm.rows) {
            assert_eq!(c.engine, w.engine);
            assert_eq!(c.routes, w.routes);
            assert_eq!(c.accesses, w.accesses, "{c:?} vs {w:?}");
            assert!((c.silicon_mbits - w.silicon_mbits).abs() < 1e-12, "{c:?}");
            assert!((c.energy_pj - w.energy_pj).abs() < 1e-12, "{c:?}");
        }
        assert!(warm.table.contains("warm-fork"), "{}", warm.table);
    }

    #[test]
    fn stride_tradeoff_is_visible() {
        let r = run(true);
        let n = 16_000;
        let strides: Vec<&LpmRow> = r
            .rows
            .iter()
            .filter(|row| row.engine == "multibit-trie" && row.routes == n)
            .collect();
        // Larger stride → fewer accesses but more expanded memory.
        assert!(strides[0].accesses > strides[1].accesses);
        assert!(strides[1].accesses > strides[2].accesses);
        assert!(strides[2].silicon_mbits > strides[0].silicon_mbits);
    }
}
