//! T5 — SRAM-trie LPM versus CAM (claim C9, paper §8 citing NPSE \[9\]).
//!
//! "In comparison with CAM-based look-up methods, it relies on an
//! SRAM-based approach that is more memory and power-efficient."
//!
//! The comparison: storage bits (scaled by the TCAM cell-area ratio for a
//! fair silicon comparison), worst-case memory accesses per lookup, and
//! energy per search, across table sizes — plus the stride ablation for the
//! multibit trie.

use crate::Table;
use nw_ipv4::routes::{synthetic_table, RouteTableConfig};
use nw_ipv4::{BinaryTrie, CamTable, LpmTable, MultibitTrie};
use nw_sim::parallel_map;

/// One engine × table-size measurement.
#[derive(Debug, Clone)]
pub struct LpmRow {
    /// Engine name.
    pub engine: String,
    /// Routes installed.
    pub routes: usize,
    /// Storage megabits (SRAM-equivalent silicon for the CAM row).
    pub silicon_mbits: f64,
    /// Worst-case memory accesses per lookup.
    pub accesses: u32,
    /// Energy per lookup in pJ.
    pub energy_pj: f64,
}

/// Structured result.
#[derive(Debug)]
pub struct T5Result {
    /// All measurements.
    pub rows: Vec<LpmRow>,
    /// Rendered table.
    pub table: String,
}

fn measure<T: LpmTable>(mut engine: T, routes: usize, seed: u64) -> LpmRow {
    let cfg = RouteTableConfig { routes, seed };
    let _prefixes = synthetic_table(&mut engine, &cfg);
    let tcam = engine.name() == "tcam";
    let silicon_ratio = if tcam {
        CamTable::AREA_RATIO_VS_SRAM
    } else {
        1.0
    };
    LpmRow {
        engine: engine.name().to_string(),
        routes,
        silicon_mbits: engine.storage_bits() as f64 * silicon_ratio / 1e6,
        accesses: engine.worst_case_accesses(),
        energy_pj: engine.lookup_energy_pj(),
    }
}

/// Runs T5 over 1k/4k/16k routes (plus 64k when not `fast`).
pub fn run(fast: bool) -> T5Result {
    let sizes: &[usize] = if fast {
        &[1_000, 4_000, 16_000]
    } else {
        &[1_000, 4_000, 16_000, 64_000]
    };
    let mut rows = Vec::new();
    let mut t = Table::new(&[
        "routes",
        "engine",
        "silicon (SRAM-eq Mbit)",
        "accesses/lookup",
        "energy/lookup",
    ]);
    // Building and populating 64k-route tables dominates T5's wall-clock;
    // every (size, engine) cell is independent, so the grid fans out over
    // the sweep pool. `parallel_map` preserves input order — the table
    // renders byte-identically to the serial nested loop. One entry per
    // contender; the chunking back into per-size groups keys off its len.
    let engines: &[fn(usize) -> LpmRow] = &[
        |n| measure(BinaryTrie::new(), n, 42),
        |n| measure(MultibitTrie::new(2), n, 42),
        |n| measure(MultibitTrie::new(4), n, 42),
        |n| measure(MultibitTrie::new(8), n, 42),
        |n| measure(CamTable::new(), n, 42),
    ];
    let grid: Vec<(usize, usize)> = sizes
        .iter()
        .flat_map(|&n| (0..engines.len()).map(move |e| (n, e)))
        .collect();
    let cells: Vec<LpmRow> = parallel_map(grid, |(n, engine)| engines[engine](n));
    for chunk in cells.chunks(engines.len()) {
        let n = chunk[0].routes;
        for e in chunk.iter().cloned() {
            t.row_owned(vec![
                n.to_string(),
                if e.engine == "multibit-trie" {
                    // Distinguish strides: re-derive from access count.
                    format!("{} (stride {})", e.engine, 32 / e.accesses)
                } else {
                    e.engine.clone()
                },
                format!("{:.2}", e.silicon_mbits),
                e.accesses.to_string(),
                format!("{:.1}pJ", e.energy_pj),
            ]);
            rows.push(e);
        }
    }
    T5Result {
        rows,
        table: format!(
            "T5  LPM engines: SRAM tries vs ternary CAM (paper §8, NPSE [9])\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_trie_beats_cam_on_energy_and_scales_flat() {
        let r = run(true);
        let at = |engine: &str, accesses: u32, n: usize| {
            r.rows
                .iter()
                .find(|row| {
                    row.engine == engine
                        && row.routes == n
                        && (accesses == 0 || row.accesses == accesses)
                })
                .cloned()
                .unwrap()
        };
        for &n in &[1_000usize, 16_000] {
            let trie = at("multibit-trie", 8, n); // stride 4
            let cam = at("tcam", 0, n);
            // C9: the SRAM approach is more power-efficient.
            assert!(
                cam.energy_pj > 10.0 * trie.energy_pj,
                "n={n}: cam {} vs trie {}",
                cam.energy_pj,
                trie.energy_pj
            );
        }
        // CAM search energy grows linearly with the table; the trie's is flat.
        let trie_small = at("multibit-trie", 8, 1_000).energy_pj;
        let trie_big = at("multibit-trie", 8, 16_000).energy_pj;
        assert!((trie_big - trie_small).abs() < 1e-9);
        let cam_small = at("tcam", 0, 1_000).energy_pj;
        let cam_big = at("tcam", 0, 16_000).energy_pj;
        assert!(cam_big > 10.0 * cam_small);
    }

    #[test]
    fn stride_tradeoff_is_visible() {
        let r = run(true);
        let n = 16_000;
        let strides: Vec<&LpmRow> = r
            .rows
            .iter()
            .filter(|row| row.engine == "multibit-trie" && row.routes == n)
            .collect();
        // Larger stride → fewer accesses but more expanded memory.
        assert!(strides[0].accesses > strides[1].accesses);
        assert!(strides[1].accesses > strides[2].accesses);
        assert!(strides[2].silicon_mbits > strides[0].silicon_mbits);
    }
}
