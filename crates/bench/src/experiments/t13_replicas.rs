//! T13 — multi-seed statistical replicas from one warmed snapshot.
//!
//! Every other table in this harness reports a single deterministic
//! timeline per configuration. This experiment asks the follow-up
//! question the paper's methodology needs answered before comparing
//! configurations under *unreliable* fabric: how wide is the spread a
//! different fault draw would have produced? One platform per scenario is
//! warmed to steady state under a seeded campaign, snapshotted, and then
//! fanned out with [`FppaPlatform::fork`] into N measurement replicas —
//! each re-seeded so the *undrained* fault future is redrawn while the
//! warmed-up architectural state (caches, queues, pool ledger, pacing
//! credit) is shared bit-for-bit. The observables are the worst-object
//! latency percentiles per replica, aggregated across seeds as
//! min/median/max with a 95% CI half-width (`nw_sim::summarize_replicas`).
//!
//! Replica 0 always reuses the campaign's own seed, so its timeline is
//! bit-identical to the never-snapshotted run (the anchor the snapshot
//! differential suite pins); the spread columns therefore bracket the
//! deterministic figure every other table reports.

use crate::Table;
use nanowall::prelude::*;
use nanowall::scenarios::ScenarioRegistry;
use nanowall::{FaultCampaign, FaultRates, RetryPolicy};
use nw_sim::{parallel_map, summarize_replicas, ReplicaSummary};

/// The workloads that fan out (both from the standard registry).
const SCENARIOS: [&str; 2] = ["ipv4", "mix"];

/// The warmup campaign's seed; replica 0 re-uses it (the anchor).
const SEED: u64 = 13;

/// Fault intensity during warmup and measurement (the t12 "nominal
/// unreliable fabric" operating point).
const LEVEL: f64 = 1.0;

/// One aggregated statistic across all replicas of one scenario.
#[derive(Debug, Clone)]
pub struct ReplicaRow {
    /// Workload (registry scenario name).
    pub scenario: String,
    /// Which latency statistic this row aggregates (`p50`/`p95`/`p99`).
    pub stat: &'static str,
    /// The anchor replica's value (campaign-seed timeline), in cycles.
    pub anchor: f64,
    /// Spread across the N replica seeds.
    pub summary: ReplicaSummary,
}

/// Structured result.
#[derive(Debug)]
pub struct T13Result {
    /// Scenario-major rows: p50/p95/p99 per scenario.
    pub rows: Vec<ReplicaRow>,
    /// Rendered table.
    pub table: String,
}

/// Worst-object (p50, p95, p99) of one replica's report, in cycles.
fn worst_percentiles(report: &PlatformReport) -> (f64, f64, f64) {
    let worst = |pick: fn(&nanowall::ObjectLatency) -> u64| {
        report
            .latency
            .iter()
            .filter(|l| l.count > 0)
            .map(pick)
            .max()
            .unwrap_or(0) as f64
    };
    (worst(|l| l.p50.0), worst(|l| l.p95.0), worst(|l| l.p99.0))
}

/// Runs T13: warm once, fork N, aggregate the replica spread.
pub fn run(fast: bool) -> T13Result {
    let (warm, measure, n_replicas) = if fast {
        (8_000u64, 16_000u64, 5usize)
    } else {
        (30_000, 60_000, 9)
    };

    let mut rows = Vec::new();
    for scenario in SCENARIOS {
        let reg = ScenarioRegistry::standard();
        let mut parent = reg.build(scenario, fast).expect("registered scenario");
        let shape = parent.platform.fault_shape();
        parent
            .platform
            .install_fault_campaign(FaultCampaign::generate(
                SEED,
                warm + measure,
                &FaultRates::scaled(LEVEL),
                &shape,
            ));
        parent.platform.set_retry_policy(RetryPolicy::default());
        let _ = parent.run(warm);

        // Replica 0 keeps the campaign seed (bit-identical to the run that
        // was never snapshotted); the rest redraw the fault future.
        let forks: Vec<FppaPlatform> = (0..n_replicas)
            .map(|i| {
                let seed = if i == 0 { SEED } else { SEED + 101 * i as u64 };
                parent.platform.fork(seed)
            })
            .collect();
        let percentiles: Vec<(f64, f64, f64)> = parallel_map(forks, |mut replica| {
            let report = replica.run(measure);
            worst_percentiles(&report)
        });

        let anchor = percentiles[0];
        let column = |pick: fn(&(f64, f64, f64)) -> f64| -> Vec<f64> {
            percentiles.iter().map(pick).collect()
        };
        for (stat, anchor_value, values) in [
            ("p50", anchor.0, column(|p| p.0)),
            ("p95", anchor.1, column(|p| p.1)),
            ("p99", anchor.2, column(|p| p.2)),
        ] {
            rows.push(ReplicaRow {
                scenario: scenario.to_owned(),
                stat,
                anchor: anchor_value,
                summary: summarize_replicas(&values),
            });
        }
    }

    let mut t = Table::new(&[
        "scenario", "stat", "n", "anchor", "min", "median", "max", "ci95 ±",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.scenario.clone(),
            r.stat.to_owned(),
            r.summary.n.to_string(),
            format!("{:.0} cyc", r.anchor),
            format!("{:.0}", r.summary.min),
            format!("{:.0}", r.summary.median),
            format!("{:.0}", r.summary.max),
            format!("{:.1}", r.summary.ci_half_width),
        ]);
    }
    T13Result {
        table: format!(
            "T13  Replica spread: one warmed snapshot (seed {SEED}, level {LEVEL:.1}) forked \
             across {n_replicas} fault seeds, worst-object latency percentiles\n{}",
            t.render()
        ),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_spread_around_a_real_anchor() {
        let r = run(true);
        assert_eq!(r.rows.len(), 3 * SCENARIOS.len());
        for row in &r.rows {
            assert_eq!(row.summary.n, 5, "{row:?}");
            assert!(row.summary.min <= row.summary.median, "{row:?}");
            assert!(row.summary.median <= row.summary.max, "{row:?}");
            // The anchor replica is one of the N, so the spread bounds it.
            assert!(
                row.summary.min <= row.anchor && row.anchor <= row.summary.max,
                "{row:?}"
            );
            assert!(row.anchor > 0.0, "anchor must record latency: {row:?}");
        }
        // Reseeded fault futures genuinely diverge somewhere in the grid —
        // the spread columns are not vacuous.
        assert!(
            r.rows.iter().any(|row| row.summary.max > row.summary.min),
            "all replicas identical: forks are not redrawing the fault future"
        );
        assert!(r.table.contains("T13"), "{}", r.table);
    }

    #[test]
    fn replica_grid_is_deterministic_across_reruns() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.table, b.table, "replica grid must be reproducible");
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.summary, y.summary, "{x:?} vs {y:?}");
        }
    }
}
