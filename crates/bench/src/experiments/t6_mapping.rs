//! T6 — automatic object-to-platform mapping quality (claim C10, §7.2).
//!
//! "Given base properties of the architecture, such as predictable NoC
//! latency and throughput, the tools can vastly simplify the mapping of the
//! DSOC objects on to the architecture, enabling rapid exploration and
//! optimization."
//!
//! Each mapper places the IPv4 fast-path object graph on a pool of
//! identical GP-RISC PEs; the placement is then *executed* on the platform
//! simulator, so the analytic cost model is validated against measured
//! throughput.

use crate::Table;
use nanowall::scenarios::{ipv4_rig_with_placement, run_ipv4};
use nw_ipv4::app::{fast_path_app, FastPathWeights};
use nw_mapping::{
    GreedyLoadMapper, Mapper, MappingProblem, PeSlot, RandomMapper, RoundRobinMapper,
    SimulatedAnnealingMapper,
};
use nw_noc::{Topology, TopologyKind};
use nw_sim::parallel_map;
use nw_types::NodeId;
use std::time::Instant;

/// One mapper's evaluation.
#[derive(Debug, Clone)]
pub struct MapperRow {
    /// Mapper name.
    pub mapper: &'static str,
    /// Analytic cost (lower is better).
    pub analytic_cost: f64,
    /// Measured forwarded ratio on the simulator.
    pub forwarded_ratio: f64,
    /// Measured egress Gb/s.
    pub egress_gbps: f64,
    /// Mapper wall-clock in microseconds.
    pub mapper_us: u128,
}

/// Structured result.
#[derive(Debug)]
pub struct T6Result {
    /// One row per mapper.
    pub rows: Vec<MapperRow>,
    /// Rendered table.
    pub table: String,
}

/// Runs T6: 4 fast-path replicas (13 objects) on 6 identical PEs.
pub fn run(fast: bool) -> T6Result {
    let replicas = 4;
    let n_pes = 6;
    let threads = 8;
    let topology = TopologyKind::Mesh;
    let link_latency = 4;
    let gbps = 1.8;
    let cycles = if fast { 40_000 } else { 120_000 };

    let (app, _layouts) =
        fast_path_app(replicas, &FastPathWeights::default()).expect("replicas >= 1");

    // Entry rate for the analytic model: packets/cycle split across entries.
    let clock = nw_types::TechNode::N130.nominal_clock_hz();
    let pps = gbps * 1e9 / (40.0 * 8.0);
    let per_entry = pps / clock / replicas as f64;

    // Hop matrix over the platform's endpoints (PEs first, like the rig).
    let n_endpoints = n_pes + 2; // + memory + io
    let topo = Topology::build(topology, n_endpoints, link_latency).expect("valid topology");
    let hops: Vec<Vec<f64>> = (0..n_endpoints)
        .map(|a| (0..n_endpoints).map(|b| topo.hops(a, b) as f64).collect())
        .collect();
    let problem = MappingProblem::new(
        app.clone(),
        vec![per_entry; replicas],
        (0..n_pes).map(|i| PeSlot::new(NodeId(i), 1.0)).collect(),
        hops,
    )
    .expect("valid problem");

    let mappers: Vec<Box<dyn Mapper + Send + Sync>> = vec![
        Box::new(RandomMapper { seed: 13 }),
        Box::new(RoundRobinMapper),
        Box::new(GreedyLoadMapper),
        Box::new(SimulatedAnnealingMapper {
            iterations: if fast { 8_000 } else { 30_000 },
            ..SimulatedAnnealingMapper::default()
        }),
    ];

    let mut t = Table::new(&[
        "mapper",
        "analytic cost",
        "forwarded",
        "egress",
        "mapper time",
    ]);
    // Each mapper's place-then-simulate evaluation is independent of the
    // others (they share only the read-only problem), so the four of them
    // run on the sweep pool; order is preserved, so everything except the
    // informational wall-clock column is identical to the serial loop.
    let rows: Vec<MapperRow> = parallel_map(mappers, |m| {
        let t0 = Instant::now();
        let mapping = m.map(&problem);
        let mapper_us = t0.elapsed().as_micros();
        let mut rig = ipv4_rig_with_placement(
            replicas,
            n_pes,
            threads,
            topology,
            link_latency,
            gbps,
            &mapping.placement,
        );
        let report = run_ipv4(&mut rig, cycles);
        let io = &report.io[0];
        let forwarded_ratio = if io.generated == 0 {
            0.0
        } else {
            io.transmitted as f64 / io.generated as f64
        };
        MapperRow {
            mapper: m.name(),
            analytic_cost: mapping.cost.total,
            forwarded_ratio,
            egress_gbps: report.egress_pps(0) * 40.0 * 8.0 / 1e9,
            mapper_us,
        }
    });
    for row in &rows {
        t.row_owned(vec![
            row.mapper.into(),
            format!("{:.3}", row.analytic_cost),
            format!("{:.0}%", row.forwarded_ratio * 100.0),
            format!("{:.2} Gb/s", row.egress_gbps),
            format!("{}us", row.mapper_us),
        ]);
    }

    T6Result {
        rows,
        table: format!(
            "T6  MultiFlex mapping quality: IPv4 graph ({} objects) on {n_pes} PEs at {gbps} Gb/s (paper §7.2)\n{}",
            app.objects().len(),
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_mappers_beat_naive_baselines() {
        let r = run(true);
        let get = |name: &str| r.rows.iter().find(|x| x.mapper == name).unwrap().clone();
        let random = get("random");
        let greedy = get("greedy-load");
        let sa = get("simulated-annealing");
        // Analytic ordering.
        assert!(sa.analytic_cost <= greedy.analytic_cost + 1e-9);
        assert!(greedy.analytic_cost <= random.analytic_cost + 1e-9);
        // The analytic winner also wins (or ties) on the simulator.
        assert!(
            sa.forwarded_ratio >= random.forwarded_ratio - 0.05,
            "sa {:?} vs random {:?}",
            sa,
            random
        );
        // Optimized mapping should actually deliver most traffic here.
        assert!(sa.forwarded_ratio > 0.7, "{sa:?}");
    }
}
