//! T2 — break-even volumes (claim C2, paper §1).
//!
//! "For a chip sold at a price of $5, and a profit margin of 20%, this
//! implies selling over one million chips simply to pay for the mask set
//! NRE … design NRE, which ranges from 10M$ to 100M$ … implies volumes of
//! 10 to 100 million chips to break even."

use crate::Table;
use nw_econ::{break_even_volume, design_nre, mask_set_nre};
use nw_types::{Dollars, TechNode};

/// Structured result.
#[derive(Debug)]
pub struct T2Result {
    /// Mask-only break-even units at 90 nm.
    pub mask_only_units: f64,
    /// Design-NRE break-even range (low, high) at 130 nm.
    pub design_units: (f64, f64),
    /// Rendered table.
    pub table: String,
}

/// Runs T2 with the paper's $5 price and 20% margin.
pub fn run() -> T2Result {
    let price = Dollars(5.0);
    let margin = 0.20;
    let mask_only = break_even_volume(mask_set_nre(TechNode::N90), price, margin);
    let lo = break_even_volume(design_nre(TechNode::N130, 0.0), price, margin);
    let hi = break_even_volume(design_nre(TechNode::N130, 1.0), price, margin);

    let mut t = Table::new(&["cost item", "NRE", "break-even units", "paper says"]);
    t.row_owned(vec![
        "mask set @90nm".into(),
        mask_set_nre(TechNode::N90).to_string(),
        format!("{:.2}M", mask_only / 1e6),
        ">1M".into(),
    ]);
    t.row_owned(vec![
        "design (modest) @130nm".into(),
        design_nre(TechNode::N130, 0.0).to_string(),
        format!("{:.0}M", lo / 1e6),
        "10M".into(),
    ]);
    t.row_owned(vec![
        "design (flagship) @130nm".into(),
        design_nre(TechNode::N130, 1.0).to_string(),
        format!("{:.0}M", hi / 1e6),
        "100M".into(),
    ]);
    T2Result {
        mask_only_units: mask_only,
        design_units: (lo, hi),
        table: format!(
            "T2  Break-even volumes at $5/chip, 20% margin (paper §1)\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_arithmetic() {
        let r = run();
        assert!((r.mask_only_units - 1e6).abs() < 1.0);
        assert!((r.design_units.0 - 10e6).abs() < 10.0);
        assert!((r.design_units.1 - 100e6).abs() < 100.0);
    }
}
