//! T7 — the NRE–flexibility continuum (claim C11, paper §1).
//!
//! FPGA / structured array / platform SoC / cell ASIC: NRE, unit cost,
//! flexibility, and the volume crossovers between neighboring styles.

use crate::Table;
use nw_econ::{crossover_volume, ImplStyle};
use nw_types::{Dollars, TechNode};

/// Structured result.
#[derive(Debug)]
pub struct T7Result {
    /// (style, product NRE $M, unit-cost factor, flexibility).
    pub rows: Vec<(ImplStyle, f64, f64, f64)>,
    /// Crossover volumes between continuum neighbors.
    pub crossovers: Vec<(ImplStyle, ImplStyle, f64)>,
    /// Rendered table.
    pub table: String,
}

/// Runs T7 at 90 nm with a 10-product platform family and $5 baseline
/// silicon cost.
pub fn run() -> T7Result {
    let node = TechNode::N90;
    let family = 10.0;
    let unit = Dollars(5.0);

    let mut t = Table::new(&["style", "product NRE", "unit-cost factor", "flexibility"]);
    let mut rows = Vec::new();
    for s in ImplStyle::ALL {
        let nre = s.product_nre(node, family);
        rows.push((s, nre.millions(), s.unit_cost_factor(), s.flexibility()));
        t.row_owned(vec![
            s.to_string(),
            nre.to_string(),
            format!("{:.1}x", s.unit_cost_factor()),
            format!("{:.0}%", s.flexibility() * 100.0),
        ]);
    }
    let mut xt = Table::new(&["cheaper below", "cheaper above", "crossover volume"]);
    let mut crossovers = Vec::new();
    for w in ImplStyle::ALL.windows(2) {
        if let Some(v) = crossover_volume(w[0], w[1], node, family, unit) {
            crossovers.push((w[0], w[1], v));
            xt.row_owned(vec![
                w[0].to_string(),
                w[1].to_string(),
                format!("{:.2}M units", v / 1e6),
            ]);
        }
    }
    T7Result {
        rows,
        crossovers,
        table: format!(
            "T7  NRE-flexibility continuum at 90nm, 10-product family (paper §1)\n{}\nVolume crossovers ($5 baseline unit cost):\n{}",
            t.render(),
            xt.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuum_shape() {
        let r = run();
        assert_eq!(r.rows.len(), 4);
        // NRE ascends, unit cost descends along the continuum.
        for w in r.rows.windows(2) {
            assert!(w[0].1 < w[1].1);
            assert!(w[0].2 > w[1].2);
        }
        // Every neighboring pair crosses, at increasing volumes.
        assert_eq!(r.crossovers.len(), 3);
        assert!(r.crossovers[0].2 < r.crossovers[1].2);
        assert!(r.crossovers[1].2 < r.crossovers[2].2);
    }
}
