//! F5 — cross-chip wire delay (claim C5, paper §6.1 citing \[12\]).
//!
//! "In 50 nm technologies, it is predicted that the intra-chip propagation
//! delay will be between six and ten clock cycles."

use crate::Table;
use nw_econ::{cross_chip_delay_cycles, wire_delay_ps_per_mm};
use nw_types::TechNode;

/// Structured result.
#[derive(Debug)]
pub struct F5Result {
    /// (node, ps/mm, clock GHz, cross-chip cycles).
    pub rows: Vec<(TechNode, f64, f64, f64)>,
    /// The 50 nm cross-chip figure.
    pub cycles_at_50nm: f64,
    /// Rendered table.
    pub table: String,
}

/// Runs F5 for a 20 mm cross-chip route.
pub fn run() -> F5Result {
    let nodes = [
        TechNode::N350,
        TechNode::N250,
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N50,
        TechNode::N45,
    ];
    let mut t = Table::new(&["node", "wire ps/mm", "clock", "20mm cross-chip"]);
    let mut rows = Vec::new();
    for node in nodes {
        let ps = wire_delay_ps_per_mm(node);
        let clk = node.nominal_clock_hz();
        let cyc = cross_chip_delay_cycles(node, 20.0);
        rows.push((node, ps, clk / 1e9, cyc));
        t.row_owned(vec![
            node.to_string(),
            format!("{ps:.0}"),
            format!("{:.2}GHz", clk / 1e9),
            format!("{cyc:.2} cycles"),
        ]);
    }
    let cycles_at_50nm = cross_chip_delay_cycles(TechNode::N50, 20.0);
    F5Result {
        rows,
        cycles_at_50nm,
        table: format!(
            "F5  Cross-chip propagation delay (paper §6.1: 6-10 cycles at 50nm)\n{}",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_nm_window_and_monotonic_growth() {
        let r = run();
        assert!(
            (6.0..=10.0).contains(&r.cycles_at_50nm),
            "{}",
            r.cycles_at_50nm
        );
        for w in r.rows.windows(2) {
            assert!(w[1].3 > w[0].3, "cycles must grow down the ladder");
        }
    }
}
