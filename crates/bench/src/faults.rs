//! `expt faults` — the fault-injection determinism harness.
//!
//! Runs every registered scenario under a seeded fault campaign twice per
//! scheduler mode and checks the tentpole invariant from the CLI: faulted
//! runs must be **bit-identical** across `Dense`/`ActiveSet` and across
//! repeats of the same seed. The table shows what the campaign did to each
//! scenario (injections, retries, give-ups, drops, goodput) next to the
//! parity verdict; any divergence makes the harness report failure, which
//! `expt` turns into exit 1 — the same contract `expt bench` applies to
//! its fault-free scheduler parity rows.

use crate::Table;
use nanowall::scenarios::ScenarioRegistry;
use nanowall::{FaultCampaign, FaultRates, PlatformReport, RetryPolicy, SchedulerMode};
use std::fmt::Write as _;

/// One scenario's faulted outcome.
#[derive(Debug)]
pub struct FaultRow {
    /// Scenario name.
    pub scenario: String,
    /// Campaign events applied.
    pub faults: u64,
    /// Retries issued by the resilience layer.
    pub retries: u64,
    /// Calls abandoned after the attempt budget.
    pub give_ups: u64,
    /// Packets the NoC dropped (injected drops + disconnections).
    pub dropped: u64,
    /// Tasks completed despite the campaign.
    pub tasks: u64,
    /// Dense vs active-set reports bit-identical.
    pub mode_parity: bool,
    /// Same-seed repeat bit-identical.
    pub repeat_parity: bool,
}

/// The harness outcome: rendered table plus the overall verdict.
#[derive(Debug)]
pub struct FaultsRun {
    /// Per-scenario rows.
    pub rows: Vec<FaultRow>,
    /// Rendered stdout table.
    pub table: String,
    /// Every parity check passed.
    pub ok: bool,
}

/// Runs `name` under `mode` with a seeded level-1.0 campaign and the
/// default retry policy installed.
fn run_faulted(name: &str, mode: SchedulerMode, seed: u64, cycles: u64) -> PlatformReport {
    let reg = ScenarioRegistry::standard();
    let mut rig = reg.build(name, true).expect("registered scenario");
    rig.platform.set_scheduler_mode(mode);
    let shape = rig.platform.fault_shape();
    rig.platform.install_fault_campaign(FaultCampaign::generate(
        seed,
        cycles,
        &FaultRates::scaled(1.0),
        &shape,
    ));
    rig.platform.set_retry_policy(RetryPolicy::default());
    rig.run(cycles)
}

/// Runs the harness over every registered scenario. `quick` shrinks the
/// windows to CI size; `seed` picks the campaign timeline.
pub fn run_faults(quick: bool, seed: u64) -> FaultsRun {
    let cycles = if quick { 20_000 } else { 60_000 };
    let rows: Vec<FaultRow> = ScenarioRegistry::standard()
        .names()
        .iter()
        .map(|&name| {
            let dense = run_faulted(name, SchedulerMode::Dense, seed, cycles);
            let active = run_faulted(name, SchedulerMode::ActiveSet, seed, cycles);
            let repeat = run_faulted(name, SchedulerMode::ActiveSet, seed, cycles);
            FaultRow {
                scenario: name.to_owned(),
                faults: dense.resilience.faults_injected,
                retries: dense.resilience.retries,
                give_ups: dense.resilience.retry_give_ups,
                dropped: dense.resilience.packets_dropped,
                tasks: dense.tasks_completed,
                mode_parity: dense == active,
                repeat_parity: active == repeat,
            }
        })
        .collect();

    let mut t = Table::new(&[
        "scenario", "faults", "retries", "give-ups", "dropped", "tasks", "mode", "repeat",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.scenario.clone(),
            r.faults.to_string(),
            r.retries.to_string(),
            r.give_ups.to_string(),
            r.dropped.to_string(),
            r.tasks.to_string(),
            if r.mode_parity { "ok" } else { "DIVERGED" }.to_owned(),
            if r.repeat_parity { "ok" } else { "DIVERGED" }.to_owned(),
        ]);
    }
    let ok = rows.iter().all(|r| r.mode_parity && r.repeat_parity);
    let mut table = String::new();
    let _ = writeln!(
        table,
        "FAULTS  seed {seed}  {cycles}-cycle campaigns at level 1.0, dense vs active-set vs repeat"
    );
    let _ = write!(table, "{}", t.render());
    let _ = writeln!(
        table,
        "parity: {}",
        if ok { "bit-identical" } else { "DIVERGED" }
    );
    FaultsRun { rows, table, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_is_clean_and_non_vacuous() {
        let run = run_faults(true, 1);
        assert!(run.ok, "{}", run.table);
        assert_eq!(run.rows.len(), ScenarioRegistry::standard().names().len());
        assert!(
            run.rows.iter().any(|r| r.faults > 0),
            "campaigns must inject something:\n{}",
            run.table
        );
        assert!(run.table.contains("bit-identical"), "{}", run.table);
    }
}
