//! `expt snapshot` — the checkpoint/restore bit-identity harness.
//!
//! Runs the full correctness matrix of the snapshot contract on a
//! registered scenario: {dense, active-set} scheduler × {faultless, seeded
//! campaign} × {untraced, trace sink installed}. Each cell compares an
//! uninterrupted `run(a); run(b)` against the same split replayed through a
//! snapshot — once on a platform rebuilt with
//! [`FppaPlatform::from_snapshot`], and once on the original platform run
//! *ahead* and then [`FppaPlatform::restore`]d — requiring byte-identical
//! [`nanowall::PlatformReport`]s in both cases. Any divergence anywhere in
//! the matrix is a snapshot bug and fails the run (exit 1), which is what
//! lets CI gate on it.

use nanowall::{
    FaultCampaign, FaultRates, FppaPlatform, RetryPolicy, RingBufferSink, ScenarioRegistry,
    SchedulerMode,
};
use nw_sim::parallel_map;
use std::fmt::Write as _;

/// The scenario the matrix runs on: line-rate I/O, DSOC dispatch, latency
/// telemetry — the state-heaviest registered rig.
const SCENARIO: &str = "ipv4";

/// Default campaign seed for the faulted cells (`--seed` overrides).
const DEFAULT_SEED: u64 = 7;

/// One cell of the round-trip matrix.
#[derive(Debug, Clone)]
pub struct SnapshotCell {
    /// Scheduler mode under test.
    pub mode: SchedulerMode,
    /// Whether a seeded fault campaign (plus retry layer) was active.
    pub faulted: bool,
    /// Whether a trace sink was installed on the snapshotted platform.
    pub traced: bool,
    /// `from_snapshot` replay matched the uninterrupted run.
    pub fresh_identical: bool,
    /// In-place `restore` replay (after running ahead) matched it too.
    pub restore_identical: bool,
}

/// The whole matrix plus its rendering.
#[derive(Debug)]
pub struct SnapshotCheck {
    /// All eight cells, dense-first.
    pub cells: Vec<SnapshotCell>,
    /// Rendered table.
    pub table: String,
    /// True when every cell round-tripped bit-identically.
    pub ok: bool,
}

/// Installs the harness's standard faulted-run pair, identical on the
/// reference and snapshot platforms of a cell.
fn arm(platform: &mut FppaPlatform, seed: u64, horizon: u64) {
    let shape = platform.fault_shape();
    platform.install_fault_campaign(FaultCampaign::generate(
        seed,
        horizon,
        &FaultRates::scaled(1.0),
        &shape,
    ));
    platform.set_retry_policy(RetryPolicy::default());
}

fn check_cell(
    mode: SchedulerMode,
    faulted: bool,
    traced: bool,
    seed: u64,
    a: u64,
    b: u64,
) -> SnapshotCell {
    let build = |with_trace: bool| {
        let mut rig = ScenarioRegistry::standard()
            .build(SCENARIO, true)
            .expect("registered scenario");
        rig.platform.set_scheduler_mode(mode);
        if faulted {
            arm(&mut rig.platform, seed, a + b);
        }
        if with_trace {
            rig.platform
                .set_trace_sink(Box::new(RingBufferSink::new(1 << 12)));
        }
        rig.platform
    };

    // Uninterrupted reference (never traced: the trace axis must not
    // change what is simulated, so the comparison crosses it on purpose).
    let mut reference = build(false);
    let _ = reference.run(a);
    let want = reference.run(b);

    // Snapshot path.
    let mut original = build(traced);
    let _ = original.run(a);
    let snap = original.snapshot();
    let mut fresh = FppaPlatform::from_snapshot(&snap);
    let fresh_identical = fresh.run(b) == want;
    let _ = original.run(b / 2);
    original.restore(&snap);
    let restore_identical = original.run(b) == want;

    SnapshotCell {
        mode,
        faulted,
        traced,
        fresh_identical,
        restore_identical,
    }
}

/// Runs the full {scheduler} × {faults} × {trace} round-trip matrix.
/// `quick` shrinks the split windows to CI size; `seed` overrides the
/// faulted cells' campaign seed.
pub fn run_snapshot_check(quick: bool, seed: Option<u64>) -> SnapshotCheck {
    let seed = seed.unwrap_or(DEFAULT_SEED);
    let (a, b) = if quick {
        (4_000, 8_000)
    } else {
        (15_000, 30_000)
    };

    let mut grid = Vec::new();
    for mode in [SchedulerMode::Dense, SchedulerMode::ActiveSet] {
        for faulted in [false, true] {
            for traced in [false, true] {
                grid.push((mode, faulted, traced));
            }
        }
    }
    // Cells are independent platforms; order-preserving fan-out keeps the
    // table byte-identical to a serial run.
    let cells: Vec<SnapshotCell> = parallel_map(grid, |(mode, faulted, traced)| {
        check_cell(mode, faulted, traced, seed, a, b)
    });

    let ok = cells
        .iter()
        .all(|c| c.fresh_identical && c.restore_identical);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "SNAPSHOT  round-trip bit-identity on `{SCENARIO}`: split {a}+{b} cycles, campaign seed {seed}"
    );
    let _ = writeln!(
        s,
        "  {:<10} {:<7} {:<6} {:<14} restore",
        "scheduler", "faults", "trace", "from_snapshot"
    );
    for c in &cells {
        let _ = writeln!(
            s,
            "  {:<10} {:<7} {:<6} {:<14} {}",
            format!("{:?}", c.mode),
            if c.faulted { "on" } else { "off" },
            if c.traced { "on" } else { "off" },
            if c.fresh_identical {
                "identical"
            } else {
                "DIVERGED"
            },
            if c.restore_identical {
                "identical"
            } else {
                "DIVERGED"
            },
        );
    }
    let _ = writeln!(
        s,
        "SNAPSHOT  {}",
        if ok {
            "all cells round-trip bit-identically"
        } else {
            "DIVERGENCE: snapshot/restore is not invisible"
        }
    );
    SnapshotCheck {
        cells,
        table: s,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_passes_and_covers_all_eight_cells() {
        let check = run_snapshot_check(true, None);
        assert_eq!(check.cells.len(), 8);
        assert!(check.ok, "{}", check.table);
        // Both schedulers, both fault states, both trace states appear.
        assert!(check.cells.iter().any(|c| c.mode == SchedulerMode::Dense));
        assert!(check
            .cells
            .iter()
            .any(|c| c.mode == SchedulerMode::ActiveSet));
        assert!(check.cells.iter().any(|c| c.faulted && c.traced));
        assert!(check.table.contains("identical"), "{}", check.table);
    }
}
