//! `expt bench` — the recorded performance trajectory.
//!
//! Times the simulation core under both schedulers on the workloads where
//! the active-set scheduler matters (large-idle rigs: low-rate video /
//! modem / crypto / IPv4 points and the F6 latency-hiding rig), verifies
//! the runs are **bit-identical** across schedulers while timing them,
//! measures the parallel sweep runner's scaling on the F4 topology sweep
//! and the T8 PE-pool DSE, and wall-clocks every registered experiment.
//! Everything lands in `BENCH_platform.json` so each PR records the perf
//! trajectory instead of guessing at it.

use crate::experiments::{run_by_id, ALL_IDS};
use crate::obs::ProfileEntry;
use nanowall::scenarios::{self, latency_hiding};
use nanowall::{set_default_scheduler_mode, PlatformReport, SchedulerMode};
use nw_pe::SchedPolicy;
use std::fmt::Write as _;
use std::time::Instant;

/// One dense-vs-active measurement of a platform rig.
#[derive(Debug, Clone)]
pub struct SchedEntry {
    /// Rig label.
    pub name: String,
    /// Simulated window in cycles.
    pub cycles: u64,
    /// Wall-clock of the dense reference scheduler.
    pub dense_secs: f64,
    /// Wall-clock of the active-set scheduler.
    pub active_secs: f64,
    /// Simulated cycles per wall-clock second under the active scheduler.
    pub active_cycles_per_sec: f64,
    /// Whether the two runs produced bit-identical reports.
    pub bit_identical: bool,
}

impl SchedEntry {
    /// Dense time over active time.
    pub fn speedup(&self) -> f64 {
        if self.active_secs > 0.0 {
            self.dense_secs / self.active_secs
        } else {
            0.0
        }
    }
}

/// One serial-vs-parallel measurement of a sweep.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Sweep label.
    pub name: String,
    /// Wall-clock on one worker.
    pub serial_secs: f64,
    /// Wall-clock on the full pool.
    pub parallel_secs: f64,
    /// Workers in the pool.
    pub threads: usize,
    /// Whether serial and parallel produced identical tables.
    pub identical: bool,
}

impl SweepEntry {
    /// Serial time over parallel time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// One cold-rewarmup vs warm-fork measurement of a sweep grid: the same
/// grid timed under its standard protocol (every point warmed from cycle
/// 0) and under `--warm-fork` (one warmed snapshot forked per point).
#[derive(Debug, Clone)]
pub struct WarmForkEntry {
    /// Grid label.
    pub name: String,
    /// Wall-clock of the full-rewarmup (cold) protocol.
    pub cold_secs: f64,
    /// Wall-clock of the warm-fork protocol.
    pub fork_secs: f64,
    /// Whether two warm-fork runs produced identical grids (the fork path
    /// must stay deterministic to be trustworthy).
    pub deterministic: bool,
}

impl WarmForkEntry {
    /// Cold time over fork time.
    pub fn speedup(&self) -> f64 {
        if self.fork_secs > 0.0 {
            self.cold_secs / self.fork_secs
        } else {
            0.0
        }
    }
}

/// Wall-clock of one registered experiment.
#[derive(Debug, Clone)]
pub struct ExptTiming {
    /// Experiment id.
    pub id: String,
    /// Wall-clock seconds.
    pub secs: f64,
}

/// Everything `expt bench` measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Whether the quick (CI-sized) windows were used.
    pub quick: bool,
    /// Worker-pool size the sweeps ran on.
    pub sweep_threads: usize,
    /// Scheduler comparisons.
    pub scheduler: Vec<SchedEntry>,
    /// Sweep-scaling comparisons.
    pub sweeps: Vec<SweepEntry>,
    /// Cold-rewarmup vs warm-fork grid timings.
    pub warm_fork: Vec<WarmForkEntry>,
    /// Per-experiment timings.
    pub experiments: Vec<ExptTiming>,
    /// Host-side phase profiles (`host_phase_breakdown` in the JSON).
    pub profile: Vec<ProfileEntry>,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

impl BenchReport {
    /// Renders the report as JSON (hand-rolled: the workspace is offline,
    /// and the schema is flat enough not to need a serializer).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"tool\": \"expt bench\",");
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"sweep_threads\": {},", self.sweep_threads);
        s.push_str("  \"scheduler\": [\n");
        for (i, e) in self.scheduler.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"cycles\": {}, \"dense_secs\": {}, \"active_secs\": {}, \"speedup\": {}, \"active_cycles_per_sec\": {}, \"bit_identical\": {}}}{}",
                e.name,
                e.cycles,
                json_f(e.dense_secs),
                json_f(e.active_secs),
                json_f(e.speedup()),
                json_f(e.active_cycles_per_sec),
                e.bit_identical,
                if i + 1 < self.scheduler.len() { "," } else { "" }
            );
        }
        s.push_str("  ],\n  \"sweeps\": [\n");
        for (i, e) in self.sweeps.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"serial_secs\": {}, \"parallel_secs\": {}, \"speedup\": {}, \"threads\": {}, \"identical\": {}}}{}",
                e.name,
                json_f(e.serial_secs),
                json_f(e.parallel_secs),
                json_f(e.speedup()),
                e.threads,
                e.identical,
                if i + 1 < self.sweeps.len() { "," } else { "" }
            );
        }
        // Warm-fork grid rows are keyed "grid" (not "name") so the
        // delta-table line scanner below never mistakes them for
        // scheduler entries.
        s.push_str("  ],\n  \"warm_fork_grids\": [\n");
        for (i, e) in self.warm_fork.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"grid\": \"{}\", \"cold_secs\": {}, \"fork_secs\": {}, \"speedup\": {}, \"deterministic\": {}}}{}",
                e.name,
                json_f(e.cold_secs),
                json_f(e.fork_secs),
                json_f(e.speedup()),
                e.deterministic,
                if i + 1 < self.warm_fork.len() { "," } else { "" }
            );
        }
        s.push_str("  ],\n  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"id\": \"{}\", \"secs\": {}}}{}",
                e.id,
                json_f(e.secs),
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        // Host-side phase attribution. Keyed "rig" (not "name") so the
        // delta-table line scanner above never mistakes these rows for
        // scheduler entries.
        s.push_str("  ],\n  \"host_phase_breakdown\": [\n");
        for (i, e) in self.profile.iter().enumerate() {
            let mut phases = String::new();
            for (j, p) in e.report.phases.iter().enumerate() {
                let _ = write!(
                    phases,
                    "\"{}\": {}{}",
                    p.phase.name(),
                    json_f(p.secs),
                    if j + 1 < e.report.phases.len() {
                        ", "
                    } else {
                        ""
                    }
                );
            }
            let _ = writeln!(
                s,
                "    {{\"rig\": \"{}\", \"cycles\": {}, \"measured_secs\": {}, \"attributed_secs\": {}, \"phases\": {{{}}}}}{}",
                e.rig,
                e.cycles,
                json_f(e.measured_secs),
                json_f(e.report.total_secs),
                phases,
                if i + 1 < self.profile.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders a delta table of this report against a previously committed
    /// `BENCH_platform.json` (the exact format [`BenchReport::to_json`]
    /// emits). Purely informational: timing deltas never fail a run — CI
    /// machines are too noisy to gate on absolute numbers — only the
    /// bit-identity flags (checked elsewhere) can.
    ///
    /// Unknown rigs (added since the baseline was committed) and removed
    /// rigs are called out rather than silently dropped.
    pub fn delta_table(&self, baseline_json: &str) -> String {
        let baseline = parse_scheduler_entries(baseline_json);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "BENCH  delta vs committed baseline (informational; identity is the only gate)"
        );
        for e in &self.scheduler {
            match baseline.iter().find(|(n, _)| n == &e.name) {
                Some((_, base_cps)) if *base_cps > 0.0 => {
                    let ratio = e.active_cycles_per_sec / base_cps;
                    let _ = writeln!(
                        s,
                        "  {:<22} {:>11.0} -> {:>11.0} cyc/s  {:>6.2}x  identical={}",
                        e.name, base_cps, e.active_cycles_per_sec, ratio, e.bit_identical
                    );
                }
                _ => {
                    let _ = writeln!(
                        s,
                        "  {:<22} {:>11} -> {:>11.0} cyc/s  (new rig)  identical={}",
                        e.name, "-", e.active_cycles_per_sec, e.bit_identical
                    );
                }
            }
        }
        for (name, _) in &baseline {
            if !self.scheduler.iter().any(|e| &e.name == name) {
                let _ = writeln!(s, "  {name:<22} removed since baseline");
            }
        }
        if !self.warm_fork.is_empty() {
            let base_wf = parse_warm_fork_entries(baseline_json);
            let _ = writeln!(
                s,
                "BENCH  warm-fork delta (fork-grid wall-clock vs committed baseline)"
            );
            for e in &self.warm_fork {
                match base_wf.iter().find(|(n, _)| n == &e.name) {
                    Some((_, base_fork)) if *base_fork > 0.0 => {
                        let _ = writeln!(
                            s,
                            "  {:<22} fork {:>8.4}s -> {:>8.4}s  (cold now {:.4}s, {:.1}x)  deterministic={}",
                            e.name,
                            base_fork,
                            e.fork_secs,
                            e.cold_secs,
                            e.speedup(),
                            e.deterministic
                        );
                    }
                    _ => {
                        let _ = writeln!(
                            s,
                            "  {:<22} fork {:>8.4}s  (new grid; cold {:.4}s, {:.1}x)  deterministic={}",
                            e.name,
                            e.fork_secs,
                            e.cold_secs,
                            e.speedup(),
                            e.deterministic
                        );
                    }
                }
            }
        }
        s
    }

    /// Human-readable summary for stdout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "BENCH  scheduler dense vs active-set (bit-identical required)"
        );
        for e in &self.scheduler {
            let _ = writeln!(
                s,
                "  {:<22} {:>9} cyc  dense {:>8.4}s  active {:>8.4}s  {:>5.1}x  {:>11.0} cyc/s  identical={}",
                e.name,
                e.cycles,
                e.dense_secs,
                e.active_secs,
                e.speedup(),
                e.active_cycles_per_sec,
                e.bit_identical
            );
        }
        let _ = writeln!(
            s,
            "BENCH  sweep scaling on {} worker(s)",
            self.sweep_threads
        );
        for e in &self.sweeps {
            let _ = writeln!(
                s,
                "  {:<22} serial {:>8.4}s  parallel {:>8.4}s  {:>5.1}x  identical={}",
                e.name,
                e.serial_secs,
                e.parallel_secs,
                e.speedup(),
                e.identical
            );
        }
        if !self.warm_fork.is_empty() {
            let _ = writeln!(
                s,
                "BENCH  warm-fork grids (full rewarmup vs one warmed snapshot forked per point)"
            );
            for e in &self.warm_fork {
                let _ = writeln!(
                    s,
                    "  {:<22} cold {:>8.4}s  fork {:>8.4}s  {:>5.1}x  deterministic={}",
                    e.name,
                    e.cold_secs,
                    e.fork_secs,
                    e.speedup(),
                    e.deterministic
                );
            }
        }
        let _ = writeln!(s, "BENCH  experiment wall-clock");
        for e in &self.experiments {
            let _ = writeln!(s, "  {:<6} {:>8.4}s", e.id, e.secs);
        }
        if !self.profile.is_empty() {
            let _ = writeln!(s, "BENCH  host phase breakdown");
            s.push_str(&crate::obs::render_profile(&self.profile));
        }
        s
    }
}

/// Extracts `(name, active_cycles_per_sec)` pairs from the scheduler rows
/// of a `BENCH_platform.json`. A hand-rolled line scanner, not a JSON
/// parser: the workspace is offline and the input is our own emitter's
/// output, where every scheduler row sits on one line with both keys.
fn parse_scheduler_entries(json: &str) -> Vec<(String, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
    json.lines()
        .filter_map(|line| {
            let name = field(line, "\"name\": ")?;
            let cps: f64 = field(line, "\"active_cycles_per_sec\": ")?.parse().ok()?;
            Some((name.to_owned(), cps))
        })
        .collect()
}

/// Extracts `(grid, fork_secs)` pairs from the warm-fork rows of a
/// `BENCH_platform.json` — the same line-scanner idiom as
/// [`parse_scheduler_entries`], keyed on the fields only those rows carry.
fn parse_warm_fork_entries(json: &str) -> Vec<(String, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
    json.lines()
        .filter_map(|line| {
            let name = field(line, "\"grid\": ")?;
            let fork: f64 = field(line, "\"fork_secs\": ")?.parse().ok()?;
            Some((name.to_owned(), fork))
        })
        .collect()
}

/// Runs `build_and_run` under one scheduler, returning (report, secs).
fn timed_under(mode: SchedulerMode, run: &dyn Fn() -> PlatformReport) -> (PlatformReport, f64) {
    set_default_scheduler_mode(mode);
    let t = Instant::now();
    let report = run();
    let secs = t.elapsed().as_secs_f64();
    set_default_scheduler_mode(SchedulerMode::ActiveSet);
    (report, secs)
}

fn sched_case(name: &str, cycles: u64, run: &dyn Fn() -> PlatformReport) -> SchedEntry {
    let (dense_report, dense_secs) = timed_under(SchedulerMode::Dense, run);
    let (active_report, active_secs) = timed_under(SchedulerMode::ActiveSet, run);
    SchedEntry {
        name: name.to_owned(),
        cycles,
        dense_secs,
        active_secs,
        active_cycles_per_sec: if active_secs > 0.0 {
            cycles as f64 / active_secs
        } else {
            0.0
        },
        bit_identical: dense_report == active_report,
    }
}

fn sweep_case(name: &str, run: &dyn Fn() -> String) -> SweepEntry {
    // Serial: pin the pool to one worker; parallel: the configured pool.
    nw_sim::set_sweep_threads(Some(1));
    let t = Instant::now();
    let serial_out = run();
    let serial_secs = t.elapsed().as_secs_f64();
    nw_sim::set_sweep_threads(None);
    let threads = nw_sim::sweep_threads();
    let t = Instant::now();
    let parallel_out = run();
    let parallel_secs = t.elapsed().as_secs_f64();
    SweepEntry {
        name: name.to_owned(),
        serial_secs,
        parallel_secs,
        threads,
        identical: serial_out == parallel_out,
    }
}

fn warm_fork_case(
    name: &str,
    cold: &dyn Fn() -> String,
    fork: &dyn Fn() -> String,
) -> WarmForkEntry {
    let t = Instant::now();
    let _ = cold();
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let first = fork();
    let fork_secs = t.elapsed().as_secs_f64();
    // The fork grid runs twice so determinism is measured, not assumed.
    let second = fork();
    WarmForkEntry {
        name: name.to_owned(),
        cold_secs,
        fork_secs,
        deterministic: first == second,
    }
}

/// Runs the benchmark suite. `quick` shrinks windows to CI size.
pub fn run_bench(quick: bool) -> BenchReport {
    let win = if quick { 300_000 } else { 1_000_000 };

    let scheduler = vec![
        // F6 latency-hiding rig at its most idle point: a single context
        // blocked on a 200-cycle link round trip most of the window.
        sched_case("f6-1thr-200cyc-link", win / 4, &|| {
            let p = latency_hiding(1, 200, 40, SchedPolicy::SwitchOnStall, 1, win / 4);
            // Pack the measurement into a comparable report shape: the
            // utilization/tasks pair is the experiment's observable.
            synthetic_report(p.utilization, p.tasks)
        }),
        // T9 modem at a low air rate: bursts arrive thousands of cycles
        // apart, so almost every cycle is idle.
        sched_case("t9-modem-40mbps", win, &|| {
            let mut rig = scenarios::modem_rig(&nw_apps::ModemParams::default(), 6, 4, 50, 40.0);
            rig.run(win)
        }),
        // T8 video far below the knee.
        sched_case("t8-video-1gbps", win / 2, &|| {
            let mut rig = scenarios::video_rig(&nw_apps::VideoParams::default(), 9, 4, 4, 1.0);
            rig.run(win / 2)
        }),
        // T10 crypto at an easy offered load.
        sched_case("t10-crypto-0.5gbps", win / 2, &|| {
            let mut rig = scenarios::crypto_rig(&nw_apps::CryptoParams::default(), 4, 8, 4, 0.5);
            rig.run(win / 2)
        }),
        // T3 IPv4 fast path far below line rate.
        sched_case("t3-ipv4-0.3gbps", win / 2, &|| {
            let mut rig = scenarios::ipv4_rig(4, 8, nw_noc::TopologyKind::Mesh, 4, 0.3);
            scenarios::run_ipv4(&mut rig, win / 2)
        }),
        // ---- Busy-path points: the regime the paper's platform argument
        // actually cares about. These rigs keep the fabric loaded — link
        // serialization, queued routers, issuing PEs — so they measure the
        // event-driven transmit path and compute fast-forward, not the
        // idle-span skip.
        // T8 video at 8 Gb/s: at the delivery knee, four lanes saturated.
        sched_case("t8-video-8gbps", win / 4, &|| {
            let mut rig = scenarios::video_rig(&nw_apps::VideoParams::default(), 9, 4, 4, 8.0);
            rig.run(win / 4)
        }),
        // T3 IPv4 near line rate: 16 worker PEs at 9.5 of 10 Gb/s offered.
        sched_case("t3-ipv4-9.5gbps", win / 4, &|| {
            let mut rig = scenarios::ipv4_rig(16, 8, nw_noc::TopologyKind::Mesh, 4, 9.5);
            scenarios::run_ipv4(&mut rig, win / 4)
        }),
        // T11 mix under cross-workload pressure: video + IPv4 sharing the
        // fabric. Exercises the latency telemetry (per-object histograms,
        // deadline misses) under both schedulers — the identity check now
        // covers every percentile row in the report.
        sched_case("t11-mix-6g-3g", win / 4, &|| {
            let params = scenarios::mix_demo_params(true);
            let mut rig =
                scenarios::mix_rig(&params, scenarios::mix_pe_pool(&params), 4, 4, 6.0, 3.0);
            rig.run(win / 4)
        }),
    ];

    let sweeps = vec![
        sweep_case("f4-topology-sweep", &|| {
            crate::experiments::f4_topology::run(true).table
        }),
        sweep_case("t8-pe-pool-dse", &|| {
            crate::experiments::t8_video::run(true).table
        }),
        sweep_case("t3-replica-sweep", &|| {
            crate::experiments::t3_ipv4::run(true).table
        }),
        sweep_case("t5-lpm-grid", &|| {
            crate::experiments::t5_lpm::run(true).table
        }),
        // T6's rendered table carries an informational mapper wall-clock
        // column, so identity is checked on the deterministic fields.
        sweep_case("t6-mapper-eval", &|| {
            crate::experiments::t6_mapping::run(true)
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{}|{:.9}|{:.9}|{:.9}",
                        r.mapper, r.analytic_cost, r.forwarded_ratio, r.egress_gbps
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        }),
        sweep_case("t9-latency-sweep", &|| {
            crate::experiments::t9_modem::run(true).table
        }),
        sweep_case("t11-mix-grid", &|| {
            crate::experiments::t11_mix::run(true).table
        }),
    ];

    // The T11 grid under `--warm-fork` (one warmed snapshot, rates retuned
    // per point) timed against its full-rewarmup protocol. Same grid
    // points, same window; the fork path skips per-point warmup.
    let warm_fork = vec![warm_fork_case(
        "t11-mix-grid",
        &|| format!("{:?}", crate::experiments::t11_mix::bench_grid(true, false)),
        &|| format!("{:?}", crate::experiments::t11_mix::bench_grid(true, true)),
    )];

    let experiments = ALL_IDS
        .iter()
        .map(|id| {
            let t = Instant::now();
            let out = run_by_id(id, quick);
            assert!(out.is_some(), "registered id {id} must run");
            ExptTiming {
                id: (*id).to_owned(),
                secs: t.elapsed().as_secs_f64(),
            }
        })
        .collect();

    BenchReport {
        quick,
        sweep_threads: nw_sim::sweep_threads(),
        scheduler,
        sweeps,
        warm_fork,
        experiments,
        profile: crate::obs::run_profile(quick, None),
    }
}

/// Wraps a scalar measurement pair into a `PlatformReport`-shaped value so
/// the F6 rig (which reads PE stats directly rather than reporting) can be
/// compared across schedulers with the same equality check.
fn synthetic_report(utilization: f64, tasks: u64) -> PlatformReport {
    PlatformReport {
        cycles: nw_types::Cycles(0),
        clock_hz: 0.0,
        tasks_completed: tasks,
        pe_utilization: vec![utilization],
        thread_occupancy: Vec::new(),
        noc: nw_noc::NocStats {
            injected: 0,
            delivered: 0,
            refused: 0,
            flit_hops: 0,
            latency: nw_sim::Histogram::new(),
        },
        io: Vec::new(),
        energy: nw_types::Picojoules(0.0),
        queued_invocations: 0,
        object_invocations: Vec::new(),
        latency: Vec::new(),
        mem_accesses: 0,
        fabric_served: 0,
        hwip_served: 0,
        resilience: nanowall::ResilienceStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchReport {
            quick: true,
            sweep_threads: 4,
            scheduler: vec![SchedEntry {
                name: "x".into(),
                cycles: 100,
                dense_secs: 0.2,
                active_secs: 0.1,
                active_cycles_per_sec: 1000.0,
                bit_identical: true,
            }],
            sweeps: vec![SweepEntry {
                name: "y".into(),
                serial_secs: 0.4,
                parallel_secs: 0.1,
                threads: 4,
                identical: true,
            }],
            warm_fork: vec![WarmForkEntry {
                name: "wf".into(),
                cold_secs: 0.6,
                fork_secs: 0.2,
                deterministic: true,
            }],
            experiments: vec![ExptTiming {
                id: "t1".into(),
                secs: 0.01,
            }],
            profile: vec![ProfileEntry {
                rig: "mix".into(),
                cycles: 1_000,
                measured_secs: 0.5,
                report: nanowall::ProfileReport {
                    phases: vec![nanowall::PhaseSlice {
                        phase: nanowall::HostPhase::NocTick,
                        secs: 0.25,
                        laps: 10,
                    }],
                    total_secs: 0.25,
                },
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"bit_identical\": true"));
        assert!(j.contains("\"speedup\": 2.000000"));
        assert!(j.contains("\"speedup\": 4.000000"));
        assert!(j.contains("\"id\": \"t1\""));
        assert!(j.contains("\"host_phase_breakdown\""));
        assert!(j.contains("\"rig\": \"mix\""));
        assert!(j.contains("\"noc_tick\": 0.250000"));
        assert!(j.contains("\"warm_fork_grids\""));
        assert!(j.contains("\"grid\": \"wf\""));
        assert!(j.contains("\"speedup\": 3.000000"));
        // Profile and warm-fork rows must never parse as scheduler
        // baseline entries.
        assert_eq!(parse_scheduler_entries(&j).len(), r.scheduler.len());
        assert_eq!(parse_warm_fork_entries(&j), vec![("wf".to_owned(), 0.2)]);
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
        assert!(!r.render().is_empty());
    }

    #[test]
    fn delta_table_reads_own_json_format() {
        let base = BenchReport {
            quick: true,
            sweep_threads: 1,
            scheduler: vec![
                SchedEntry {
                    name: "riga".into(),
                    cycles: 100,
                    dense_secs: 0.2,
                    active_secs: 0.1,
                    active_cycles_per_sec: 1000.0,
                    bit_identical: true,
                },
                SchedEntry {
                    name: "gone".into(),
                    cycles: 100,
                    dense_secs: 0.2,
                    active_secs: 0.1,
                    active_cycles_per_sec: 500.0,
                    bit_identical: true,
                },
            ],
            sweeps: Vec::new(),
            warm_fork: vec![WarmForkEntry {
                name: "t11-mix-grid".into(),
                cold_secs: 0.8,
                fork_secs: 0.4,
                deterministic: true,
            }],
            experiments: Vec::new(),
            profile: Vec::new(),
        };
        let mut new = base.clone();
        new.scheduler[0].active_cycles_per_sec = 2500.0;
        new.scheduler[1].name = "fresh".into();
        new.warm_fork[0].fork_secs = 0.3;
        let table = new.delta_table(&base.to_json());
        assert!(table.contains("riga"), "{table}");
        assert!(table.contains("2.50x"), "2.5x speedup row: {table}");
        assert!(table.contains("(new rig)"), "{table}");
        assert!(
            table.contains("gone") && table.contains("removed"),
            "{table}"
        );
        assert!(
            table.contains("fork   0.4000s ->   0.3000s"),
            "warm-fork delta row: {table}"
        );

        let mut unseen = new.clone();
        unseen.warm_fork[0].name = "brand-new-grid".into();
        let table = unseen.delta_table(&base.to_json());
        assert!(table.contains("(new grid;"), "{table}");
    }

    #[test]
    fn speedup_handles_zero_division() {
        let e = SchedEntry {
            name: "z".into(),
            cycles: 1,
            dense_secs: 1.0,
            active_secs: 0.0,
            active_cycles_per_sec: 0.0,
            bit_identical: true,
        };
        assert_eq!(e.speedup(), 0.0);
    }
}
