//! `expt` — regenerate the paper's tables and figures.
//!
//! ```text
//! expt all            # every experiment, DESIGN.md order
//! expt t3 f6          # selected experiments
//! expt --fast all     # smaller simulation windows
//! expt list           # registered experiments and scenarios
//! ```

use nw_bench::experiments::{run_by_id, ALL_IDS, EXPERIMENTS};

/// Prints the experiment index and the scenario-registry catalog.
fn print_list() {
    println!("Experiments (run with `expt <id>`):");
    for e in EXPERIMENTS {
        println!("  {:<4} {}", e.id, e.title);
    }
    println!();
    println!("Scenario registry (nanowall::scenarios::ScenarioRegistry::standard):");
    for spec in nanowall::ScenarioRegistry::standard().specs() {
        println!("  {:<8} {}", spec.name, spec.summary);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--fast")
        .map(String::as_str)
        .collect();
    if ids == ["list"] {
        print_list();
        return;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: expt [--fast] <list | all | {}>",
            ALL_IDS.join(" | ")
        );
        std::process::exit(2);
    }
    let selected: Vec<&str> = if ids.contains(&"all") {
        ALL_IDS.to_vec()
    } else {
        ids
    };
    for id in selected {
        match run_by_id(id, fast) {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
