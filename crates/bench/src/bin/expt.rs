//! `expt` — regenerate the paper's tables and figures.
//!
//! ```text
//! expt all            # every experiment, DESIGN.md order
//! expt t3 f6          # selected experiments
//! expt --fast all     # smaller simulation windows
//! expt list           # registered experiments, scenarios and lint rules
//! expt bench          # time the simulator, write BENCH_platform.json
//! expt bench --quick  # CI-sized benchmark windows
//! expt lint           # determinism audit (nw-analyze); non-zero on findings
//! expt lint --json    # machine-readable findings for CI
//! expt lint --rules   # the rule registry (id + one-line contract)
//! expt faults [--quick] [--seed N]           # fault-injection parity harness
//! expt snapshot [--quick] [--seed N]         # checkpoint round-trip bit-identity matrix
//! expt trace --scenario mix --out mix.json   # Perfetto trace of a scenario
//! expt profile [--quick]                     # host-side phase breakdown
//! expt t11 --warm-fork                       # sweep grids off one warmed snapshot
//! expt --help         # the subcommand table
//! ```
//!
//! Exit codes follow one convention across every subcommand: `0` success,
//! `1` a check failed or output could not be written (lint findings,
//! scheduler/parity divergence, snapshot round-trip divergence, I/O
//! errors), `2` usage (unknown subcommand/experiment/scenario, malformed
//! flag values — including a bad `--seed`, which parses uniformly via
//! [`obs::take_seed_flag`] wherever it is accepted: `bench`, `trace`,
//! `profile`, `faults`, `snapshot`).

use nw_bench::experiments::{run_by_id, run_by_id_warm_fork, ALL_IDS, EXPERIMENTS};
use nw_bench::obs;

/// Parses the uniform `--seed` flag out of `args`, exiting 2 on a
/// malformed value (the shared usage failure mode).
fn take_seed_or_usage(args: &mut Vec<String>, subcommand: &str) -> Option<u64> {
    obs::take_seed_flag(args).unwrap_or_else(|e| {
        eprintln!("{subcommand}: {e}");
        std::process::exit(2);
    })
}

/// Prints the subcommand table (shared with `expt list` and pinned by the
/// smoke tests).
fn print_help() {
    println!("usage: expt [--fast] <subcommand> [args]");
    println!();
    println!("Subcommands:");
    print!("{}", obs::render_subcommands());
}

/// Prints the subcommand table, the experiment index, the
/// scenario-registry catalog and the determinism-audit rule registry.
fn print_list() {
    println!("Subcommands:");
    print!("{}", obs::render_subcommands());
    println!();
    println!("Experiments (run with `expt <id>`):");
    for e in EXPERIMENTS {
        println!("  {:<4} {}", e.id, e.title);
    }
    println!();
    println!("Scenario registry (nanowall::scenarios::ScenarioRegistry::standard):");
    for spec in nanowall::ScenarioRegistry::standard().specs() {
        println!("  {:<8} {}", spec.name, spec.summary);
    }
    println!();
    println!("Determinism-audit rules (run with `expt lint`):");
    for rule in nw_analyze::ALL_RULES {
        println!("  {:<8} {}", rule.id(), rule.description());
    }
}

/// `expt trace`: run a scenario traced, write the Perfetto JSON.
/// `--seed N` installs a seeded fault campaign so the trace shows the
/// fault tracks.
fn run_trace_cmd(args: &[String]) {
    let mut args = args.to_vec();
    let seed = take_seed_or_usage(&mut args, "trace");
    let mut scenario = "mix".to_owned();
    let mut out = "trace.json".to_owned();
    let mut cycles: u64 = 50_000;
    let mut buffer: usize = 1 << 16;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("trace: {what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--scenario" => scenario = grab("--scenario"),
            "--out" => out = grab("--out"),
            "--cycles" => {
                cycles = grab("--cycles").parse().unwrap_or_else(|e| {
                    eprintln!("trace: bad --cycles: {e}");
                    std::process::exit(2);
                });
            }
            "--buffer" => {
                buffer = grab("--buffer").parse().unwrap_or_else(|e| {
                    eprintln!("trace: bad --buffer: {e}");
                    std::process::exit(2);
                });
            }
            bad => {
                eprintln!(
                    "usage: expt trace [--scenario <name>] [--out <file>] [--cycles <n>] [--buffer <n>] [--seed <u64>] (unknown argument: {bad})"
                );
                std::process::exit(2);
            }
        }
    }
    let run = obs::run_trace(&scenario, cycles, buffer, seed).unwrap_or_else(|e| {
        eprintln!("trace: {e}");
        std::process::exit(2);
    });
    std::fs::write(&out, &run.json).unwrap_or_else(|e| {
        eprintln!("trace: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "TRACE  {scenario}  {cycles} cycles  {} events captured  {} dropped  -> {out}",
        run.events, run.dropped
    );
    print!("{}", run.heatmap_table);
}

/// `expt lint`: runs the determinism auditor over the workspace and exits
/// non-zero on any non-allowlisted finding (the CI gate).
fn run_lint(json: bool, rules: bool) {
    if rules {
        for rule in nw_analyze::ALL_RULES {
            println!("{:<8} {}", rule.id(), rule.description());
        }
        return;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("lint: cannot read the current directory: {e}");
        std::process::exit(2);
    });
    let root = nw_analyze::find_root(&cwd).unwrap_or_else(|| {
        eprintln!(
            "lint: no workspace root above {} (looked for {} or a [workspace] manifest)",
            cwd.display(),
            nw_analyze::ALLOWLIST_FILE
        );
        std::process::exit(2);
    });
    let report = nw_analyze::analyze(&root).unwrap_or_else(|e| {
        eprintln!("lint: cannot scan {}: {e}", root.display());
        std::process::exit(2);
    });
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        run_trace_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        let mut rest = args[1..].to_vec();
        let seed = take_seed_or_usage(&mut rest, "profile");
        if let Some(bad) = rest.iter().find(|a| *a != "--quick") {
            eprintln!("usage: expt profile [--quick] [--seed <u64>] (unknown argument: {bad})");
            std::process::exit(2);
        }
        let quick = rest.iter().any(|a| a == "--quick");
        print!("{}", obs::render_profile(&obs::run_profile(quick, seed)));
        return;
    }
    if args.first().map(String::as_str) == Some("faults") {
        let mut rest = args[1..].to_vec();
        let seed = take_seed_or_usage(&mut rest, "faults").unwrap_or(1);
        if let Some(bad) = rest.iter().find(|a| *a != "--quick") {
            eprintln!("usage: expt faults [--quick] [--seed <u64>] (unknown argument: {bad})");
            std::process::exit(2);
        }
        let quick = rest.iter().any(|a| a == "--quick");
        let run = nw_bench::faults::run_faults(quick, seed);
        print!("{}", run.table);
        if !run.ok {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("snapshot") {
        let mut rest = args[1..].to_vec();
        let seed = take_seed_or_usage(&mut rest, "snapshot");
        if let Some(bad) = rest.iter().find(|a| *a != "--quick") {
            eprintln!("usage: expt snapshot [--quick] [--seed <u64>] (unknown argument: {bad})");
            std::process::exit(2);
        }
        let quick = rest.iter().any(|a| a == "--quick");
        let check = nw_bench::snapshot::run_snapshot_check(quick, seed);
        print!("{}", check.table);
        if !check.ok {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("lint") {
        let json = args.iter().any(|a| a == "--json");
        let rules = args.iter().any(|a| a == "--rules");
        if let Some(bad) = args[1..].iter().find(|a| *a != "--json" && *a != "--rules") {
            eprintln!("usage: expt lint [--json] [--rules] (unknown argument: {bad})");
            std::process::exit(2);
        }
        run_lint(json, rules);
        return;
    }
    let mut args = args;
    let seed = take_seed_or_usage(&mut args, "bench");
    let fast = args.iter().any(|a| a == "--fast");
    let quick = args.iter().any(|a| a == "--quick");
    let warm_fork = args.iter().any(|a| a == "--warm-fork");
    // `--baseline <path>`: after a bench run, print a delta table against a
    // previously committed BENCH_platform.json (informational; only
    // bit-identity divergence fails the run, never timing).
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--baseline" {
                skip_next = true;
                return false;
            }
            *a != "--fast" && *a != "--quick" && *a != "--warm-fork"
        })
        .map(String::as_str)
        .collect();
    if ids == ["list"] {
        print_list();
        return;
    }
    if ids == ["bench"] {
        let report = nw_bench::bench::run_bench(quick || fast);
        print!("{}", report.render());
        if let Some(base_path) = baseline {
            match std::fs::read_to_string(&base_path) {
                Ok(json) => print!("{}", report.delta_table(&json)),
                Err(e) => eprintln!("cannot read baseline {base_path}: {e} (skipping delta)"),
            }
        }
        let path = "BENCH_platform.json";
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
        // Timing is informational; correctness is not. Any scheduler or
        // sweep divergence fails the run.
        let diverged = report.scheduler.iter().any(|e| !e.bit_identical)
            || report.sweeps.iter().any(|e| !e.identical);
        if diverged {
            eprintln!("bench: dense/active or serial/parallel divergence detected");
            std::process::exit(1);
        }
        // `--seed N` extends the parity gate to faulted runs: the same
        // scheduler/repeat bit-identity checks, under a seeded campaign
        // (the JSON above stays fault-free and baseline-comparable).
        if let Some(seed) = seed {
            let faulted = nw_bench::faults::run_faults(quick || fast, seed);
            print!("{}", faulted.table);
            if !faulted.ok {
                eprintln!("bench: faulted scheduler parity diverged (seed {seed})");
                std::process::exit(1);
            }
        }
        return;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: expt [--fast] [--warm-fork] <list | all | bench | lint | faults | snapshot | trace | profile | {}> (see `expt --help`)",
            ALL_IDS.join(" | ")
        );
        std::process::exit(2);
    }
    let selected: Vec<&str> = if ids.contains(&"all") {
        ALL_IDS.to_vec()
    } else {
        ids
    };
    for id in selected {
        let out = if warm_fork {
            run_by_id_warm_fork(id, fast)
        } else {
            run_by_id(id, fast)
        };
        match out {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
