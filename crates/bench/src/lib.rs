//! Experiment harness regenerating every table and figure of
//! "System-on-Chip Beyond the Nanometer Wall" (DAC 2003).
//!
//! Each submodule of [`experiments`] reproduces one claim of the paper (see
//! `DESIGN.md` §4 for the experiment index). Every experiment exposes a
//! structured `run(fast) -> …Result` function plus a `table()` rendering,
//! so tests can assert the *shape* of the result (who wins, where the knee
//! falls) while the `expt` binary prints the paper-style table.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p nw_bench --bin expt -- all
//! ```
//!
//! or a single experiment by id (`t1`, `t2`, `f3`, `f4`, `f5`, `f6`, `t3`,
//! `t4`, `t5`, `t6`, `t7`, `f1`, `f2`). The Criterion timing benches live in
//! `benches/paper.rs`.

pub mod bench;
pub mod experiments;
pub mod faults;
pub mod obs;
pub mod snapshot;
pub mod table;

pub use table::Table;
