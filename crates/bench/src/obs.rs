//! `expt trace` and `expt profile` — the observability subcommands.
//!
//! `trace` runs a registered scenario with a [`RingBufferSink`] installed,
//! exports the captured events as Chrome trace-event / Perfetto JSON
//! (open the file in `ui.perfetto.dev` or `chrome://tracing`), and appends
//! the NoC contention heatmap both inside the JSON and as a stdout table.
//!
//! `profile` runs a few representative rigs with a [`HostProfiler`]
//! installed and prints where the simulator process spends its wall-clock
//! time, phase by phase. The same data lands in `expt bench`'s JSON as the
//! `host_phase_breakdown` section, with the invariant that the attributed
//! phase times sum to (almost all of) the measured loop wall-clock —
//! lap-based attribution leaves no gaps.

use nanowall::scenarios::ScenarioRegistry;
use nanowall::{HostProfiler, ProfileReport, RingBufferSink};
use std::fmt::Write as _;
use std::time::Instant;

/// Every `expt` subcommand with its one-line description — the single
/// source for `expt --help`, `expt list`, and the smoke tests that pin
/// both.
pub const SUBCOMMANDS: &[(&str, &str)] = &[
    (
        "list",
        "registered experiments, scenarios, trace subcommands and lint rules",
    ),
    ("all", "run every experiment in DESIGN.md order"),
    (
        "<id>...",
        "run selected experiments (see `expt list` for ids; --warm-fork shares one warmed snapshot across sweep-grid points)",
    ),
    (
        "bench",
        "time the simulator, write BENCH_platform.json (--quick for CI windows)",
    ),
    (
        "lint",
        "determinism audit via nw-analyze; non-zero on findings (--json, --rules)",
    ),
    (
        "faults",
        "fault-injection determinism harness: seeded campaigns, scheduler parity (--quick, --seed)",
    ),
    (
        "snapshot",
        "checkpoint/restore bit-identity matrix: schedulers x faults x trace; non-zero on divergence (--quick, --seed)",
    ),
    (
        "trace",
        "run a scenario with tracing, write Perfetto JSON (--scenario <name> --out <file>, --seed injects faults)",
    ),
    (
        "profile",
        "host-side wall-clock phase breakdown of the main loop (--quick, --seed injects faults)",
    ),
];

/// Extracts the uniform `--seed <u64>` flag from `args`, removing both
/// tokens.
///
/// Every seed-taking subcommand (`bench`, `trace`, `profile`, `faults`)
/// parses the flag through this one function, so the syntax and the
/// failure mode are identical everywhere: a missing or non-`u64` value is
/// a usage error (`expt` exits 2).
///
/// # Errors
///
/// `--seed` present without a value, or with a value that does not parse
/// as `u64`.
pub fn take_seed_flag(args: &mut Vec<String>) -> Result<Option<u64>, String> {
    let Some(i) = args.iter().position(|a| a == "--seed") else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err("--seed needs a value".to_owned());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    raw.parse::<u64>()
        .map(Some)
        .map_err(|e| format!("bad --seed {raw:?}: {e}"))
}

/// Renders the subcommand table (the body of `expt --help`).
pub fn render_subcommands() -> String {
    let mut s = String::new();
    for (name, what) in SUBCOMMANDS {
        let _ = writeln!(s, "  {name:<10} {what}");
    }
    s
}

/// The outcome of one traced scenario run.
#[derive(Debug)]
pub struct TraceRun {
    /// The Chrome trace-event JSON (validated before being handed out).
    pub json: String,
    /// Events captured in the ring (after eviction).
    pub events: usize,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Rendered heatmap table for stdout.
    pub heatmap_table: String,
}

/// Runs registry scenario `name` for `cycles` cycles with a ring of
/// `buffer` events attached, and exports the capture as validated
/// Chrome/Perfetto JSON.
///
/// With `fault_seed`, a level-1.0 fault campaign (plus the default retry
/// policy) is installed first, so the exported timeline carries the fault
/// tracks — injections, retries and reroutes — alongside the traffic.
///
/// # Errors
///
/// An unknown scenario name, or (which would be a bug) the exporter
/// producing JSON its own validator rejects.
pub fn run_trace(
    name: &str,
    cycles: u64,
    buffer: usize,
    fault_seed: Option<u64>,
) -> Result<TraceRun, String> {
    let registry = ScenarioRegistry::standard();
    let mut rig = registry.build(name, true).ok_or_else(|| {
        let known: Vec<&str> = registry.specs().iter().map(|s| s.name).collect();
        format!("unknown scenario {name:?} (known: {})", known.join(", "))
    })?;
    if let Some(seed) = fault_seed {
        install_faults(&mut rig.platform, seed, cycles);
    }
    rig.platform
        .set_trace_sink(Box::new(RingBufferSink::new(buffer)));
    rig.run(cycles);
    let mut sink = rig
        .platform
        .take_trace_sink()
        .expect("sink was installed above");
    let ring = sink
        .as_any_mut()
        .downcast_mut::<RingBufferSink>()
        .expect("installed sink is a RingBufferSink");
    let dropped = ring.dropped();
    let events = ring.drain();
    let heatmap = rig.platform.noc_heatmap();
    let json = nanowall::export_chrome_trace(&events, dropped, heatmap.as_ref());
    nanowall::validate_chrome_trace(&json)
        .map_err(|e| format!("exporter produced an invalid trace: {e}"))?;
    Ok(TraceRun {
        json,
        events: events.len(),
        dropped,
        heatmap_table: heatmap.map(|h| h.render(8)).unwrap_or_default(),
    })
}

/// One profiled rig: the phase breakdown plus the independently measured
/// total wall-clock of the run it profiled.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// Rig label.
    pub rig: String,
    /// Simulated window in cycles.
    pub cycles: u64,
    /// Wall-clock of the whole `run` call, measured outside the profiler.
    pub measured_secs: f64,
    /// The profiler's per-phase attribution.
    pub report: ProfileReport,
}

/// Installs a seeded level-1.0 fault campaign plus the default retry
/// policy — the shared "make this run faulty" setup of the seed-taking
/// observability subcommands.
fn install_faults(platform: &mut nanowall::FppaPlatform, seed: u64, cycles: u64) {
    let shape = platform.fault_shape();
    platform.install_fault_campaign(nanowall::FaultCampaign::generate(
        seed,
        cycles,
        &nanowall::FaultRates::scaled(1.0),
        &shape,
    ));
    platform.set_retry_policy(nanowall::RetryPolicy::default());
}

/// Profiles the scheduler main loop on representative scenario rigs.
/// `quick` shrinks the windows to CI size. With `fault_seed`, the rigs run
/// under a seeded campaign so the breakdown includes the fault/retry
/// phase.
pub fn run_profile(quick: bool, fault_seed: Option<u64>) -> Vec<ProfileEntry> {
    let win = if quick { 200_000 } else { 1_000_000 };
    let registry = ScenarioRegistry::standard();
    // One busy rig (mix: telecom + IPv4 sharing the fabric) and one
    // mostly-idle rig (modem: bursts far apart) — the two regimes have
    // opposite phase profiles (step-dominated vs fast-forward-dominated).
    [("mix", win / 2), ("modem", win)]
        .iter()
        .map(|&(name, cycles)| {
            let mut rig = registry
                .build(name, true)
                .expect("standard registry scenario");
            if let Some(seed) = fault_seed {
                install_faults(&mut rig.platform, seed, cycles);
            }
            rig.platform.set_host_profiler(HostProfiler::new());
            let t = Instant::now();
            rig.run(cycles);
            let measured_secs = t.elapsed().as_secs_f64();
            let report = rig
                .platform
                .take_host_profiler()
                .expect("profiler was installed above")
                .report();
            ProfileEntry {
                rig: name.to_owned(),
                cycles,
                measured_secs,
                report,
            }
        })
        .collect()
}

/// Renders profile entries for stdout.
pub fn render_profile(entries: &[ProfileEntry]) -> String {
    let mut s = String::new();
    for e in entries {
        let _ = writeln!(
            s,
            "PROFILE  {}  {} cycles  measured {:.3}s  attributed {:.3}s ({:.1}%)",
            e.rig,
            e.cycles,
            e.measured_secs,
            e.report.total_secs,
            if e.measured_secs > 0.0 {
                e.report.total_secs / e.measured_secs * 100.0
            } else {
                0.0
            }
        );
        for line in e.report.render().lines().skip(1) {
            let _ = writeln!(s, "{line}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_rejects_unknown_scenario() {
        let err = run_trace("no-such-scenario", 1_000, 64, None).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("mix"), "lists known scenarios: {err}");
    }

    #[test]
    fn trace_on_mix_validates_and_captures_events() {
        let run = run_trace("mix", 20_000, 4096, None).expect("mix traces cleanly");
        assert!(run.events > 0, "a loaded scenario emits events");
        assert!(run.json.contains("\"traceEvents\""));
        assert!(
            run.heatmap_table.contains("busiest links"),
            "{}",
            run.heatmap_table
        );
    }

    #[test]
    fn profile_attribution_covers_measured_wall_clock() {
        let entries = run_profile(true, None);
        assert_eq!(entries.len(), 2);
        for e in &entries {
            // Lap-based attribution leaves no gaps between arming (run
            // start) and pausing (run end), so the phase sum must land
            // within 5% of the independently measured run wall-clock.
            assert!(
                e.report.total_secs <= e.measured_secs * 1.05,
                "{}: attributed {} > measured {}",
                e.rig,
                e.report.total_secs,
                e.measured_secs
            );
            assert!(
                e.report.total_secs >= e.measured_secs * 0.95,
                "{}: attributed {} misses measured {}",
                e.rig,
                e.report.total_secs,
                e.measured_secs
            );
        }
        assert!(render_profile(&entries).contains("PROFILE  mix"));
    }

    #[test]
    fn seed_flag_parses_uniformly() {
        let mut none = vec!["--quick".to_owned()];
        assert_eq!(take_seed_flag(&mut none), Ok(None));
        assert_eq!(none, vec!["--quick".to_owned()]);

        let mut ok = vec!["--seed".to_owned(), "42".to_owned(), "--quick".to_owned()];
        assert_eq!(take_seed_flag(&mut ok), Ok(Some(42)));
        assert_eq!(ok, vec!["--quick".to_owned()], "both tokens removed");

        let mut bad = vec!["--seed".to_owned(), "banana".to_owned()];
        assert!(take_seed_flag(&mut bad).is_err());
        let mut missing = vec!["--seed".to_owned()];
        assert!(take_seed_flag(&mut missing).is_err());
        let mut negative = vec!["--seed".to_owned(), "-1".to_owned()];
        assert!(take_seed_flag(&mut negative).is_err());
    }

    #[test]
    fn seeded_trace_captures_fault_events() {
        let run = run_trace("mix", 20_000, 1 << 16, Some(3)).expect("faulted mix traces cleanly");
        assert!(
            run.json.contains("\"faults\""),
            "fault track metadata missing from the export"
        );
        assert!(
            run.json.contains("\"retry\"") || run.json.contains("link-"),
            "no fault/retry instants captured"
        );
    }

    #[test]
    fn subcommand_table_mentions_every_subcommand() {
        let help = render_subcommands();
        for (name, _) in SUBCOMMANDS {
            assert!(help.contains(name), "missing {name} in:\n{help}");
        }
    }
}
