//! Property tests for the workload subsystem: generator determinism and
//! item/byte/flit conservation across pipeline stages.

use nw_apps::{
    crypto_pipeline, generate_burst, modem_pipeline, video_pipeline, CryptoParams, ModemParams,
    PipelineSpec, StageDef, TrafficConfig, VideoParams,
};
use proptest::prelude::*;

/// A random linear chain with jittered stage sizes (always a valid DAG).
fn arb_chain() -> impl Strategy<Value = PipelineSpec> {
    (
        2usize..8,                               // stages
        prop::collection::vec(16u64..512, 2..8), // input bytes per stage
        prop::collection::vec(10u64..400, 2..8), // compute weights
    )
        .prop_map(|(n, sizes, weights)| {
            let n = n.min(sizes.len()).min(weights.len());
            let mut p = PipelineSpec::new("arb-chain");
            let ids: Vec<usize> = (0..n)
                .map(|i| {
                    p.add_stage(StageDef::new(&format!("s{i}"), sizes[i]).with_compute(weights[i]))
                })
                .collect();
            for w in ids.windows(2) {
                p.link(w[0], w[1], 1.0);
            }
            p.entry(ids[0]);
            p
        })
}

proptest! {
    // Pinned effort for CI determinism; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The burst generator is a pure function of (spec, config): equal
    /// seeds reproduce byte-identical per-stage accounting.
    #[test]
    fn bursts_deterministic_per_seed(spec in arb_chain(), seed in any::<u64>(), items in 1u64..300) {
        let cfg = TrafficConfig { seed, items, jitter: 0.3 };
        prop_assert_eq!(
            generate_burst(&spec, &cfg, 8),
            generate_burst(&spec, &cfg, 8)
        );
    }

    /// Unit-multiplicity chains conserve items exactly: every stage sees
    /// the full burst, nothing is dropped or duplicated.
    #[test]
    fn chains_conserve_items(spec in arb_chain(), seed in any::<u64>(), items in 1u64..300) {
        let t = generate_burst(&spec, &TrafficConfig { seed, items, jitter: 0.25 }, 8);
        for s in &t.per_stage {
            prop_assert_eq!(s.items, items);
        }
    }

    /// Byte counts scale with the declared stage-size ratios: a stage
    /// consuming the same input size as its producer sees the same bytes,
    /// and every flit count covers its byte count at 8 B per flit.
    #[test]
    fn bytes_follow_size_ratios(spec in arb_chain(), seed in any::<u64>()) {
        let t = generate_burst(&spec, &TrafficConfig { seed, items: 128, jitter: 0.0 }, 8);
        for w in spec.links.windows(1) {
            let (from, to) = (w[0].from, w[0].to);
            let (a, b) = (spec.stages[from].input_bytes, spec.stages[to].input_bytes);
            if a == b {
                prop_assert_eq!(t.per_stage[from].bytes, t.per_stage[to].bytes);
            }
        }
        for s in &t.per_stage {
            prop_assert!(s.flits * 8 >= s.bytes);
            prop_assert!(s.flits <= s.bytes.div_ceil(8) + s.items);
        }
    }

    /// The three shipped workloads lower to valid applications whose
    /// analytic rates conserve flow: every lane/chain/channel entry item
    /// reaches the pipeline tail exactly once.
    #[test]
    fn workload_rates_conserve_flow(rate in 0.0005f64..0.01) {
        let v = video_pipeline(&VideoParams::default());
        let rates = v.spec.stage_rates(&vec![rate; v.lanes.len()]);
        for lane in &v.lanes {
            prop_assert!((rates[lane.ingest] - rate).abs() < 1e-12);
            prop_assert!((rates[lane.pack] - rate).abs() < 1e-12);
        }

        let m = modem_pipeline(&ModemParams::default());
        let rates = m.spec.stage_rates(&vec![rate; m.chains.len()]);
        for chain in &m.chains {
            prop_assert!((rates[chain.mac_out] - rate).abs() < 1e-12);
        }

        let c = crypto_pipeline(&CryptoParams::default());
        let rates = c.spec.stage_rates(&vec![rate; c.channels.len()]);
        for ch in &c.channels {
            prop_assert!((rates[ch.egress] - rate).abs() < 1e-12);
        }
    }

    /// Shipped workloads generate deterministic, conserving bursts too
    /// (multi-entry, branching graphs — not just chains).
    #[test]
    fn workload_bursts_deterministic_and_conserving(seed in any::<u64>()) {
        let v = video_pipeline(&VideoParams::default());
        let cfg = TrafficConfig { seed, items: 240, jitter: 0.2 };
        let a = generate_burst(&v.spec, &cfg, 8);
        prop_assert_eq!(&a, &generate_burst(&v.spec, &cfg, 8));
        // 240 slices round-robin over 4 lanes: 60 each, all delivered to
        // each lane's packer.
        for lane in &v.lanes {
            prop_assert_eq!(a.per_stage[lane.ingest].items, 60);
            prop_assert_eq!(a.per_stage[lane.pack].items, 60);
        }
        // The shared rate-control stage sees every slice once.
        prop_assert_eq!(a.per_stage[v.rate_control].items, 240);
    }
}
