//! The modem baseband chain: latency-critical and twoway-heavy.
//!
//! Symbol bursts arrive at a fixed air-interface rate and traverse
//! rf-frontend → sync → demodulate → deinterleave → fec-decode → mac-out.
//! What distinguishes the shape from packet forwarding is the chatter: the
//! demodulator queries the channel estimator synchronously (twice per
//! burst) and the FEC decoder reports link quality to the adaptation
//! object and waits for the new modulation order — small request/reply
//! round trips on the critical path, which is exactly the traffic the
//! paper's multithreaded PEs must hide to hold the air-interface deadline.

use crate::stage::{PipelineSpec, StageDef};
use nw_dsoc::Domain;

/// Tunable parameters of the modem workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModemParams {
    /// Parallel carrier chains (one per aggregated carrier).
    pub carriers: usize,
    /// Bytes per symbol burst.
    pub burst_bytes: u64,
    /// Channel-estimate queries per burst (twoway).
    pub chan_queries: u32,
    /// FEC decode compute per burst (the heavy stage).
    pub fec_cycles: u64,
}

impl Default for ModemParams {
    fn default() -> Self {
        ModemParams {
            carriers: 2,
            burst_bytes: 192,
            chan_queries: 2,
            fec_cycles: 640,
        }
    }
}

/// Stage indices of one carrier chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModemChain {
    /// RF front-end (entry stage).
    pub frontend: usize,
    /// Timing/frequency sync.
    pub sync: usize,
    /// Demodulation (queries the channel estimator).
    pub demod: usize,
    /// Deinterleaving.
    pub deinterleave: usize,
    /// FEC decoding (queries link adaptation).
    pub fec: usize,
    /// MAC hand-off (egress stage).
    pub mac_out: usize,
}

/// The built modem workload.
#[derive(Debug, Clone)]
pub struct ModemWorkload {
    /// The stage graph.
    pub spec: PipelineSpec,
    /// Per-carrier chains.
    pub chains: Vec<ModemChain>,
    /// Shared channel-estimator stage index (twoway).
    pub channel_est: usize,
    /// Shared link-adaptation stage index (twoway).
    pub link_adapt: usize,
}

/// Builds the modem baseband chain with `params.carriers` carrier chains
/// sharing one channel estimator and one link-adaptation object.
///
/// # Panics
///
/// Panics if `params.carriers == 0`.
pub fn modem_pipeline(params: &ModemParams) -> ModemWorkload {
    assert!(params.carriers > 0, "modem needs at least one carrier");
    let mut p = PipelineSpec::new("modem-baseband");
    let channel_est = p.add_stage(
        StageDef::new("channel-est", 32)
            .with_reply(64)
            .with_compute(90)
            .with_working_set(256)
            .with_state(32 * 1024)
            .with_domain(Domain::Signal),
    );
    let link_adapt = p.add_stage(
        StageDef::new("link-adapt", 16)
            .with_reply(16)
            .with_compute(50)
            .with_state(4 * 1024)
            .with_domain(Domain::Control),
    );
    let mut chains = Vec::with_capacity(params.carriers);
    for c in 0..params.carriers {
        let frontend = p.add_stage(
            StageDef::new(&format!("rf-frontend-{c}"), params.burst_bytes)
                .with_compute(80)
                .with_working_set(128)
                .with_state(4 * 1024)
                .with_domain(Domain::Signal),
        );
        let sync = p.add_stage(
            StageDef::new(&format!("sync-{c}"), params.burst_bytes)
                .with_compute(140)
                .with_working_set(256)
                .with_state(8 * 1024)
                .with_domain(Domain::Signal),
        );
        let demod = p.add_stage(
            StageDef::new(&format!("demod-{c}"), params.burst_bytes)
                .with_compute(320)
                .with_working_set(512)
                .with_state(16 * 1024)
                .with_domain(Domain::Signal),
        );
        let deinterleave = p.add_stage(
            StageDef::new(&format!("deinterleave-{c}"), params.burst_bytes)
                .with_compute(110)
                .with_working_set(1024)
                .with_state(16 * 1024)
                .with_domain(Domain::Generic),
        );
        let fec = p.add_stage(
            StageDef::new(&format!("fec-decode-{c}"), params.burst_bytes)
                .with_compute(params.fec_cycles)
                .with_working_set(2048)
                .with_state(32 * 1024)
                .with_domain(Domain::Signal),
        );
        let mac_out = p.add_stage(
            StageDef::new(&format!("mac-out-{c}"), params.burst_bytes / 2)
                .with_compute(60)
                .with_working_set(64)
                .with_state(8 * 1024)
                .with_domain(Domain::Control),
        );
        p.link(frontend, sync, 1.0)
            .link(sync, demod, 1.0)
            .link(demod, channel_est, params.chan_queries as f64)
            .link(demod, deinterleave, 1.0)
            .link(deinterleave, fec, 1.0)
            .link(fec, link_adapt, 1.0)
            .link(fec, mac_out, 1.0)
            .entry(frontend);
        chains.push(ModemChain {
            frontend,
            sync,
            demod,
            deinterleave,
            fec,
            mac_out,
        });
    }
    ModemWorkload {
        spec: p,
        chains,
        channel_est,
        link_adapt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let w = modem_pipeline(&ModemParams::default());
        assert_eq!(w.chains.len(), 2);
        assert_eq!(w.spec.n_stages(), 2 + 2 * 6);
        let (app, layout) = w.spec.to_application().unwrap();
        assert_eq!(app.objects().len(), w.spec.n_stages());
        assert!(layout.services.is_empty(), "modem runs entirely on PEs");
    }

    #[test]
    fn twoway_heavy() {
        let w = modem_pipeline(&ModemParams::default());
        // Per burst: 2 chan queries + 1 link-adapt report are twoway; 5
        // chain hand-offs are oneway → 3/8.
        assert!(
            w.spec.twoway_fraction() > 0.3,
            "{}",
            w.spec.twoway_fraction()
        );
    }

    #[test]
    fn shared_estimator_sees_all_carriers() {
        let w = modem_pipeline(&ModemParams::default());
        let rates = w.spec.stage_rates(&[0.001; 2]);
        assert!((rates[w.channel_est] - 0.004).abs() < 1e-12);
        assert!((rates[w.link_adapt] - 0.002).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one carrier")]
    fn zero_carriers_panics() {
        modem_pipeline(&ModemParams {
            carriers: 0,
            ..ModemParams::default()
        });
    }
}
