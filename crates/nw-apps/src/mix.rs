//! Mixed-workload scenarios: independent applications on one fabric.
//!
//! The paper's platform claim is not that one application runs well on the
//! FPPA — it is that *heterogeneous* applications (packet forwarding next
//! to media next to baseband) share a single fabric under quantified
//! latency budgets. This module builds those mixes as one combined
//! [`PipelineSpec`]: the component workloads keep their own stage graphs
//! (joined with [`PipelineSpec::absorb`], so no links cross between them)
//! and interfere only through the platform — shared PEs chosen by the
//! mapper, the shared NoC, and shared service nodes.
//!
//! [`video_ipv4_mix`] is the first family member: the frame-sliced video
//! codec of [`crate::video`] beside an IPv4 fast path expressed as a stage
//! graph (classify → shared route-lookup (twoway) → rewrite → emit, the
//! same shape and compute weights as `nw_ipv4::app::fast_path_app`). The
//! interference observable is the end-to-end latency distribution per
//! workload: the video lanes hammer the frame store and the NoC with large
//! slices while the packet chains need short lookup round trips — the
//! T11 experiment sweeps both offered loads and watches each workload's
//! p99 and deadline misses.

use crate::stage::{PipelineSpec, StageDef};
use crate::video::{video_pipeline, VideoLane, VideoParams};
use nw_dsoc::Domain;
use nw_ipv4::app::FastPathWeights;

/// Tunable parameters of the video + IPv4 mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixParams {
    /// The video-codec half (lanes, slice size, motion-estimation cost).
    pub video: VideoParams,
    /// Parallel packet-worker chains on the IPv4 half.
    pub ipv4_workers: usize,
    /// Wire bytes per IPv4 packet (worst-case minimum-size packets).
    pub packet_bytes: u64,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            video: VideoParams::default(),
            ipv4_workers: 4,
            // The worst-case minimum IPv4 packet, matching the T3 rig.
            packet_bytes: 40,
        }
    }
}

/// Stage indices of one IPv4 worker chain within the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixPacketChain {
    /// Packet classification (entry stage).
    pub classify: usize,
    /// TTL/checksum rewrite.
    pub rewrite: usize,
    /// Egress emission.
    pub emit: usize,
}

/// The built mix: one combined stage graph plus per-workload directories.
#[derive(Debug, Clone)]
pub struct MixWorkload {
    /// The combined stage graph (video stages first, then IPv4).
    pub spec: PipelineSpec,
    /// Per-lane stage indices of the video half (valid in `spec`).
    pub video_lanes: Vec<VideoLane>,
    /// The video half's shared rate-control stage index.
    pub rate_control: usize,
    /// Every stage index belonging to the video workload.
    pub video_stages: Vec<usize>,
    /// Per-chain stage indices of the IPv4 half.
    pub ipv4_chains: Vec<MixPacketChain>,
    /// The shared route-lookup stage index (twoway, one per mix).
    pub route_lookup: usize,
    /// Every stage index belonging to the IPv4 workload.
    pub ipv4_stages: Vec<usize>,
}

/// Builds the video + IPv4 mix: `params.video.lanes` codec lanes and
/// `params.ipv4_workers` packet chains sharing one route-lookup object,
/// absorbed into a single application graph with two entry families.
///
/// # Panics
///
/// Panics if `params.video.lanes == 0` or `params.ipv4_workers == 0`.
pub fn video_ipv4_mix(params: &MixParams) -> MixWorkload {
    assert!(
        params.ipv4_workers > 0,
        "mix needs at least one IPv4 worker chain"
    );
    let video = video_pipeline(&params.video);
    let mut spec = PipelineSpec::new("mix-video-ipv4");
    let voffset = spec.absorb(&video.spec);
    debug_assert_eq!(voffset, 0, "video absorbs into an empty spec");
    let video_stages: Vec<usize> = (0..video.spec.n_stages()).collect();

    // The IPv4 fast path as a stage graph, mirroring
    // `nw_ipv4::app::fast_path_app`: a shared twoway route-lookup object
    // (the classifier blocks on it per packet — the latency-critical round
    // trip of this workload) and oneway classify → rewrite → emit chains.
    // The per-stage compute costs are the T3 workload's own
    // `FastPathWeights`, so the mix's packet half stays in sync with the
    // standalone ipv4 rig it restates.
    let weights = FastPathWeights::default();
    let mut ipv4_stages = Vec::new();
    let route_lookup = spec.add_stage(
        StageDef::new("route-lookup", 8)
            .with_reply(8)
            .with_compute(weights.lookup_cycles)
            .with_working_set(32)
            .with_state(2 * 1024 * 1024)
            .with_domain(Domain::PacketHeader),
    );
    ipv4_stages.push(route_lookup);
    let mut ipv4_chains = Vec::with_capacity(params.ipv4_workers);
    for w in 0..params.ipv4_workers {
        let classify = spec.add_stage(
            StageDef::new(&format!("ip-classify-{w}"), 44)
                .with_compute(weights.classify_cycles)
                .with_working_set(40)
                .with_state(4 * 1024)
                .with_domain(Domain::PacketHeader),
        );
        let rewrite = spec.add_stage(
            StageDef::new(&format!("ip-rewrite-{w}"), 44)
                .with_compute(weights.rewrite_cycles)
                .with_working_set(40)
                .with_state(4 * 1024)
                .with_domain(Domain::PacketHeader),
        );
        let emit = spec.add_stage(
            StageDef::new(&format!("ip-emit-{w}"), params.packet_bytes)
                .with_compute(weights.emit_cycles)
                .with_working_set(16)
                .with_state(2 * 1024)
                .with_domain(Domain::PacketHeader),
        );
        spec.link(classify, route_lookup, 1.0)
            .link(classify, rewrite, 1.0)
            .link(rewrite, emit, 1.0)
            .entry(classify);
        ipv4_stages.extend([classify, rewrite, emit]);
        ipv4_chains.push(MixPacketChain {
            classify,
            rewrite,
            emit,
        });
    }

    MixWorkload {
        spec,
        video_lanes: video.lanes,
        rate_control: video.rate_control,
        video_stages,
        ipv4_chains,
        route_lookup,
        ipv4_stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_combines_both_graphs_disjointly() {
        let params = MixParams::default();
        let m = video_ipv4_mix(&params);
        let video_n = 1 + params.video.lanes * 5;
        let ipv4_n = 1 + params.ipv4_workers * 3;
        assert_eq!(m.spec.n_stages(), video_n + ipv4_n);
        assert_eq!(m.video_stages.len(), video_n);
        assert_eq!(m.ipv4_stages.len(), ipv4_n);
        // Entries: one per video lane plus one per packet chain.
        assert_eq!(
            m.spec.entries.len(),
            params.video.lanes + params.ipv4_workers
        );
        // Disjoint: no link crosses the workload boundary.
        for l in &m.spec.links {
            let from_video = m.video_stages.contains(&l.from);
            let to_video = m.video_stages.contains(&l.to);
            assert_eq!(from_video, to_video, "link {l:?} crosses workloads");
        }
        // The combined graph lowers onto one valid application.
        let (app, layout) = m.spec.to_application().expect("mix lowers");
        assert_eq!(app.objects().len(), m.spec.n_stages());
        // The video half keeps its per-lane memory service demands.
        assert_eq!(layout.services.len(), params.video.lanes);
    }

    #[test]
    fn mix_rates_stay_per_workload() {
        let m = video_ipv4_mix(&MixParams::default());
        // 4 video entries at 0.001, 4 ipv4 entries at 0.01.
        let mut rates = vec![0.001; 4];
        rates.extend([0.01; 4]);
        let stage_rates = m.spec.stage_rates(&rates);
        // Each classifier queries the shared lookup once per packet.
        assert!((stage_rates[m.route_lookup] - 0.04).abs() < 1e-12);
        // Video rate control sees one query per slice per lane.
        assert!((stage_rates[m.rate_control] - 0.004).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one IPv4 worker")]
    fn zero_workers_panics() {
        video_ipv4_mix(&MixParams {
            ipv4_workers: 0,
            ..MixParams::default()
        });
    }
}
