//! nw-apps — application workloads for the FPPA platform.
//!
//! The paper's platform argument (§7.1) rests on running *real application
//! pipelines* on the fabric, not just the IPv4 case study. This crate is
//! the workload-modeling subsystem: a stage-graph model over the `nw-dsoc`
//! object layer plus three characterized workloads, each stressing a
//! different traffic shape:
//!
//! * [`video`] — the frame-sliced video codec pipeline: memory-bound
//!   (reference-frame fetches from a shared frame store), mostly oneway
//!   streaming flow with 2:1 compression at the entropy coder.
//! * [`modem`] — the modem baseband chain: latency-critical and
//!   twoway-heavy (channel-estimate and link-adaptation round trips on the
//!   burst critical path).
//! * [`crypto`] — the crypto offload rig: hwip-bound bulk transfer (block
//!   streaming through shared AES/hash engines behind the NoC).
//! * [`mix`] — mixed-workload scenarios: independent workloads absorbed
//!   into one application graph ([`PipelineSpec::absorb`]) so they share a
//!   fabric and interfere only through platform resources — the video +
//!   IPv4 interference family of experiment T11.
//!
//! [`stage`] holds the model ([`PipelineSpec`] lowering onto
//! [`nw_dsoc::Application`]); [`traffic`] generates deterministic,
//! conservation-checked workload bursts for analysis and property tests.
//! The platform rigs that execute these pipelines live in
//! `nanowall::scenarios` (this crate stays platform-independent, like
//! `nw-ipv4`).

pub mod crypto;
pub mod mix;
pub mod modem;
pub mod stage;
pub mod traffic;
pub mod video;

pub use crypto::{crypto_pipeline, CryptoChannel, CryptoParams, CryptoWorkload};
pub use mix::{video_ipv4_mix, MixPacketChain, MixParams, MixWorkload};
pub use modem::{modem_pipeline, ModemChain, ModemParams, ModemWorkload};
pub use stage::{
    BuildPipelineError, PipelineLayout, PipelineSpec, ServiceDemand, ServiceKind, StageDef,
    StageLink,
};
pub use traffic::{generate_burst, BurstTraffic, StageTraffic, TrafficConfig};
pub use video::{video_pipeline, VideoLane, VideoParams, VideoWorkload};
