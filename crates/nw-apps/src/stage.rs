//! The stage-graph workload model.
//!
//! A [`PipelineSpec`] describes a multi-stage application pipeline the way
//! §7.1's platform workloads are characterized: per-stage compute cost,
//! working-set size, message shapes between stages, and — where a stage
//! leans on the platform rather than its own PE — a per-item service demand
//! against a shared memory macro, eFPGA fabric or hardwired IP block.
//!
//! The spec lowers onto the `nw-dsoc` application model via
//! [`PipelineSpec::to_application`]: one object per stage, one method per
//! object, call edges for the links. Everything the DSOC layer offers
//! (steady-state rate propagation, load/traffic analysis, MultiFlex
//! mapping) then applies to the workload unchanged. The service demands
//! ride alongside in the returned [`PipelineLayout`] because they are a
//! *platform* concern — the rig constructors in `nanowall::scenarios` turn
//! them into runtime service bindings.

use nw_dsoc::{Application, BuildAppError, Domain, MethodDef, ObjectDef};
use nw_types::ObjectId;
use std::fmt;

/// Which platform service class a stage offloads to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// A shared memory macro (reference frames, sample buffers).
    Memory,
    /// A hardwired IP block (cipher core, codec engine).
    HwIp,
    /// An embedded FPGA fabric kernel.
    Fabric,
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceKind::Memory => write!(f, "memory"),
            ServiceKind::HwIp => write!(f, "hwip"),
            ServiceKind::Fabric => write!(f, "fabric"),
        }
    }
}

/// A per-item synchronous offload a stage performs against a platform
/// service node (each call blocks the hardware thread for the round trip —
/// the latency multithreading hides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceDemand {
    /// Service class the stage needs.
    pub kind: ServiceKind,
    /// Request payload per call.
    pub request_bytes: u64,
    /// Response payload per call.
    pub reply_bytes: u64,
    /// Synchronous calls per processed item.
    pub calls_per_item: u32,
}

impl ServiceDemand {
    /// Bytes crossing the NoC per processed item (requests + replies).
    pub fn bytes_per_item(&self) -> u64 {
        (self.request_bytes + self.reply_bytes) * self.calls_per_item as u64
    }
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDef {
    /// Stage name (becomes the DSOC object name).
    pub name: String,
    /// Marshalled payload consumed per item (the method's argument bytes).
    pub input_bytes: u64,
    /// Reply payload; `> 0` makes the stage twoway (it answers its caller).
    pub reply_bytes: u64,
    /// Compute cost per item in GP-RISC baseline cycles.
    pub compute_cycles: u64,
    /// Working set touched per item in the PE-local scratchpad.
    pub working_set_bytes: u64,
    /// Persistent state footprint (placement constraint input).
    pub state_bytes: u64,
    /// Kernel domain (drives ASIP/DSP speedups on matched PEs).
    pub domain: Domain,
    /// Optional per-item offload to a platform service node.
    pub service: Option<ServiceDemand>,
}

impl StageDef {
    /// A oneway stage consuming `input_bytes` per item.
    pub fn new(name: &str, input_bytes: u64) -> Self {
        StageDef {
            name: name.to_owned(),
            input_bytes,
            reply_bytes: 0,
            compute_cycles: 0,
            working_set_bytes: 0,
            state_bytes: 0,
            domain: Domain::Generic,
            service: None,
        }
    }

    /// Makes the stage twoway with the given reply payload.
    pub fn with_reply(mut self, bytes: u64) -> Self {
        self.reply_bytes = bytes;
        self
    }

    /// Sets the per-item compute cost.
    pub fn with_compute(mut self, cycles: u64) -> Self {
        self.compute_cycles = cycles;
        self
    }

    /// Sets the per-item working set.
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Sets the persistent state footprint.
    pub fn with_state(mut self, bytes: u64) -> Self {
        self.state_bytes = bytes;
        self
    }

    /// Sets the kernel domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Attaches a per-item service demand.
    pub fn with_service(mut self, s: ServiceDemand) -> Self {
        self.service = Some(s);
        self
    }
}

/// A directed link: each item processed by `from` hands `items_per_item`
/// items to `to` on average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageLink {
    /// Producing stage index.
    pub from: usize,
    /// Consuming stage index.
    pub to: usize,
    /// Mean downstream items per upstream item.
    pub items_per_item: f64,
}

/// Errors from [`PipelineSpec`] validation/lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildPipelineError {
    /// A link or entry references a stage index out of range.
    UnknownStage(usize),
    /// The underlying DSOC application rejected the lowered graph.
    App(BuildAppError),
}

impl fmt::Display for BuildPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPipelineError::UnknownStage(s) => write!(f, "unknown stage index {s}"),
            BuildPipelineError::App(e) => write!(f, "application lowering: {e}"),
        }
    }
}

impl std::error::Error for BuildPipelineError {}

impl From<BuildAppError> for BuildPipelineError {
    fn from(e: BuildAppError) -> Self {
        BuildPipelineError::App(e)
    }
}

/// Stage → DSOC object correspondence plus the service demands that do not
/// lower into the application graph.
#[derive(Debug, Clone)]
pub struct PipelineLayout {
    /// `objects[stage index]` is the stage's DSOC object.
    pub objects: Vec<ObjectId>,
    /// `(stage index, demand)` for every stage with a service demand.
    pub services: Vec<(usize, ServiceDemand)>,
}

/// A multi-stage application pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Pipeline name.
    pub name: String,
    /// The stages.
    pub stages: Vec<StageDef>,
    /// Links between stages.
    pub links: Vec<StageLink>,
    /// Entry stage indices (driven by external traffic).
    pub entries: Vec<usize>,
}

impl PipelineSpec {
    /// Creates an empty pipeline.
    pub fn new(name: &str) -> Self {
        PipelineSpec {
            name: name.to_owned(),
            stages: Vec::new(),
            links: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Adds a stage, returning its index.
    pub fn add_stage(&mut self, s: StageDef) -> usize {
        self.stages.push(s);
        self.stages.len() - 1
    }

    /// Links `from` to `to` with the given multiplicity.
    pub fn link(&mut self, from: usize, to: usize, items_per_item: f64) -> &mut Self {
        self.links.push(StageLink {
            from,
            to,
            items_per_item,
        });
        self
    }

    /// Declares `stage` as an entry point.
    pub fn entry(&mut self, stage: usize) -> &mut Self {
        self.entries.push(stage);
        self
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Appends every stage, link and entry of `other` into this pipeline,
    /// returning the index offset its stages landed at (stage `i` of
    /// `other` becomes stage `offset + i` here). The graphs stay disjoint —
    /// no links are added between them — which is exactly the shape of a
    /// workload *mix*: independent applications placed on one fabric,
    /// interfering only through shared platform resources.
    pub fn absorb(&mut self, other: &PipelineSpec) -> usize {
        let offset = self.stages.len();
        self.stages.extend(other.stages.iter().cloned());
        for l in &other.links {
            self.links.push(StageLink {
                from: l.from + offset,
                to: l.to + offset,
                items_per_item: l.items_per_item,
            });
        }
        for &e in &other.entries {
            self.entries.push(e + offset);
        }
        offset
    }

    /// Compute cost of one item traversing the whole pipeline once
    /// (baseline cycles, weighted by link multiplicities from entry rates
    /// of 1 item per cycle split evenly across entries).
    pub fn compute_per_item(&self) -> f64 {
        let rates = self.stage_rates(&vec![
            1.0 / self.entries.len().max(1) as f64;
            self.entries.len()
        ]);
        self.stages
            .iter()
            .zip(&rates)
            .map(|(s, r)| s.compute_cycles as f64 * r)
            .sum()
    }

    /// Steady-state item rate per stage for the given per-entry rates
    /// (items per cycle), propagated through the link graph.
    ///
    /// # Panics
    ///
    /// Panics if `entry_rates.len() != self.entries.len()` or the link
    /// graph has a cycle (the lowering rejects both cases with an error —
    /// use [`PipelineSpec::to_application`] to validate first).
    pub fn stage_rates(&self, entry_rates: &[f64]) -> Vec<f64> {
        assert_eq!(
            entry_rates.len(),
            self.entries.len(),
            "one rate per entry stage required"
        );
        let n = self.stages.len();
        let mut rates = vec![0.0; n];
        for (&s, &r) in self.entries.iter().zip(entry_rates) {
            rates[s] += r;
        }
        // Kahn propagation over the stage DAG.
        let mut indeg = vec![0usize; n];
        for l in &self.links {
            indeg[l.to] += 1;
        }
        let mut q: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(s) = q.pop() {
            seen += 1;
            for l in self.links.iter().filter(|l| l.from == s) {
                rates[l.to] += rates[s] * l.items_per_item;
                indeg[l.to] -= 1;
                if indeg[l.to] == 0 {
                    q.push(l.to);
                }
            }
        }
        assert_eq!(seen, n, "stage graph has a cycle");
        rates
    }

    /// Fraction of inter-stage messages that are twoway (request/reply) at
    /// unit entry rates — the knob that separates the modem's
    /// twoway-heavy shape from the one-directional codec flow.
    pub fn twoway_fraction(&self) -> f64 {
        let rates = self.stage_rates(&vec![1.0; self.entries.len()]);
        let mut oneway = 0.0;
        let mut twoway = 0.0;
        for l in &self.links {
            let msgs = rates[l.from] * l.items_per_item;
            if self.stages[l.to].reply_bytes > 0 {
                twoway += msgs;
            } else {
                oneway += msgs;
            }
        }
        if oneway + twoway == 0.0 {
            0.0
        } else {
            twoway / (oneway + twoway)
        }
    }

    /// Lowers the pipeline onto the DSOC application model: one object and
    /// one method per stage, one call edge per link.
    ///
    /// # Errors
    ///
    /// [`BuildPipelineError::UnknownStage`] for out-of-range link/entry
    /// indices; [`BuildPipelineError::App`] for graph defects the DSOC
    /// builder rejects (cycles, missing entries, bad multiplicities).
    pub fn to_application(&self) -> Result<(Application, PipelineLayout), BuildPipelineError> {
        for l in &self.links {
            if l.from >= self.stages.len() {
                return Err(BuildPipelineError::UnknownStage(l.from));
            }
            if l.to >= self.stages.len() {
                return Err(BuildPipelineError::UnknownStage(l.to));
            }
        }
        if let Some(&bad) = self.entries.iter().find(|&&e| e >= self.stages.len()) {
            return Err(BuildPipelineError::UnknownStage(bad));
        }
        let mut b = Application::builder(&self.name);
        let mut objects = Vec::with_capacity(self.stages.len());
        let mut services = Vec::new();
        for (i, s) in self.stages.iter().enumerate() {
            let method = if s.reply_bytes > 0 {
                MethodDef::twoway("process", s.input_bytes, s.reply_bytes)
            } else {
                MethodDef::oneway("process", s.input_bytes)
            }
            .with_compute(s.compute_cycles)
            .with_local_bytes(s.working_set_bytes)
            .with_domain(s.domain);
            let id = b.add_object(
                ObjectDef::new(&s.name)
                    .with_method(method)
                    .with_state_bytes(s.state_bytes),
            );
            objects.push(id);
            if let Some(d) = s.service {
                services.push((i, d));
            }
        }
        for l in &self.links {
            b.connect(objects[l.from], 0, objects[l.to], 0, l.items_per_item);
        }
        for &e in &self.entries {
            b.entry(objects[e], 0);
        }
        let app = b.build()?;
        Ok((app, PipelineLayout { objects, services }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> PipelineSpec {
        let mut p = PipelineSpec::new("chain");
        let a = p.add_stage(StageDef::new("a", 64).with_compute(100));
        let b = p.add_stage(
            StageDef::new("b", 64)
                .with_compute(200)
                .with_service(ServiceDemand {
                    kind: ServiceKind::Memory,
                    request_bytes: 16,
                    reply_bytes: 64,
                    calls_per_item: 2,
                }),
        );
        let c = p.add_stage(StageDef::new("c", 32).with_compute(50));
        p.link(a, b, 1.0).link(b, c, 1.0).entry(a);
        p
    }

    #[test]
    fn lowering_matches_shape() {
        let p = chain3();
        let (app, layout) = p.to_application().unwrap();
        assert_eq!(app.objects().len(), 3);
        assert_eq!(app.edges().len(), 2);
        assert_eq!(app.entries().len(), 1);
        assert_eq!(layout.objects.len(), 3);
        assert_eq!(layout.services.len(), 1);
        assert_eq!(layout.services[0].0, 1);
        assert_eq!(app.object(layout.objects[1]).name, "b");
        // Compute weights survive the lowering.
        let loads = app.object_loads(&[0.01]);
        assert!((loads[layout.objects[1].0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rates_propagate_with_multiplicity() {
        let mut p = PipelineSpec::new("fan");
        let a = p.add_stage(StageDef::new("a", 8));
        let b = p.add_stage(StageDef::new("b", 8));
        p.link(a, b, 4.0).entry(a);
        let rates = p.stage_rates(&[0.01]);
        assert!((rates[b] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn twoway_fraction_counts_reply_links() {
        let mut p = PipelineSpec::new("tw");
        let a = p.add_stage(StageDef::new("a", 8));
        let b = p.add_stage(StageDef::new("b", 8).with_reply(16));
        let c = p.add_stage(StageDef::new("c", 8));
        p.link(a, b, 1.0).link(a, c, 1.0).entry(a);
        assert!((p.twoway_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_indices_rejected() {
        let mut p = PipelineSpec::new("bad");
        let a = p.add_stage(StageDef::new("a", 8));
        p.link(a, 7, 1.0).entry(a);
        assert_eq!(
            p.to_application().unwrap_err(),
            BuildPipelineError::UnknownStage(7)
        );
    }

    #[test]
    fn cyclic_graph_rejected_by_lowering() {
        let mut p = PipelineSpec::new("cyc");
        let a = p.add_stage(StageDef::new("a", 8));
        let b = p.add_stage(StageDef::new("b", 8));
        p.link(a, b, 1.0).link(b, a, 1.0).entry(a);
        assert!(matches!(
            p.to_application().unwrap_err(),
            BuildPipelineError::App(BuildAppError::CyclicCallGraph)
        ));
    }

    #[test]
    fn service_demand_bytes() {
        let d = ServiceDemand {
            kind: ServiceKind::HwIp,
            request_bytes: 64,
            reply_bytes: 64,
            calls_per_item: 8,
        };
        assert_eq!(d.bytes_per_item(), 1024);
    }
}
