//! The §7.1 video codec pipeline: frame-sliced and memory-bound.
//!
//! Each frame is cut into `lanes` independent slices; every slice traverses
//! ingest → motion-estimate → transform/quantize → entropy-code → pack. The
//! motion estimator is the memory-bound stage: per slice it fetches
//! reference-frame windows from a shared memory macro across the NoC
//! (synchronous reads the hardware threads must hide). The entropy coder —
//! an arithmetic-coding stage in the spirit of distributed arithmetic
//! coding (DALC) — compresses 2:1 and consults a shared rate-control
//! object, the only cross-lane coupling, before the packer emits the
//! bitstream.

use crate::stage::{PipelineSpec, ServiceDemand, ServiceKind, StageDef};
use nw_dsoc::Domain;

/// Tunable parameters of the video workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoParams {
    /// Parallel slice lanes (slices per frame).
    pub lanes: usize,
    /// Bytes per slice arriving from the line.
    pub slice_bytes: u64,
    /// Motion-estimation compute per slice (baseline cycles).
    pub me_cycles: u64,
    /// Reference-window fetches per slice against the frame store.
    pub ref_fetches: u32,
    /// Bytes returned per reference-window fetch.
    pub ref_window_bytes: u64,
}

impl Default for VideoParams {
    fn default() -> Self {
        VideoParams {
            lanes: 4,
            slice_bytes: 960,
            me_cycles: 600,
            ref_fetches: 4,
            ref_window_bytes: 256,
        }
    }
}

/// Stage indices of one slice lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoLane {
    /// Slice ingest (entry stage).
    pub ingest: usize,
    /// Motion estimation (memory-bound).
    pub motion_est: usize,
    /// Transform + quantization.
    pub transform: usize,
    /// Entropy (arithmetic) coding.
    pub entropy: usize,
    /// Bitstream packing (egress stage).
    pub pack: usize,
}

/// The built video workload: the pipeline plus its notable stage indices.
#[derive(Debug, Clone)]
pub struct VideoWorkload {
    /// The stage graph.
    pub spec: PipelineSpec,
    /// Per-lane stage indices.
    pub lanes: Vec<VideoLane>,
    /// The shared rate-control stage index.
    pub rate_control: usize,
}

/// Builds the frame-sliced video pipeline with `params.lanes` lanes.
///
/// # Panics
///
/// Panics if `params.lanes == 0`.
pub fn video_pipeline(params: &VideoParams) -> VideoWorkload {
    assert!(params.lanes > 0, "video pipeline needs at least one lane");
    let mut p = PipelineSpec::new("video-codec");
    // Shared rate control: a small twoway service every entropy coder
    // queries once per slice (the cross-lane bottleneck object).
    let rate_control = p.add_stage(
        StageDef::new("rate-control", 8)
            .with_reply(8)
            .with_compute(30)
            .with_state(16 * 1024)
            .with_domain(Domain::Control),
    );
    let mut lanes = Vec::with_capacity(params.lanes);
    for l in 0..params.lanes {
        let ingest = p.add_stage(
            StageDef::new(&format!("slice-ingest-{l}"), params.slice_bytes)
                .with_compute(90)
                .with_working_set(64)
                .with_state(8 * 1024)
                .with_domain(Domain::Control),
        );
        let motion_est = p.add_stage(
            StageDef::new(&format!("motion-est-{l}"), params.slice_bytes)
                .with_compute(params.me_cycles)
                .with_working_set(2048)
                .with_state(64 * 1024)
                .with_domain(Domain::Signal)
                .with_service(ServiceDemand {
                    kind: ServiceKind::Memory,
                    request_bytes: 16,
                    reply_bytes: params.ref_window_bytes,
                    calls_per_item: params.ref_fetches,
                }),
        );
        let transform = p.add_stage(
            StageDef::new(&format!("xform-quant-{l}"), params.slice_bytes)
                .with_compute(380)
                .with_working_set(1024)
                .with_state(16 * 1024)
                .with_domain(Domain::Signal),
        );
        let entropy = p.add_stage(
            StageDef::new(&format!("entropy-code-{l}"), params.slice_bytes)
                .with_compute(460)
                .with_working_set(512)
                .with_state(32 * 1024)
                .with_domain(Domain::Generic),
        );
        let pack = p.add_stage(
            StageDef::new(&format!("pack-{l}"), params.slice_bytes / 2)
                .with_compute(70)
                .with_working_set(128)
                .with_state(8 * 1024)
                .with_domain(Domain::Control),
        );
        p.link(ingest, motion_est, 1.0)
            .link(motion_est, transform, 1.0)
            .link(transform, entropy, 1.0)
            .link(entropy, rate_control, 1.0)
            .link(entropy, pack, 1.0)
            .entry(ingest);
        lanes.push(VideoLane {
            ingest,
            motion_est,
            transform,
            entropy,
            pack,
        });
    }
    VideoWorkload {
        spec: p,
        lanes,
        rate_control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_per_lane() {
        let w = video_pipeline(&VideoParams::default());
        assert_eq!(w.lanes.len(), 4);
        assert_eq!(w.spec.n_stages(), 1 + 4 * 5);
        assert_eq!(w.spec.entries.len(), 4);
        let (app, layout) = w.spec.to_application().unwrap();
        assert_eq!(app.objects().len(), w.spec.n_stages());
        // Exactly one memory-bound stage per lane.
        assert_eq!(layout.services.len(), 4);
        assert!(layout
            .services
            .iter()
            .all(|(_, d)| d.kind == ServiceKind::Memory));
    }

    #[test]
    fn rate_control_is_shared_across_lanes() {
        let w = video_pipeline(&VideoParams {
            lanes: 3,
            ..VideoParams::default()
        });
        let rates = w.spec.stage_rates(&[0.001; 3]);
        // Each lane's entropy stage queries rate control once per slice.
        assert!((rates[w.rate_control] - 0.003).abs() < 1e-12);
    }

    #[test]
    fn flow_is_mostly_oneway() {
        let w = video_pipeline(&VideoParams::default());
        // Only the rate-control query replies: 1 of 5 links per lane.
        assert!((w.spec.twoway_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        video_pipeline(&VideoParams {
            lanes: 0,
            ..VideoParams::default()
        });
    }
}
