//! Deterministic workload traffic generation and per-stage accounting.
//!
//! The rigs pace ingress with line-rate I/O channels; this module answers
//! the *offline* questions — what a burst of workload items looks like and
//! how its bytes spread across the stage graph. Generation is fully
//! deterministic per seed (the offline `rand` stand-in is a seeded
//! xoshiro256++), so sweep points and property tests are reproducible, and
//! item/byte/flit counts obey conservation across stages: every item
//! entering a stage is accounted to exactly one downstream item stream per
//! link (integer carry, no stochastic rounding).

use crate::stage::PipelineSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one generated burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// RNG seed; equal seeds give byte-identical bursts.
    pub seed: u64,
    /// Items injected at the entry stages (round-robin across entries).
    pub items: u64,
    /// Payload size jitter as a fraction of the entry stage's
    /// `input_bytes` (0.0 = constant-size items, 0.5 = ±50%).
    pub jitter: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 1,
            items: 256,
            jitter: 0.25,
        }
    }
}

/// Accounting for one stage over a generated burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTraffic {
    /// Items the stage processed.
    pub items: u64,
    /// Payload bytes entering the stage.
    pub bytes: u64,
    /// NoC flits those payloads occupy at `flit_bytes` per flit.
    pub flits: u64,
}

/// Result of one generated burst: per-stage accounting in stage order.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstTraffic {
    /// Per-stage accounting, indexed like `spec.stages`.
    pub per_stage: Vec<StageTraffic>,
    /// Flit size used for the flit accounting.
    pub flit_bytes: u64,
}

impl BurstTraffic {
    /// Total items processed across all stages.
    pub fn total_items(&self) -> u64 {
        self.per_stage.iter().map(|s| s.items).sum()
    }

    /// Total payload bytes moved between stages.
    pub fn total_bytes(&self) -> u64 {
        self.per_stage.iter().map(|s| s.bytes).sum()
    }

    /// Total flits moved between stages.
    pub fn total_flits(&self) -> u64 {
        self.per_stage.iter().map(|s| s.flits).sum()
    }
}

/// Generates one burst of workload traffic through `spec` and accounts
/// items, bytes and flits per stage.
///
/// Entry items draw their payload size uniformly in
/// `input_bytes × [1 - jitter, 1 + jitter]` (minimum 1 byte). An item of
/// size `B` processed by stage `s` produces, per outgoing link to stage
/// `t`, `items_per_item` downstream items (deterministic integer carry) of
/// size `B × t.input_bytes / s.input_bytes` rounded down (minimum 1) — the
/// size ratio models per-stage expansion/compression (e.g. the entropy
/// coder emitting fewer bytes than it consumes).
///
/// # Panics
///
/// Panics if the spec has no entries or a cyclic link graph (validate with
/// [`PipelineSpec::to_application`] first).
pub fn generate_burst(spec: &PipelineSpec, cfg: &TrafficConfig, flit_bytes: u64) -> BurstTraffic {
    assert!(!spec.entries.is_empty(), "pipeline has no entry stages");
    assert!(flit_bytes > 0, "flit size must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = spec.stages.len();
    let mut per_stage = vec![StageTraffic::default(); n];
    // Pending items per stage, processed in topological wavefronts. Each
    // pending entry is (size_bytes, count) — items of equal size batch.
    let mut pending: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for i in 0..cfg.items {
        let entry = spec.entries[(i % spec.entries.len() as u64) as usize];
        let base = spec.stages[entry].input_bytes.max(1);
        let size = if cfg.jitter > 0.0 {
            let lo = (base as f64 * (1.0 - cfg.jitter)).max(1.0);
            let hi = (base as f64 * (1.0 + cfg.jitter)).max(lo + 1.0);
            rng.gen_range(lo..hi) as u64
        } else {
            base
        };
        pending[entry].push((size.max(1), 1));
    }
    // Per-link fractional carry so multiplicities conserve items exactly
    // over the burst instead of rounding per item.
    let mut carry = vec![0.0f64; spec.links.len()];
    // Kahn order over stages.
    let mut indeg = vec![0usize; n];
    for l in &spec.links {
        indeg[l.to] += 1;
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut q: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(s) = q.pop() {
        order.push(s);
        for (_, l) in spec.links.iter().enumerate().filter(|(_, l)| l.from == s) {
            indeg[l.to] -= 1;
            if indeg[l.to] == 0 {
                q.push(l.to);
            }
        }
    }
    assert_eq!(order.len(), n, "stage graph has a cycle");
    for &s in &order {
        let batches = std::mem::take(&mut pending[s]);
        for (size, count) in batches {
            per_stage[s].items += count;
            per_stage[s].bytes += size * count;
            per_stage[s].flits += size.div_ceil(flit_bytes) * count;
            for (li, l) in spec.links.iter().enumerate().filter(|(_, l)| l.from == s) {
                carry[li] += l.items_per_item * count as f64;
                let out = carry[li].floor() as u64;
                carry[li] -= out as f64;
                if out == 0 {
                    continue;
                }
                let from_in = spec.stages[s].input_bytes.max(1);
                let to_in = spec.stages[l.to].input_bytes.max(1);
                let out_size =
                    ((size as f64 * to_in as f64 / from_in as f64).floor() as u64).max(1);
                pending[l.to].push((out_size, out));
            }
        }
    }
    BurstTraffic {
        per_stage,
        flit_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageDef;

    fn chain() -> PipelineSpec {
        let mut p = PipelineSpec::new("chain");
        let a = p.add_stage(StageDef::new("a", 128));
        let b = p.add_stage(StageDef::new("b", 128));
        let c = p.add_stage(StageDef::new("c", 64));
        p.link(a, b, 1.0).link(b, c, 1.0).entry(a);
        p
    }

    #[test]
    fn same_seed_same_burst() {
        let p = chain();
        let cfg = TrafficConfig {
            seed: 7,
            items: 500,
            jitter: 0.3,
        };
        assert_eq!(generate_burst(&p, &cfg, 8), generate_burst(&p, &cfg, 8));
    }

    #[test]
    fn unit_chain_conserves_items() {
        let p = chain();
        let t = generate_burst(&p, &TrafficConfig::default(), 8);
        assert_eq!(t.per_stage[0].items, 256);
        assert_eq!(t.per_stage[1].items, 256);
        assert_eq!(t.per_stage[2].items, 256);
    }

    #[test]
    fn size_ratio_compresses_bytes() {
        let p = chain();
        let t = generate_burst(
            &p,
            &TrafficConfig {
                jitter: 0.0,
                ..TrafficConfig::default()
            },
            8,
        );
        // Stage c declares half the input bytes of b: exactly 2:1.
        assert_eq!(t.per_stage[1].bytes, 2 * t.per_stage[2].bytes);
    }

    #[test]
    fn multiplicity_scales_with_carry() {
        let mut p = PipelineSpec::new("fan");
        let a = p.add_stage(StageDef::new("a", 32));
        let b = p.add_stage(StageDef::new("b", 32));
        p.link(a, b, 2.5).entry(a);
        let t = generate_burst(
            &p,
            &TrafficConfig {
                items: 100,
                jitter: 0.0,
                ..TrafficConfig::default()
            },
            8,
        );
        // 100 × 2.5 conserves exactly under integer carry.
        assert_eq!(t.per_stage[1].items, 250);
    }

    #[test]
    fn flits_cover_bytes() {
        let p = chain();
        let t = generate_burst(&p, &TrafficConfig::default(), 8);
        for s in &t.per_stage {
            assert!(s.flits * 8 >= s.bytes, "{s:?}");
            assert!(s.flits <= s.bytes.div_ceil(8) + s.items, "{s:?}");
        }
    }
}
