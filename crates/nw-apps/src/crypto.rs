//! The crypto offload rig: hwip-bound bulk transfer.
//!
//! Bulk payloads (IPsec-style 1 KiB datagrams) flow dma-ingest → cipher →
//! auth → dma-egress. The cipher and auth stages do almost no PE compute —
//! they stream blocks through hardwired engines (an AES core and a hash
//! core) with one synchronous NoC call per block. Throughput is therefore
//! set by the engines' initiation intervals and by how well the threads
//! cover the per-block round trips, not by PE arithmetic: the paper's
//! argument for standardized hardwired IP behind the NoC.

use crate::stage::{PipelineSpec, ServiceDemand, ServiceKind, StageDef};
use nw_dsoc::Domain;

/// Tunable parameters of the crypto-offload workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptoParams {
    /// Parallel DMA channels.
    pub channels: usize,
    /// Bytes per bulk payload.
    pub payload_bytes: u64,
    /// Cipher-block size (one hwip call per block).
    pub block_bytes: u64,
}

impl Default for CryptoParams {
    fn default() -> Self {
        CryptoParams {
            channels: 2,
            payload_bytes: 1024,
            block_bytes: 128,
        }
    }
}

impl CryptoParams {
    /// Hwip calls per payload for one full pass over the data.
    pub fn blocks_per_payload(&self) -> u32 {
        self.payload_bytes.div_ceil(self.block_bytes).max(1) as u32
    }
}

/// Stage indices of one DMA channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoChannel {
    /// DMA ingest (entry stage).
    pub ingest: usize,
    /// Cipher stage (AES hwip-bound).
    pub cipher: usize,
    /// Authentication stage (hash hwip-bound).
    pub auth: usize,
    /// DMA egress stage.
    pub egress: usize,
}

/// The built crypto workload.
#[derive(Debug, Clone)]
pub struct CryptoWorkload {
    /// The stage graph.
    pub spec: PipelineSpec,
    /// Per-channel stages.
    pub channels: Vec<CryptoChannel>,
}

/// Builds the crypto offload pipeline with `params.channels` DMA channels.
/// All cipher stages share one AES engine and all auth stages share one
/// hash engine (the rig maps the two [`ServiceKind::HwIp`] demands onto
/// two distinct hardwired blocks).
///
/// # Panics
///
/// Panics if `params.channels == 0`.
pub fn crypto_pipeline(params: &CryptoParams) -> CryptoWorkload {
    assert!(params.channels > 0, "crypto needs at least one channel");
    let blocks = params.blocks_per_payload();
    let mut p = PipelineSpec::new("crypto-offload");
    let mut channels = Vec::with_capacity(params.channels);
    for c in 0..params.channels {
        let ingest = p.add_stage(
            StageDef::new(&format!("dma-ingest-{c}"), params.payload_bytes)
                .with_compute(60)
                .with_working_set(256)
                .with_state(16 * 1024)
                .with_domain(Domain::Control),
        );
        let cipher = p.add_stage(
            StageDef::new(&format!("cipher-{c}"), params.payload_bytes)
                .with_compute(90)
                .with_working_set(512)
                .with_state(8 * 1024)
                .with_domain(Domain::Generic)
                .with_service(ServiceDemand {
                    kind: ServiceKind::HwIp,
                    request_bytes: params.block_bytes,
                    reply_bytes: params.block_bytes,
                    calls_per_item: blocks,
                }),
        );
        let auth = p.add_stage(
            StageDef::new(&format!("auth-{c}"), params.payload_bytes)
                .with_compute(70)
                .with_working_set(256)
                .with_state(8 * 1024)
                .with_domain(Domain::Generic)
                .with_service(ServiceDemand {
                    kind: ServiceKind::HwIp,
                    request_bytes: params.block_bytes,
                    reply_bytes: 32,
                    calls_per_item: blocks,
                }),
        );
        let egress = p.add_stage(
            StageDef::new(&format!("dma-egress-{c}"), params.payload_bytes)
                .with_compute(50)
                .with_working_set(128)
                .with_state(16 * 1024)
                .with_domain(Domain::Control),
        );
        p.link(ingest, cipher, 1.0)
            .link(cipher, auth, 1.0)
            .link(auth, egress, 1.0)
            .entry(ingest);
        channels.push(CryptoChannel {
            ingest,
            cipher,
            auth,
            egress,
        });
    }
    CryptoWorkload { spec: p, channels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let w = crypto_pipeline(&CryptoParams::default());
        assert_eq!(w.channels.len(), 2);
        assert_eq!(w.spec.n_stages(), 2 * 4);
        let (_, layout) = w.spec.to_application().unwrap();
        // Two hwip-bound stages per channel.
        assert_eq!(layout.services.len(), 4);
        assert!(layout
            .services
            .iter()
            .all(|(_, d)| d.kind == ServiceKind::HwIp));
    }

    #[test]
    fn hwip_traffic_dominates_compute_traffic() {
        let p = CryptoParams::default();
        let w = crypto_pipeline(&p);
        let (_, layout) = w.spec.to_application().unwrap();
        let hwip_bytes: u64 = layout
            .services
            .iter()
            .map(|(_, d)| d.bytes_per_item())
            .sum();
        // Per payload the engines move more bytes than the payload itself:
        // a full cipher pass each way plus the auth pass.
        assert!(hwip_bytes > 2 * p.payload_bytes * w.channels.len() as u64);
    }

    #[test]
    fn block_count_rounds_up() {
        let p = CryptoParams {
            payload_bytes: 1000,
            block_bytes: 128,
            ..CryptoParams::default()
        };
        assert_eq!(p.blocks_per_payload(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        crypto_pipeline(&CryptoParams {
            channels: 0,
            ..CryptoParams::default()
        });
    }
}
