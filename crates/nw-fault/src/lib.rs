//! Deterministic fault campaigns for the nanowall platform.
//!
//! A [`FaultCampaign`] is a pre-generated, cycle-sorted timeline of fault
//! events — transient and permanent link faults, router stalls, packet
//! drop/corruption, and PE crash/restart pairs — produced as a **pure
//! function** of `(seed, horizon, rates, shape)`. Nothing here reads
//! wall-clock time or OS entropy: the only randomness source is the
//! vendored seeded xoshiro generator, so the same inputs always yield the
//! same timeline, which is what makes fault runs bit-identical across
//! scheduler modes and across repeats.
//!
//! The campaign itself is platform-agnostic plain data. `core::platform`
//! drains due events each cycle and applies them through explicit hooks in
//! the NoC engine and the PE array; [`FaultCampaign::next_cycle`] feeds the
//! scheduler fast-forward paths so a quiet span never skips over a pending
//! fault.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault, applied at a specific cycle.
///
/// Targets are raw indices into the fabric (router, output-port position,
/// endpoint, PE); the platform validates them against its own shape when
/// applying. "Next"-style events (drop/corrupt) bind to whatever the
/// target's head-of-line traffic is at the scheduled cycle — both
/// scheduler modes hold bit-identical state at cycle boundaries, so the
/// selection is still deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take link `port` of `router` down. `until: Some(c)` restores it at
    /// cycle `c` (transient glitch); `None` is a permanent hard fault that
    /// triggers degraded-mode rerouting.
    LinkDown {
        router: usize,
        port: usize,
        until: Option<u64>,
    },
    /// Stall every output of `router` (control-plane hiccup) until `until`.
    RouterStall { router: usize, until: u64 },
    /// Drop the head-of-line packet queued at `router`, if any.
    DropNext { router: usize },
    /// Flip bits in the head-of-line packet awaiting injection at endpoint
    /// `node`, if any (surfaces downstream as a DSOC decode error).
    CorruptNext { node: usize },
    /// Crash PE `pe`: kill all threads, harvest owned buffers.
    PeCrash { pe: usize },
    /// Restart a previously crashed PE with cold (idle) threads.
    PeRestart { pe: usize },
}

/// A fault bound to its injection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub cycle: u64,
    pub kind: FaultKind,
}

/// Expected fault intensities for campaign generation.
///
/// Rate fields are expected event counts per 100 000 cycles; count fields
/// are absolute totals over the whole horizon. The fractional part of an
/// expected count is resolved by one seeded Bernoulli draw, so intensity
/// scales smoothly with the horizon while staying deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRates {
    /// Transient link glitches per 100k cycles.
    pub transient_link_per_100k: f64,
    /// Duration range (cycles, inclusive) of a transient link glitch.
    pub transient_len: (u64, u64),
    /// Whole-router stalls per 100k cycles.
    pub router_stall_per_100k: f64,
    /// Duration range (cycles, inclusive) of a router stall.
    pub stall_len: (u64, u64),
    /// Head-of-line packet drops per 100k cycles.
    pub drop_per_100k: f64,
    /// Payload corruptions per 100k cycles.
    pub corrupt_per_100k: f64,
    /// Permanent link kills over the whole horizon.
    pub permanent_links: u32,
    /// PE crash/restart pairs over the whole horizon.
    pub pe_crashes: u32,
    /// Downtime range (cycles, inclusive) between a crash and its restart.
    pub pe_downtime: (u64, u64),
}

impl FaultRates {
    /// No faults at all: `generate` yields an empty timeline.
    pub fn quiet() -> Self {
        FaultRates {
            transient_link_per_100k: 0.0,
            transient_len: (0, 0),
            router_stall_per_100k: 0.0,
            stall_len: (0, 0),
            drop_per_100k: 0.0,
            corrupt_per_100k: 0.0,
            permanent_links: 0,
            pe_crashes: 0,
            pe_downtime: (0, 0),
        }
    }

    /// Reference intensity: the baseline mix used by `expt faults` and the
    /// t12 resilience grid, scaled by `level` (0.0 = quiet, 1.0 = the
    /// nominal "unreliable fabric" operating point, >1.0 = harsher).
    ///
    /// Permanent-link and crash counts step in at higher levels so low
    /// levels probe transient behavior only.
    pub fn scaled(level: f64) -> Self {
        assert!(level >= 0.0, "fault level must be non-negative");
        FaultRates {
            transient_link_per_100k: 4.0 * level,
            transient_len: (20, 200),
            router_stall_per_100k: 1.0 * level,
            stall_len: (50, 400),
            drop_per_100k: 2.0 * level,
            corrupt_per_100k: 1.0 * level,
            permanent_links: if level >= 1.0 { level as u32 } else { 0 },
            pe_crashes: if level >= 1.0 { level as u32 } else { 0 },
            pe_downtime: (2_000, 10_000),
        }
    }

    fn is_quiet(&self) -> bool {
        self.transient_link_per_100k == 0.0
            && self.router_stall_per_100k == 0.0
            && self.drop_per_100k == 0.0
            && self.corrupt_per_100k == 0.0
            && self.permanent_links == 0
            && self.pe_crashes == 0
    }
}

/// The minimal fabric description campaign generation needs to aim faults
/// at valid targets. Plain data so `nw-fault` depends on nothing but the
/// vendored RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricShape {
    /// Number of processing elements (crash/restart targets).
    pub n_pes: usize,
    /// Output-port count per router, indexed by router id. Routers with
    /// zero ports are never chosen as link-fault targets.
    pub router_ports: Vec<usize>,
    /// Number of NoC endpoints (corruption targets).
    pub n_endpoints: usize,
}

/// A seeded, cycle-sorted fault timeline with a drain cursor.
///
/// Generation is a pure function of its inputs (see module docs); the
/// cursor is the only mutable state, advanced by [`take_due`].
///
/// [`take_due`]: FaultCampaign::take_due
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    seed: u64,
    horizon: u64,
    rates: FaultRates,
    shape: FabricShape,
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultCampaign {
    /// Generate the full timeline for `horizon` cycles.
    ///
    /// Events land on cycles `1..horizon`. Per category the event count is
    /// `floor(rate * horizon / 100k)` plus one Bernoulli draw on the
    /// fractional part; cycles and targets are then drawn uniformly. The
    /// final timeline is sorted by `(cycle, generation order)` so draining
    /// order is total and stable.
    pub fn generate(seed: u64, horizon: u64, rates: &FaultRates, shape: &FabricShape) -> Self {
        let mut events: Vec<FaultEvent> = Vec::new();
        if horizon >= 2 && !rates.is_quiet() {
            let mut rng = StdRng::seed_from_u64(seed);
            let linky: Vec<usize> = (0..shape.router_ports.len())
                .filter(|&r| shape.router_ports[r] > 0)
                .collect();

            let n_transient = draw_count(&mut rng, rates.transient_link_per_100k, horizon);
            for _ in 0..n_transient {
                if linky.is_empty() {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let router = linky[rng.gen_range(0..linky.len())];
                let port = rng.gen_range(0..shape.router_ports[router]);
                let len = range_draw(&mut rng, rates.transient_len).max(1);
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::LinkDown {
                        router,
                        port,
                        until: Some(cycle + len),
                    },
                });
            }

            let n_stall = draw_count(&mut rng, rates.router_stall_per_100k, horizon);
            for _ in 0..n_stall {
                if linky.is_empty() {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let router = linky[rng.gen_range(0..linky.len())];
                let len = range_draw(&mut rng, rates.stall_len).max(1);
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::RouterStall {
                        router,
                        until: cycle + len,
                    },
                });
            }

            let n_drop = draw_count(&mut rng, rates.drop_per_100k, horizon);
            for _ in 0..n_drop {
                if linky.is_empty() {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let router = linky[rng.gen_range(0..linky.len())];
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::DropNext { router },
                });
            }

            let n_corrupt = draw_count(&mut rng, rates.corrupt_per_100k, horizon);
            for _ in 0..n_corrupt {
                if shape.n_endpoints == 0 {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let node = rng.gen_range(0..shape.n_endpoints);
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::CorruptNext { node },
                });
            }

            for _ in 0..rates.permanent_links {
                if linky.is_empty() {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let router = linky[rng.gen_range(0..linky.len())];
                let port = rng.gen_range(0..shape.router_ports[router]);
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::LinkDown {
                        router,
                        port,
                        until: None,
                    },
                });
            }

            for _ in 0..rates.pe_crashes {
                if shape.n_pes == 0 {
                    break;
                }
                let cycle = rng.gen_range(1..horizon);
                let pe = rng.gen_range(0..shape.n_pes);
                let downtime = range_draw(&mut rng, rates.pe_downtime).max(1);
                events.push(FaultEvent {
                    cycle,
                    kind: FaultKind::PeCrash { pe },
                });
                let restart = cycle + downtime;
                if restart < horizon {
                    events.push(FaultEvent {
                        cycle: restart,
                        kind: FaultKind::PeRestart { pe },
                    });
                }
            }
        }

        // Stable sort keeps generation order as the tie-break, making the
        // drain order a pure function of the inputs.
        events.sort_by_key(|e| e.cycle);
        FaultCampaign {
            seed,
            horizon,
            rates: rates.clone(),
            shape: shape.clone(),
            events,
            cursor: 0,
        }
    }

    /// An empty campaign (no events, any horizon).
    pub fn empty(seed: u64) -> Self {
        FaultCampaign {
            seed,
            horizon: 0,
            rates: FaultRates::quiet(),
            shape: FabricShape {
                n_pes: 0,
                router_ports: Vec::new(),
                n_endpoints: 0,
            },
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// The seed the timeline was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation horizon in cycles.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The full timeline, independent of the drain cursor.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Cycle of the earliest undrained event — the value the scheduler
    /// fast-forward paths fold into their next-event computation.
    pub fn next_cycle(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.cycle)
    }

    /// Drain and return every event scheduled at or before `now`.
    pub fn take_due(&mut self, now: u64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].cycle <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// Undrained events remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Rewind the drain cursor to replay the same timeline.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Advance the drain cursor to the first event at or after `cycle`
    /// without applying anything. On a campaign whose events up to
    /// `cycle - 1` have been drained by [`take_due`], this is a no-op —
    /// which is exactly what makes a same-seed [`reseed`] at a snapshot
    /// boundary continue the original timeline bit-identically.
    ///
    /// [`take_due`]: FaultCampaign::take_due
    /// [`reseed`]: FaultCampaign::reseed
    pub fn skip_until(&mut self, cycle: u64) {
        self.cursor = self.events.partition_point(|e| e.cycle < cycle);
    }

    /// Regenerates the timeline from `seed` over the original horizon,
    /// rates and shape, then skips every event before `from_cycle`. A
    /// forked measurement replica calls this at the fork point: its
    /// already-applied fault history (shared with the parent) stays as
    /// platform state, while the undrained future is redrawn from the new
    /// seed. Reseeding with the original seed reproduces the original
    /// future exactly.
    pub fn reseed(&mut self, seed: u64, from_cycle: u64) {
        *self = FaultCampaign::generate(seed, self.horizon, &self.rates, &self.shape);
        self.skip_until(from_cycle);
    }
}

/// Expected-count draw: floor of the expectation plus one Bernoulli trial
/// on the fractional remainder.
fn draw_count(rng: &mut StdRng, per_100k: f64, horizon: u64) -> u64 {
    if per_100k <= 0.0 {
        return 0;
    }
    let expected = per_100k * horizon as f64 / 100_000.0;
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(frac > 0.0 && rng.gen_bool(frac))
}

/// Uniform draw from an inclusive `(lo, hi)` pair; degenerate pairs return
/// `lo` without consuming entropy asymmetrically.
fn range_draw(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> FabricShape {
        FabricShape {
            n_pes: 8,
            router_ports: vec![3, 4, 4, 3, 2, 0],
            n_endpoints: 12,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let rates = FaultRates::scaled(2.0);
        let a = FaultCampaign::generate(77, 200_000, &rates, &shape());
        let b = FaultCampaign::generate(77, 200_000, &rates, &shape());
        assert_eq!(a, b);
        let c = FaultCampaign::generate(78, 200_000, &rates, &shape());
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn timeline_is_sorted_and_in_horizon() {
        let rates = FaultRates::scaled(3.0);
        let c = FaultCampaign::generate(5, 150_000, &rates, &shape());
        assert!(!c.events().is_empty());
        let mut last = 0;
        for e in c.events() {
            assert!(e.cycle >= last, "timeline must be cycle-sorted");
            assert!(e.cycle >= 1);
            last = e.cycle;
        }
    }

    #[test]
    fn targets_are_valid_for_shape() {
        let s = shape();
        let rates = FaultRates::scaled(4.0);
        let c = FaultCampaign::generate(9, 300_000, &rates, &s);
        for e in c.events() {
            match e.kind {
                FaultKind::LinkDown { router, port, .. } => {
                    assert!(port < s.router_ports[router]);
                }
                FaultKind::RouterStall { router, .. } | FaultKind::DropNext { router } => {
                    assert!(s.router_ports[router] > 0);
                }
                FaultKind::CorruptNext { node } => assert!(node < s.n_endpoints),
                FaultKind::PeCrash { pe } | FaultKind::PeRestart { pe } => assert!(pe < s.n_pes),
            }
        }
    }

    #[test]
    fn quiet_rates_yield_empty_timeline() {
        let c = FaultCampaign::generate(1, 1_000_000, &FaultRates::quiet(), &shape());
        assert!(c.events().is_empty());
        assert_eq!(c.next_cycle(), None);
        assert!(FaultRates::scaled(0.0).is_quiet());
        let z = FaultCampaign::generate(1, 1_000_000, &FaultRates::scaled(0.0), &shape());
        assert!(z.events().is_empty());
    }

    #[test]
    fn take_due_drains_in_order() {
        let rates = FaultRates::scaled(2.0);
        let mut c = FaultCampaign::generate(42, 100_000, &rates, &shape());
        let total = c.events().len();
        assert!(total > 0);
        let mut drained = 0;
        let mut now = 0;
        while let Some(next) = c.next_cycle() {
            assert!(next > now);
            now = next;
            let due = c.take_due(now);
            assert!(!due.is_empty());
            assert!(due.iter().all(|e| e.cycle == now || e.cycle <= now));
            drained += due.len();
        }
        assert_eq!(drained, total);
        assert_eq!(c.remaining(), 0);
        c.reset();
        assert_eq!(c.remaining(), total);
    }

    #[test]
    fn skip_until_matches_a_take_due_drain() {
        let rates = FaultRates::scaled(2.0);
        let mut drained = FaultCampaign::generate(21, 120_000, &rates, &shape());
        let mut skipped = drained.clone();
        let boundary = 60_000;
        let _ = drained.take_due(boundary - 1);
        skipped.skip_until(boundary);
        assert_eq!(drained, skipped);
        assert_eq!(drained.next_cycle(), skipped.next_cycle());
    }

    #[test]
    fn same_seed_reseed_is_a_no_op_at_the_drain_boundary() {
        let rates = FaultRates::scaled(2.0);
        let mut c = FaultCampaign::generate(33, 120_000, &rates, &shape());
        let _ = c.take_due(49_999);
        let reference = c.clone();
        c.reseed(33, 50_000);
        assert_eq!(c, reference);
    }

    #[test]
    fn reseed_redraws_the_future_only() {
        let rates = FaultRates::scaled(2.0);
        let mut c = FaultCampaign::generate(33, 120_000, &rates, &shape());
        let _ = c.take_due(49_999);
        let before = c.clone();
        c.reseed(34, 50_000);
        assert_ne!(c.events(), before.events());
        assert_eq!(c.seed(), 34);
        assert_eq!(c.horizon(), before.horizon());
        // Every undrained event sits at or after the fork point.
        assert!(c
            .events()
            .iter()
            .skip(c.events().len() - c.remaining())
            .all(|e| e.cycle >= 50_000));
    }

    #[test]
    fn crash_restart_pairs_are_ordered() {
        let mut rates = FaultRates::quiet();
        rates.pe_crashes = 5;
        rates.pe_downtime = (100, 500);
        let c = FaultCampaign::generate(3, 50_000, &rates, &shape());
        let crashes: Vec<_> = c
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PeCrash { .. }))
            .collect();
        assert_eq!(crashes.len(), 5);
        // Every restart follows some crash of the same PE.
        for e in c.events() {
            if let FaultKind::PeRestart { pe } = e.kind {
                assert!(c.events().iter().any(|c2| {
                    matches!(c2.kind, FaultKind::PeCrash { pe: p } if p == pe) && c2.cycle < e.cycle
                }));
            }
        }
    }
}
