//! Synthetic route tables.
//!
//! Real early-2000s BGP tables are not redistributable inputs, so T5 runs on
//! synthetic tables whose *prefix-length distribution* matches the
//! well-known shape of backbone tables of the period: almost no very short
//! prefixes, a bump at /16, and the dominant mass at /24 (>50%). The LPM
//! engines' memory and energy costs depend on exactly this shape plus the
//! route count, which is what the substitution preserves.

use crate::lpm::{LpmTable, Prefix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic table.
#[derive(Debug, Clone, Copy)]
pub struct RouteTableConfig {
    /// Number of routes to generate.
    pub routes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RouteTableConfig {
    fn default() -> Self {
        RouteTableConfig {
            routes: 16_384,
            seed: 0xB6B_5EED,
        }
    }
}

/// Cumulative prefix-length distribution (length, cumulative probability),
/// shaped like a 2003 backbone table.
const LENGTH_CDF: [(u8, f64); 9] = [
    (8, 0.005),
    (12, 0.02),
    (16, 0.12),
    (18, 0.17),
    (19, 0.24),
    (20, 0.32),
    (21, 0.40),
    (22, 0.50),
    (24, 1.00),
];

fn pick_length<R: Rng>(rng: &mut R) -> u8 {
    let x: f64 = rng.gen();
    for &(len, cum) in &LENGTH_CDF {
        if x <= cum {
            return len;
        }
    }
    24
}

/// Generates `cfg.routes` distinct synthetic prefixes without touching any
/// table — the expensive half of [`synthetic_table`], split out so one
/// generated set can be installed into several contending engines
/// (the T5 warm-fork protocol).
pub fn synthetic_prefixes(cfg: &RouteTableConfig) -> Vec<Prefix> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut seen = std::collections::HashSet::with_capacity(cfg.routes);
    let mut prefixes = Vec::with_capacity(cfg.routes);
    while prefixes.len() < cfg.routes {
        let len = pick_length(&mut rng);
        // Keep the space publicly-routable-looking: first octet 1..=223.
        let a = rng.gen_range(1u32..=223);
        let rest: u32 = rng.gen();
        let p = Prefix::new((a << 24) | (rest & 0x00FF_FFFF), len);
        if seen.insert(p) {
            prefixes.push(p);
        }
    }
    prefixes
}

/// Inserts `prefixes` into `table` with the same round-robin next-hop
/// assignment [`synthetic_table`] uses (16 egress ports, by insert order).
pub fn install_prefixes<T: LpmTable + ?Sized>(table: &mut T, prefixes: &[Prefix]) {
    for (i, &p) in prefixes.iter().enumerate() {
        table.insert(p, (i % 16) as u32);
    }
}

/// Generates `cfg.routes` distinct synthetic prefixes and inserts them into
/// `table`; returns the prefixes (for building matching traffic).
///
/// Next hops are assigned round-robin over 16 egress ports.
pub fn synthetic_table<T: LpmTable + ?Sized>(table: &mut T, cfg: &RouteTableConfig) -> Vec<Prefix> {
    let prefixes = synthetic_prefixes(cfg);
    install_prefixes(table, &prefixes);
    prefixes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm::LinearTable;

    #[test]
    fn generates_requested_count() {
        let mut t = LinearTable::new();
        let cfg = RouteTableConfig {
            routes: 500,
            seed: 1,
        };
        let ps = synthetic_table(&mut t, &cfg);
        assert_eq!(ps.len(), 500);
        assert_eq!(t.route_count(), 500);
    }

    #[test]
    fn distribution_peaks_at_24() {
        let mut t = LinearTable::new();
        let cfg = RouteTableConfig {
            routes: 4000,
            seed: 2,
        };
        let ps = synthetic_table(&mut t, &cfg);
        let n24 = ps.iter().filter(|p| p.len == 24).count();
        let n16 = ps.iter().filter(|p| p.len == 16).count();
        let frac24 = n24 as f64 / ps.len() as f64;
        assert!(frac24 > 0.40 && frac24 < 0.60, "/24 fraction {frac24}");
        assert!(n16 > 0, "some /16s expected");
        assert!(ps.iter().all(|p| p.len >= 8 && p.len <= 24));
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut t = LinearTable::new();
            synthetic_table(&mut t, &RouteTableConfig { routes: 100, seed })
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn split_generate_and_install_match_the_one_shot_path() {
        let cfg = RouteTableConfig {
            routes: 300,
            seed: 9,
        };
        let mut one_shot = LinearTable::new();
        let direct = synthetic_table(&mut one_shot, &cfg);
        let shared = synthetic_prefixes(&cfg);
        assert_eq!(direct, shared, "the two generation paths must agree");
        let mut installed = LinearTable::new();
        install_prefixes(&mut installed, &shared);
        assert_eq!(installed.route_count(), one_shot.route_count());
        for p in shared.iter().take(50) {
            assert_eq!(installed.lookup(p.addr), one_shot.lookup(p.addr), "{p}");
        }
    }

    #[test]
    fn lookups_hit_generated_prefixes() {
        let mut t = LinearTable::new();
        let ps = synthetic_table(
            &mut t,
            &RouteTableConfig {
                routes: 200,
                seed: 3,
            },
        );
        for p in ps.iter().take(50) {
            assert!(t.lookup(p.addr).is_some(), "prefix {p} must be routable");
        }
    }
}
