//! Packet generators producing real, checksum-valid IPv4 bytes.
//!
//! Claim C7's scenario is "worst-case traffic at a 10 Gbit line rate":
//! minimum-size packets whose destinations all hit the route table. The
//! generator draws destinations from the installed prefixes (optionally with
//! a miss fraction) and emits complete packets the parser in [`header`]
//! accepts.
//!
//! [`header`]: crate::header

use crate::header::Ipv4Header;
use crate::lpm::Prefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Packet-size mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMix {
    /// All packets at the worst-case minimum size (40 bytes: 20 header +
    /// 20 payload, the classic TCP-ACK-sized datagram).
    WorstCase,
    /// The classic simple IMIX: 40 B (58.3%), 576 B (33.3%), 1500 B (8.3%)
    /// in the 7:4:1 ratio.
    Imix,
    /// Fixed size in bytes (>= 20).
    Fixed(u16),
}

impl TrafficMix {
    fn pick_size<R: Rng>(&self, rng: &mut R) -> u16 {
        match *self {
            TrafficMix::WorstCase => 40,
            TrafficMix::Fixed(s) => s.max(Ipv4Header::LEN as u16),
            TrafficMix::Imix => {
                let r = rng.gen_range(0..12);
                if r < 7 {
                    40
                } else if r < 11 {
                    576
                } else {
                    1500
                }
            }
        }
    }
}

/// A deterministic generator of routed IPv4 packets.
///
/// # Examples
///
/// ```
/// use nw_ipv4::{PacketGenerator, TrafficMix, Prefix, Ipv4Header};
///
/// let prefixes = vec![Prefix::new(u32::from_be_bytes([10, 0, 0, 0]), 8)];
/// let mut gen = PacketGenerator::new(prefixes, TrafficMix::WorstCase, 42);
/// let pkt = gen.next_packet();
/// assert_eq!(pkt.len(), 40);
/// let h = Ipv4Header::parse(&pkt)?; // parses and checksum-verifies
/// assert_eq!(h.ttl, 64);
/// # Ok::<(), nw_ipv4::ParseHeaderError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PacketGenerator {
    prefixes: Vec<Prefix>,
    mix: TrafficMix,
    rng: StdRng,
    next_id: u16,
    /// Fraction of packets aimed outside the table (default 0).
    miss_fraction: f64,
}

impl PacketGenerator {
    /// Creates a generator drawing destinations from `prefixes`.
    ///
    /// # Panics
    ///
    /// Panics if `prefixes` is empty.
    pub fn new(prefixes: Vec<Prefix>, mix: TrafficMix, seed: u64) -> Self {
        assert!(!prefixes.is_empty(), "need at least one destination prefix");
        PacketGenerator {
            prefixes,
            mix,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            miss_fraction: 0.0,
        }
    }

    /// Sets the fraction of packets whose destination misses the table
    /// (drawn from 240/4, reserved space no synthetic prefix covers).
    pub fn with_miss_fraction(mut self, f: f64) -> Self {
        self.miss_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the next packet's bytes (header + zero payload).
    pub fn next_packet(&mut self) -> Vec<u8> {
        let dst = if self.miss_fraction > 0.0 && self.rng.gen_bool(self.miss_fraction) {
            // 240.0.0.0/4 is reserved; synthetic tables never cover it.
            0xF000_0000 | (self.rng.gen::<u32>() & 0x0FFF_FFFF)
        } else {
            let p = self.prefixes[self.rng.gen_range(0..self.prefixes.len())];
            let host_bits = 32 - p.len;
            let host: u32 = if host_bits == 0 {
                0
            } else {
                self.rng.gen::<u32>() & ((1u32 << host_bits) - 1)
            };
            p.addr | host
        };
        let size = self.mix.pick_size(&mut self.rng);
        let mut h = Ipv4Header {
            dscp_ecn: 0,
            total_length: size,
            identification: self.next_id,
            flags_fragment: 0x4000, // don't fragment
            ttl: 64,
            protocol: 17, // UDP
            checksum: 0,
            src: u32::from_be_bytes([10, 0, 0, 1]) + u32::from(self.next_id % 251),
            dst,
        };
        self.next_id = self.next_id.wrapping_add(1);
        h.refresh_checksum();
        let mut pkt = vec![0u8; size as usize];
        pkt[..Ipv4Header::LEN].copy_from_slice(&h.to_bytes());
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm::{LinearTable, LpmTable};

    fn prefixes() -> Vec<Prefix> {
        vec![
            Prefix::new(u32::from_be_bytes([10, 0, 0, 0]), 8),
            Prefix::new(u32::from_be_bytes([172, 16, 0, 0]), 12),
            Prefix::new(u32::from_be_bytes([192, 168, 7, 0]), 24),
        ]
    }

    #[test]
    fn all_packets_parse_and_route() {
        let mut table = LinearTable::new();
        for (i, p) in prefixes().iter().enumerate() {
            table.insert(*p, i as u32);
        }
        let mut g = PacketGenerator::new(prefixes(), TrafficMix::WorstCase, 1);
        for _ in 0..500 {
            let pkt = g.next_packet();
            assert_eq!(pkt.len(), 40);
            let h = Ipv4Header::parse(&pkt).expect("generated packets must be valid");
            assert!(table.lookup(h.dst).is_some(), "dst must be routable");
        }
    }

    #[test]
    fn miss_fraction_produces_misses() {
        let mut table = LinearTable::new();
        for (i, p) in prefixes().iter().enumerate() {
            table.insert(*p, i as u32);
        }
        let mut g =
            PacketGenerator::new(prefixes(), TrafficMix::WorstCase, 2).with_miss_fraction(0.5);
        let mut misses = 0;
        for _ in 0..1000 {
            let h = Ipv4Header::parse(&g.next_packet()).unwrap();
            if table.lookup(h.dst).is_none() {
                misses += 1;
            }
        }
        assert!((400..600).contains(&misses), "misses {misses}");
    }

    #[test]
    fn imix_has_three_sizes_in_ratio() {
        let mut g = PacketGenerator::new(prefixes(), TrafficMix::Imix, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..12_000 {
            *counts.entry(g.next_packet().len()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        let small = counts[&40] as f64 / 12_000.0;
        assert!((small - 7.0 / 12.0).abs() < 0.03, "small fraction {small}");
        assert!(counts[&576] > counts[&1500]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PacketGenerator::new(prefixes(), TrafficMix::Imix, 9);
        let mut b = PacketGenerator::new(prefixes(), TrafficMix::Imix, 9);
        for _ in 0..50 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    #[test]
    fn fixed_size_respects_minimum() {
        let mut g = PacketGenerator::new(prefixes(), TrafficMix::Fixed(10), 4);
        assert_eq!(g.next_packet().len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one destination prefix")]
    fn empty_prefixes_panics() {
        let _ = PacketGenerator::new(vec![], TrafficMix::WorstCase, 0);
    }
}
