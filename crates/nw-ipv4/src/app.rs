//! The IPv4 fast path as a DSOC application graph.
//!
//! §7.2's demonstration workload, expressed in the platform-independent
//! object model: ingress classification, longest-prefix-match lookup, header
//! rewrite, and egress — the stages every NPU fast path of the period
//! implemented. Compute weights are GP-RISC baseline cycles calibrated
//! against software IP-forwarding studies of the era (a few hundred cycles
//! per packet end to end) and split so that lookup dominates, parse/rewrite
//! follow, and egress is cheap.

use nw_dsoc::{Application, BuildAppError, Domain, MethodDef, ObjectDef};
use nw_types::ObjectId;

/// Object/method layout of the fast-path application (indices into the
/// built [`Application`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastPathLayout {
    /// Ingress classifier object (entry point, method 0 = `ingest`).
    pub classifier: ObjectId,
    /// Route-lookup object (method 0 = twoway `lookup`).
    pub lookup: ObjectId,
    /// Header-rewrite object (method 0 = `rewrite`).
    pub rewriter: ObjectId,
    /// Egress object (method 0 = `emit`).
    pub egress: ObjectId,
}

/// Per-stage compute weights (GP-RISC baseline cycles per packet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastPathWeights {
    /// Parse + validate (checksum verify).
    pub classify_cycles: u64,
    /// LPM lookup compute (trie walks on the lookup engine's PE).
    pub lookup_cycles: u64,
    /// TTL decrement + incremental checksum + encapsulation.
    pub rewrite_cycles: u64,
    /// Egress queuing.
    pub emit_cycles: u64,
}

impl Default for FastPathWeights {
    fn default() -> Self {
        FastPathWeights {
            classify_cycles: 90,
            lookup_cycles: 80,
            rewrite_cycles: 60,
            emit_cycles: 30,
        }
    }
}

impl FastPathWeights {
    /// Total cycles per packet at GP-RISC baseline speed.
    pub fn total(&self) -> u64 {
        self.classify_cycles + self.lookup_cycles + self.rewrite_cycles + self.emit_cycles
    }
}

/// Builds the fast-path application with `replicas` parallel packet-worker
/// chains sharing a single lookup object (the shared-table bottleneck that
/// makes mapping interesting).
///
/// With `replicas = 1` the graph is the classic 4-stage pipeline. Larger
/// replica counts model the paper's "large-scale multi-processor" instance:
/// each replica is an independent classify→rewrite→emit chain, all calling
/// the same lookup service.
///
/// # Errors
///
/// Propagates [`BuildAppError`] (cannot occur for valid `replicas >= 1`;
/// `replicas == 0` yields [`BuildAppError::NoEntryPoint`]).
pub fn fast_path_app(
    replicas: usize,
    weights: &FastPathWeights,
) -> Result<(Application, Vec<FastPathLayout>), BuildAppError> {
    let mut b = Application::builder("ipv4-fast-path");
    let mut layouts = Vec::with_capacity(replicas);
    // One shared lookup object: the route table lives in one place.
    let lookup = b.add_object(
        ObjectDef::new("route-lookup")
            .with_method(
                MethodDef::twoway("lookup", 8, 8)
                    .with_compute(weights.lookup_cycles)
                    .with_local_bytes(32)
                    .with_domain(Domain::PacketHeader),
            )
            .with_state_bytes(2 * 1024 * 1024),
    );
    for r in 0..replicas {
        let classifier = b.add_object(
            ObjectDef::new(&format!("classifier-{r}"))
                .with_method(
                    MethodDef::oneway("ingest", 44)
                        .with_compute(weights.classify_cycles)
                        .with_local_bytes(40)
                        .with_domain(Domain::PacketHeader),
                )
                .with_state_bytes(4 * 1024),
        );
        let rewriter = b.add_object(
            ObjectDef::new(&format!("rewriter-{r}"))
                .with_method(
                    MethodDef::oneway("rewrite", 44)
                        .with_compute(weights.rewrite_cycles)
                        .with_local_bytes(40)
                        .with_domain(Domain::PacketHeader),
                )
                .with_state_bytes(4 * 1024),
        );
        let egress = b.add_object(
            ObjectDef::new(&format!("egress-{r}"))
                .with_method(
                    MethodDef::oneway("emit", 44)
                        .with_compute(weights.emit_cycles)
                        .with_domain(Domain::Control),
                )
                .with_state_bytes(16 * 1024),
        );
        b.connect(classifier, 0, lookup, 0, 1.0);
        b.connect(classifier, 0, rewriter, 0, 1.0);
        b.connect(rewriter, 0, egress, 0, 1.0);
        b.entry(classifier, 0);
        layouts.push(FastPathLayout {
            classifier,
            lookup,
            rewriter,
            egress,
        });
    }
    Ok((b.build()?, layouts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_shape() {
        let (app, layouts) = fast_path_app(1, &FastPathWeights::default()).unwrap();
        assert_eq!(app.objects().len(), 4);
        assert_eq!(layouts.len(), 1);
        assert_eq!(app.entries().len(), 1);
        assert_eq!(app.edges().len(), 3);
        assert_eq!(app.object(layouts[0].lookup).name, "route-lookup");
    }

    #[test]
    fn replicas_share_the_lookup_object() {
        let (app, layouts) = fast_path_app(4, &FastPathWeights::default()).unwrap();
        assert_eq!(app.objects().len(), 1 + 4 * 3);
        let lookup = layouts[0].lookup;
        assert!(layouts.iter().all(|l| l.lookup == lookup));
        // Lookup rate = sum of all entry rates.
        let rates = app.invocation_rates(&[0.01; 4]);
        assert!((rates[lookup.0][0] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn weights_flow_into_loads() {
        let w = FastPathWeights::default();
        let (app, layouts) = fast_path_app(1, &w).unwrap();
        let loads = app.object_loads(&[0.001]);
        assert!((loads[layouts[0].lookup.0] - w.lookup_cycles as f64 * 0.001).abs() < 1e-9);
        assert!((loads[layouts[0].classifier.0] - w.classify_cycles as f64 * 0.001).abs() < 1e-9);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        assert_eq!(
            fast_path_app(0, &FastPathWeights::default()).unwrap_err(),
            BuildAppError::NoEntryPoint
        );
    }

    #[test]
    fn default_weights_total() {
        assert_eq!(FastPathWeights::default().total(), 260);
    }
}
