//! IPv4 header parsing, serialization and checksums.
//!
//! Implements the subset of RFC 791 a router fast path touches: fixed
//! 20-byte headers (options are accepted structurally but the fast path the
//! paper describes punts them to the slow path), the RFC 1071 one's
//! complement checksum, and the RFC 1624 incremental checksum update that
//! makes TTL decrement O(1) instead of a full recompute.

use std::fmt;

/// Errors from [`Ipv4Header::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHeaderError {
    /// Fewer than 20 bytes available.
    TooShort {
        /// Bytes available.
        have: usize,
    },
    /// Version field was not 4.
    BadVersion(u8),
    /// IHL below the minimum of 5 words.
    BadIhl(u8),
    /// Total-length field smaller than the header itself.
    BadTotalLength(u16),
    /// Header checksum did not verify.
    BadChecksum {
        /// Checksum found in the header.
        found: u16,
        /// Checksum expected over the received bytes.
        expected: u16,
    },
    /// Header carries options (IHL > 5): valid IPv4 but not fast-path.
    HasOptions(u8),
}

impl fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHeaderError::TooShort { have } => {
                write!(f, "need 20 header bytes, got {have}")
            }
            ParseHeaderError::BadVersion(v) => write!(f, "IP version {v} is not 4"),
            ParseHeaderError::BadIhl(l) => write!(f, "IHL {l} below minimum 5"),
            ParseHeaderError::BadTotalLength(l) => write!(f, "total length {l} below header size"),
            ParseHeaderError::BadChecksum { found, expected } => {
                write!(f, "checksum {found:#06x} != expected {expected:#06x}")
            }
            ParseHeaderError::HasOptions(l) => {
                write!(f, "IHL {l} carries options; fast path handles IHL 5 only")
            }
        }
    }
}

impl std::error::Error for ParseHeaderError {}

/// Error from [`Ipv4Header::decrement_ttl`] when TTL reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlExpired;

impl fmt::Display for TtlExpired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time-to-live expired in transit")
    }
}

impl std::error::Error for TtlExpired {}

/// A parsed IPv4 header (fixed 20-byte form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Differentiated services + ECN byte.
    pub dscp_ecn: u8,
    /// Total datagram length including header.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits).
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Header checksum as carried.
    pub checksum: u16,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

/// RFC 1071 one's complement sum over 16-bit big-endian words.
///
/// Odd trailing bytes are padded with zero, per the RFC.
pub fn ones_complement_sum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

impl Ipv4Header {
    /// Header length of the fast-path (option-free) form.
    pub const LEN: usize = 20;

    /// Parses and fully validates a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Any structural violation or checksum failure is rejected — see
    /// [`ParseHeaderError`]. The fast path must never forward a corrupt
    /// header.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseHeaderError> {
        if bytes.len() < Self::LEN {
            return Err(ParseHeaderError::TooShort { have: bytes.len() });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseHeaderError::BadVersion(version));
        }
        let ihl = bytes[0] & 0x0F;
        if ihl < 5 {
            return Err(ParseHeaderError::BadIhl(ihl));
        }
        if ihl > 5 {
            return Err(ParseHeaderError::HasOptions(ihl));
        }
        let total_length = u16::from_be_bytes([bytes[2], bytes[3]]);
        if (total_length as usize) < Self::LEN {
            return Err(ParseHeaderError::BadTotalLength(total_length));
        }
        // Verify: one's complement sum over the header including the
        // checksum field must be 0xFFFF.
        let sum = ones_complement_sum(&bytes[..Self::LEN]);
        if sum != 0xFFFF {
            let found = u16::from_be_bytes([bytes[10], bytes[11]]);
            let mut fixed = [0u8; Self::LEN];
            fixed.copy_from_slice(&bytes[..Self::LEN]);
            fixed[10] = 0;
            fixed[11] = 0;
            let expected = !ones_complement_sum(&fixed);
            return Err(ParseHeaderError::BadChecksum { found, expected });
        }
        Ok(Ipv4Header {
            dscp_ecn: bytes[1],
            total_length,
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            flags_fragment: u16::from_be_bytes([bytes[6], bytes[7]]),
            ttl: bytes[8],
            protocol: bytes[9],
            checksum: u16::from_be_bytes([bytes[10], bytes[11]]),
            src: u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
            dst: u32::from_be_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]),
        })
    }

    /// Serializes to 20 bytes, using the stored checksum field verbatim.
    pub fn to_bytes(&self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = self.dscp_ecn;
        b[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        b[4..6].copy_from_slice(&self.identification.to_be_bytes());
        b[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.protocol;
        b[10..12].copy_from_slice(&self.checksum.to_be_bytes());
        b[12..16].copy_from_slice(&self.src.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst.to_be_bytes());
        b
    }

    /// Computes the correct checksum for the current field values and stores
    /// it.
    pub fn refresh_checksum(&mut self) {
        self.checksum = 0;
        let mut b = self.to_bytes();
        b[10] = 0;
        b[11] = 0;
        self.checksum = !ones_complement_sum(&b);
    }

    /// Decrements TTL and applies the RFC 1624 incremental checksum update
    /// (`HC' = ~(~HC + ~m + m')` where `m` is the old TTL/protocol word).
    ///
    /// # Errors
    ///
    /// [`TtlExpired`] when the TTL is already 0 or becomes 0 — the packet
    /// must be dropped (and an ICMP time-exceeded raised by the slow path).
    pub fn decrement_ttl(&mut self) -> Result<(), TtlExpired> {
        if self.ttl <= 1 {
            return Err(TtlExpired);
        }
        let old_word = u16::from_be_bytes([self.ttl, self.protocol]);
        self.ttl -= 1;
        let new_word = u16::from_be_bytes([self.ttl, self.protocol]);
        let mut sum = u32::from(!self.checksum) + u32::from(!old_word) + u32::from(new_word);
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        self.checksum = !(sum as u16);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header {
            dscp_ecn: 0,
            total_length: 40,
            identification: 0x1c46,
            flags_fragment: 0x4000,
            ttl: 64,
            protocol: 6,
            checksum: 0,
            src: u32::from_be_bytes([10, 0, 0, 1]),
            dst: u32::from_be_bytes([192, 168, 1, 1]),
        };
        h.refresh_checksum();
        h
    }

    #[test]
    fn roundtrip_parse_serialize() {
        let h = sample();
        let parsed = Ipv4Header::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn rfc1071_reference_vector() {
        // Classic example: checksum of this well-known header is 0xB861.
        let bytes: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(!ones_complement_sum(&bytes), 0xB861);
    }

    #[test]
    fn corrupted_byte_is_caught() {
        let h = sample();
        let mut b = h.to_bytes().to_vec();
        b[15] ^= 0x01;
        match Ipv4Header::parse(&b) {
            Err(ParseHeaderError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn structural_errors() {
        assert_eq!(
            Ipv4Header::parse(&[0u8; 10]),
            Err(ParseHeaderError::TooShort { have: 10 })
        );
        let h = sample();
        let mut b = h.to_bytes();
        b[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&b), Err(ParseHeaderError::BadVersion(6)));
        b[0] = 0x43; // IHL 3
        assert_eq!(Ipv4Header::parse(&b), Err(ParseHeaderError::BadIhl(3)));
        b[0] = 0x46; // IHL 6 = options
        assert_eq!(Ipv4Header::parse(&b), Err(ParseHeaderError::HasOptions(6)));
    }

    #[test]
    fn bad_total_length() {
        let mut h = sample();
        h.total_length = 10;
        h.refresh_checksum();
        assert_eq!(
            Ipv4Header::parse(&h.to_bytes()),
            Err(ParseHeaderError::BadTotalLength(10))
        );
    }

    #[test]
    fn incremental_ttl_update_matches_recompute() {
        let mut inc = sample();
        inc.decrement_ttl().unwrap();
        let mut full = sample();
        full.ttl -= 1;
        full.refresh_checksum();
        assert_eq!(inc.checksum, full.checksum);
        // And the updated header still verifies.
        assert!(Ipv4Header::parse(&inc.to_bytes()).is_ok());
    }

    #[test]
    fn repeated_decrements_stay_consistent() {
        let mut h = sample();
        for _ in 0..62 {
            h.decrement_ttl().unwrap();
            assert!(Ipv4Header::parse(&h.to_bytes()).is_ok(), "ttl={}", h.ttl);
        }
        assert_eq!(h.ttl, 2);
        h.decrement_ttl().unwrap();
        assert_eq!(h.decrement_ttl(), Err(TtlExpired));
    }

    #[test]
    fn ttl_zero_expires() {
        let mut h = sample();
        h.ttl = 0;
        assert_eq!(h.decrement_ttl(), Err(TtlExpired));
        h.ttl = 1;
        assert_eq!(h.decrement_ttl(), Err(TtlExpired));
    }

    #[test]
    fn odd_length_checksum_pads() {
        assert_eq!(ones_complement_sum(&[0x12]), 0x1200);
        assert_eq!(ones_complement_sum(&[]), 0);
    }
}
