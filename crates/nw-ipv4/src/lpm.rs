//! Longest-prefix-match engines and their cost models.
//!
//! The paper's §8 cites NPSE \[9\]: "In comparison with CAM-based look-up
//! methods, it relies on an SRAM-based approach that is more memory and
//! power-efficient." Experiment T5 reproduces that comparison with four
//! engines sharing one trait:
//!
//! * [`LinearTable`] — the obviously-correct reference (and the property
//!   tests' oracle).
//! * [`BinaryTrie`] — one bit per level.
//! * [`MultibitTrie`] — stride-`k` SRAM trie with controlled prefix
//!   expansion: the NPSE stand-in. Fewer memory accesses per lookup at the
//!   cost of expanded entries.
//! * [`CamTable`] — a ternary-CAM cost model: single-cycle lookups but every
//!   cell burns compare energy on every search, and TCAM cells are ~16×
//!   SRAM area per stored bit.

use std::fmt;

/// An IPv4 prefix: the top `len` bits of `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits must be zero — constructors mask them).
    pub addr: u32,
    /// Prefix length in bits, 0..=32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix, masking host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Network mask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Whether this prefix covers `addr`.
    pub fn matches(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.addr
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

/// A longest-prefix-match table mapping prefixes to next-hop ids.
pub trait LpmTable {
    /// Inserts (or replaces) a route.
    fn insert(&mut self, prefix: Prefix, next_hop: u32);

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: u32) -> Option<u32>;

    /// Number of installed routes.
    fn route_count(&self) -> usize;

    /// Storage bits consumed by the engine (T5's memory axis).
    fn storage_bits(&self) -> u64;

    /// Memory accesses per lookup in the worst case (T5's latency axis —
    /// multiply by the SRAM access time; 1 for CAM).
    fn worst_case_accesses(&self) -> u32;

    /// Energy per lookup in picojoules (T5's power axis).
    fn lookup_energy_pj(&self) -> f64;

    /// Engine name for reports.
    fn name(&self) -> &'static str;
}

/// Energy to read one 32-bit SRAM word (order-of-magnitude, 0.13 µm).
const SRAM_READ_PJ_PER_WORD: f64 = 2.0;
/// Energy for one TCAM cell compare.
const TCAM_COMPARE_PJ_PER_BIT: f64 = 0.015;

/// The linear-scan reference implementation.
#[derive(Debug, Clone, Default)]
pub struct LinearTable {
    routes: Vec<(Prefix, u32)>,
}

impl LinearTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LinearTable::default()
    }
}

impl LpmTable for LinearTable {
    fn insert(&mut self, prefix: Prefix, next_hop: u32) {
        if let Some(r) = self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            r.1 = next_hop;
        } else {
            self.routes.push((prefix, next_hop));
        }
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        self.routes
            .iter()
            .filter(|(p, _)| p.matches(addr))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, nh)| nh)
    }

    fn route_count(&self) -> usize {
        self.routes.len()
    }

    fn storage_bits(&self) -> u64 {
        // 32b addr + 6b len + 32b next hop per route.
        self.routes.len() as u64 * 70
    }

    fn worst_case_accesses(&self) -> u32 {
        self.routes.len() as u32
    }

    fn lookup_energy_pj(&self) -> f64 {
        self.routes.len() as f64 * SRAM_READ_PJ_PER_WORD * 2.0
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[derive(Debug, Clone, Default)]
struct BinNode {
    next_hop: Option<u32>,
    children: [Option<Box<BinNode>>; 2],
}

/// A unibit (binary) trie.
#[derive(Debug, Clone, Default)]
pub struct BinaryTrie {
    root: BinNode,
    routes: usize,
    nodes: u64,
}

impl BinaryTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        BinaryTrie {
            root: BinNode::default(),
            routes: 0,
            nodes: 1,
        }
    }
}

impl LpmTable for BinaryTrie {
    fn insert(&mut self, prefix: Prefix, next_hop: u32) {
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let bit = ((prefix.addr >> (31 - i)) & 1) as usize;
            if node.children[bit].is_none() {
                node.children[bit] = Some(Box::new(BinNode::default()));
                self.nodes += 1;
            }
            node = node.children[bit].as_mut().expect("just ensured");
        }
        if node.next_hop.replace(next_hop).is_none() {
            self.routes += 1;
        }
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.next_hop;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(c) => {
                    node = c;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        best
    }

    fn route_count(&self) -> usize {
        self.routes
    }

    fn storage_bits(&self) -> u64 {
        // Per node: 2 child pointers (~22b each) + next hop (32b) + flag.
        self.nodes * (2 * 22 + 32 + 1)
    }

    fn worst_case_accesses(&self) -> u32 {
        32
    }

    fn lookup_energy_pj(&self) -> f64 {
        // One node word per level on average ~ prefix depth; use worst case.
        32.0 * SRAM_READ_PJ_PER_WORD
    }

    fn name(&self) -> &'static str {
        "binary-trie"
    }
}

#[derive(Debug, Clone)]
struct MbNode {
    /// Next hop per expanded slot, with the originating prefix length so
    /// longer prefixes win on overwrite (controlled prefix expansion).
    slots: Vec<Option<(u8, u32)>>,
    children: Vec<Option<Box<MbNode>>>,
}

impl MbNode {
    fn new(fanout: usize) -> Self {
        MbNode {
            slots: vec![None; fanout],
            children: (0..fanout).map(|_| None).collect(),
        }
    }
}

/// A multibit-stride trie with controlled prefix expansion — the SRAM-based
/// NPSE-style engine.
#[derive(Debug, Clone)]
pub struct MultibitTrie {
    root: MbNode,
    stride: u8,
    routes: usize,
    nodes: u64,
}

impl MultibitTrie {
    /// Creates a trie with the given stride (bits consumed per level).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= stride <= 8`.
    pub fn new(stride: u8) -> Self {
        assert!((1..=8).contains(&stride), "stride {stride} out of 1..=8");
        MultibitTrie {
            root: MbNode::new(1 << stride),
            stride,
            routes: 0,
            nodes: 1,
        }
    }

    /// The configured stride.
    pub fn stride(&self) -> u8 {
        self.stride
    }

    /// Internal node count (memory accounting).
    pub fn node_count(&self) -> u64 {
        self.nodes
    }
}

/// The `stride`-bit index field starting at bit offset `consumed` of `addr`,
/// zero-padded past bit 31 (so strides that do not divide 32 work).
fn level_index(addr: u32, consumed: u8, stride: u8) -> usize {
    let window = if consumed == 0 {
        addr
    } else if consumed >= 32 {
        0
    } else {
        addr << consumed
    };
    (window >> (32 - stride)) as usize
}

impl LpmTable for MultibitTrie {
    fn insert(&mut self, prefix: Prefix, next_hop: u32) {
        let stride = self.stride;
        let fanout = 1usize << stride;
        let mut node = &mut self.root;
        let mut consumed = 0u8;
        // Descend while the prefix covers whole strides.
        while prefix.len - consumed >= stride {
            let idx = level_index(prefix.addr, consumed, stride);
            consumed += stride;
            if consumed == prefix.len {
                // Exact stride boundary: single slot.
                let slot = &mut node.slots[idx];
                let had = slot.is_some_and(|(l, _)| l == prefix.len);
                if slot.is_none_or(|(l, _)| l <= prefix.len) {
                    *slot = Some((prefix.len, next_hop));
                }
                if !had {
                    self.routes += 1;
                }
                return;
            }
            if node.children[idx].is_none() {
                node.children[idx] = Some(Box::new(MbNode::new(fanout)));
                self.nodes += 1;
            }
            node = node.children[idx].as_mut().expect("just ensured");
        }
        // Partial last stride: controlled prefix expansion over the unused
        // low bits of the index field (prefix host bits are zero, so the
        // base index has them cleared already).
        let rem = prefix.len - consumed;
        let base = level_index(prefix.addr, consumed, stride);
        let span = 1usize << (stride - rem);
        let mut inserted_new = false;
        for k in 0..span {
            let idx = base + k;
            let slot = &mut node.slots[idx];
            match *slot {
                Some((l, _)) if l > prefix.len => {}
                _ => {
                    if slot.is_none_or(|(l, _)| l < prefix.len) {
                        inserted_new = true;
                    }
                    *slot = Some((prefix.len, next_hop));
                }
            }
        }
        if inserted_new {
            self.routes += 1;
        }
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        let stride = self.stride;
        let mut node = &self.root;
        let mut consumed = 0u8;
        let mut best: Option<(u8, u32)> = None;
        loop {
            let idx = level_index(addr, consumed, stride);
            if let Some(s) = node.slots[idx] {
                if best.is_none_or(|(l, _)| s.0 >= l) {
                    best = Some(s);
                }
            }
            consumed = consumed.saturating_add(stride);
            if consumed >= 32 {
                break;
            }
            match &node.children[idx] {
                Some(c) => node = c,
                None => break,
            }
        }
        best.map(|(_, nh)| nh)
    }

    fn route_count(&self) -> usize {
        self.routes
    }

    fn storage_bits(&self) -> u64 {
        let fanout = 1u64 << self.stride;
        // Per slot: next hop (32b) + length (6b) + child pointer (22b).
        self.nodes * fanout * (32 + 6 + 22)
    }

    fn worst_case_accesses(&self) -> u32 {
        32u32.div_ceil(self.stride as u32)
    }

    fn lookup_energy_pj(&self) -> f64 {
        f64::from(self.worst_case_accesses()) * SRAM_READ_PJ_PER_WORD * 2.0
    }

    fn name(&self) -> &'static str {
        "multibit-trie"
    }
}

/// A ternary CAM cost model: functionally an LPM table, with the energy and
/// area characteristics of parallel-compare hardware.
#[derive(Debug, Clone, Default)]
pub struct CamTable {
    routes: Vec<(Prefix, u32)>,
}

impl CamTable {
    /// Creates an empty CAM.
    pub fn new() -> Self {
        CamTable::default()
    }

    /// TCAM-to-SRAM area ratio per stored bit (a TCAM cell is ~16 transistors
    /// versus 6 for SRAM, plus match lines) — used by T5's area comparison.
    pub const AREA_RATIO_VS_SRAM: f64 = 2.7;
}

impl LpmTable for CamTable {
    fn insert(&mut self, prefix: Prefix, next_hop: u32) {
        if let Some(r) = self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            r.1 = next_hop;
        } else {
            self.routes.push((prefix, next_hop));
        }
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        // Hardware compares all entries in parallel and priority-encodes the
        // longest match; functionally identical to the linear scan.
        self.routes
            .iter()
            .filter(|(p, _)| p.matches(addr))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, nh)| nh)
    }

    fn route_count(&self) -> usize {
        self.routes.len()
    }

    fn storage_bits(&self) -> u64 {
        // 32 ternary bits (value+mask = 2 stored bits each) + 32b SRAM next
        // hop per entry.
        self.routes.len() as u64 * (32 * 2 + 32)
    }

    fn worst_case_accesses(&self) -> u32 {
        1
    }

    fn lookup_energy_pj(&self) -> f64 {
        // Every ternary cell compares on every search.
        self.routes.len() as f64 * 64.0 * TCAM_COMPARE_PJ_PER_BIT
    }

    fn name(&self) -> &'static str {
        "tcam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> Vec<Box<dyn LpmTable>> {
        vec![
            Box::new(LinearTable::new()),
            Box::new(BinaryTrie::new()),
            Box::new(MultibitTrie::new(4)),
            Box::new(MultibitTrie::new(8)),
            Box::new(MultibitTrie::new(1)),
            Box::new(CamTable::new()),
        ]
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn prefix_masking_and_match() {
        let p = Prefix::new(ip(10, 1, 2, 3), 16);
        assert_eq!(p.addr, ip(10, 1, 0, 0));
        assert!(p.matches(ip(10, 1, 255, 255)));
        assert!(!p.matches(ip(10, 2, 0, 0)));
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(32), u32::MAX);
    }

    #[test]
    fn longest_match_wins_on_all_engines() {
        for mut t in engines() {
            t.insert(Prefix::new(ip(10, 0, 0, 0), 8), 1);
            t.insert(Prefix::new(ip(10, 1, 0, 0), 16), 2);
            t.insert(Prefix::new(ip(10, 1, 2, 0), 24), 3);
            assert_eq!(t.lookup(ip(10, 1, 2, 9)), Some(3), "{}", t.name());
            assert_eq!(t.lookup(ip(10, 1, 9, 9)), Some(2), "{}", t.name());
            assert_eq!(t.lookup(ip(10, 9, 9, 9)), Some(1), "{}", t.name());
            assert_eq!(t.lookup(ip(11, 0, 0, 0)), None, "{}", t.name());
            assert_eq!(t.route_count(), 3, "{}", t.name());
        }
    }

    #[test]
    fn default_route_matches_everything() {
        for mut t in engines() {
            t.insert(Prefix::new(0, 0), 99);
            assert_eq!(t.lookup(ip(1, 2, 3, 4)), Some(99), "{}", t.name());
            t.insert(Prefix::new(ip(1, 0, 0, 0), 8), 5);
            assert_eq!(t.lookup(ip(1, 2, 3, 4)), Some(5), "{}", t.name());
            assert_eq!(t.lookup(ip(9, 9, 9, 9)), Some(99), "{}", t.name());
        }
    }

    #[test]
    fn host_routes_and_reinsert() {
        for mut t in engines() {
            t.insert(Prefix::new(ip(192, 168, 0, 1), 32), 7);
            assert_eq!(t.lookup(ip(192, 168, 0, 1)), Some(7), "{}", t.name());
            assert_eq!(t.lookup(ip(192, 168, 0, 2)), None, "{}", t.name());
            t.insert(Prefix::new(ip(192, 168, 0, 1), 32), 8);
            assert_eq!(t.lookup(ip(192, 168, 0, 1)), Some(8), "{}", t.name());
        }
    }

    #[test]
    fn odd_prefix_lengths_on_multibit() {
        // Lengths that straddle stride boundaries exercise expansion.
        for stride in [3u8, 4, 5, 8] {
            let mut t = MultibitTrie::new(stride);
            let mut reference = LinearTable::new();
            for (i, len) in [1u8, 7, 9, 13, 17, 22, 27, 31].iter().enumerate() {
                let p = Prefix::new(ip(172, 16, 0, 0) | (i as u32) << 8, *len);
                t.insert(p, i as u32);
                reference.insert(p, i as u32);
            }
            for probe in [
                ip(172, 16, 0, 1),
                ip(172, 16, 1, 0),
                ip(172, 17, 0, 0),
                ip(172, 0, 0, 0),
                ip(128, 0, 0, 0),
            ] {
                assert_eq!(
                    t.lookup(probe),
                    reference.lookup(probe),
                    "stride {stride} probe {probe:#010x}"
                );
            }
        }
    }

    #[test]
    fn multibit_accesses_shrink_with_stride() {
        assert_eq!(MultibitTrie::new(1).worst_case_accesses(), 32);
        assert_eq!(MultibitTrie::new(4).worst_case_accesses(), 8);
        assert_eq!(MultibitTrie::new(8).worst_case_accesses(), 4);
    }

    #[test]
    fn cam_energy_grows_with_entries_trie_does_not() {
        let mut cam = CamTable::new();
        let mut trie = MultibitTrie::new(4);
        for i in 0..1000u32 {
            let p = Prefix::new(i << 12, 24);
            cam.insert(p, i);
            trie.insert(p, i);
        }
        // CAM search energy scales with table size; the trie's does not.
        assert!(cam.lookup_energy_pj() > 10.0 * trie.lookup_energy_pj());
        assert_eq!(cam.worst_case_accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "out of 1..=8")]
    fn bad_stride_panics() {
        let _ = MultibitTrie::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn bad_prefix_len_panics() {
        let _ = Prefix::new(0, 33);
    }
}
