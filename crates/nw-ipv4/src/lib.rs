//! The IPv4 fast-path workload.
//!
//! §7.2 of the paper demonstrates DSOC by mapping "a complete IPv4 fast-path
//! application onto a large-scale multi-processor and H/W multi-threaded
//! instance of the StepNP platform … processing worst-case traffic at a
//! 10 Gbit line rate", and §8 cites the NPSE SRAM-based packet search engine
//! that "in comparison with CAM-based look-up methods … is more memory and
//! power-efficient" \[9\].
//!
//! This crate is that workload, built for real:
//!
//! * [`header`] — IPv4 header parsing/serialization, RFC 1071 checksums and
//!   the RFC 1624 incremental update used on TTL decrement.
//! * [`lpm`] — longest-prefix-match engines: a linear reference, a binary
//!   trie, the multibit-stride SRAM trie (the NPSE stand-in), and the
//!   ternary-CAM cost model it is compared against (experiment T5).
//! * [`routes`] — synthetic route tables with a realistic prefix-length
//!   distribution.
//! * [`traffic`] — worst-case (40-byte) and IMIX packet generators that
//!   produce real, checksum-valid packet bytes.
//! * [`app`] — the fast path expressed as a DSOC application graph, ready
//!   for the MultiFlex mappers and the FPPA platform.

pub mod app;
pub mod header;
pub mod lpm;
pub mod routes;
pub mod traffic;

pub use header::{Ipv4Header, ParseHeaderError, TtlExpired};
pub use lpm::{BinaryTrie, CamTable, LinearTable, LpmTable, MultibitTrie, Prefix};
pub use routes::{synthetic_table, RouteTableConfig};
pub use traffic::{PacketGenerator, TrafficMix};
