//! Property tests for the IPv4 substrate: header codec integrity, the
//! RFC 1624 incremental checksum, and LPM engine equivalence.

use nw_ipv4::{BinaryTrie, CamTable, Ipv4Header, LinearTable, LpmTable, MultibitTrie, Prefix};
use proptest::prelude::*;

fn arb_header() -> impl Strategy<Value = Ipv4Header> {
    (
        any::<u8>(),
        20u16..9000,
        any::<u16>(),
        0u16..0x4000,
        2u8..=255,
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(dscp, total, id, frag, ttl, proto, src, dst)| {
            let mut h = Ipv4Header {
                dscp_ecn: dscp,
                total_length: total,
                identification: id,
                flags_fragment: frag,
                ttl,
                protocol: proto,
                checksum: 0,
                src,
                dst,
            };
            h.refresh_checksum();
            h
        })
}

proptest! {
    // Pinned effort for CI determinism; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → parse is the identity for any valid header.
    #[test]
    fn header_roundtrip(h in arb_header()) {
        let parsed = Ipv4Header::parse(&h.to_bytes()).expect("valid header parses");
        prop_assert_eq!(parsed, h);
    }

    /// Any single-bit corruption of a valid header is rejected.
    #[test]
    fn single_bit_corruption_detected(h in arb_header(), bit in 0usize..160) {
        let mut b = h.to_bytes();
        b[bit / 8] ^= 1 << (bit % 8);
        // Either a structural error or a checksum error — never accepted
        // unchanged (flipping version/IHL/length bits changes structure; any
        // other flip breaks the checksum).
        if let Ok(parsed) = Ipv4Header::parse(&b) {
            // The only acceptable parse is if the flip hit the checksum
            // field such that... it cannot: checksum covers every word.
            prop_assert!(false, "corrupted header accepted: {parsed:?}");
        }
    }

    /// Incremental TTL checksum update equals a full recompute, repeatedly.
    #[test]
    fn incremental_checksum_equals_recompute(h in arb_header(), steps in 1u8..16) {
        let mut inc = h;
        let mut full = h;
        for _ in 0..steps.min(h.ttl.saturating_sub(1)) {
            if inc.decrement_ttl().is_err() { break; }
            full.ttl -= 1;
            full.refresh_checksum();
            prop_assert_eq!(inc.checksum, full.checksum);
            prop_assert!(Ipv4Header::parse(&inc.to_bytes()).is_ok());
        }
    }

    /// All LPM engines agree with the linear-scan oracle on arbitrary
    /// tables and probes.
    #[test]
    fn lpm_engines_agree_with_oracle(
        routes in prop::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 1..48),
        probes in prop::collection::vec(any::<u32>(), 1..64),
    ) {
        let mut oracle = LinearTable::new();
        let mut bin = BinaryTrie::new();
        let mut mb3 = MultibitTrie::new(3);
        let mut mb4 = MultibitTrie::new(4);
        let mut mb8 = MultibitTrie::new(8);
        let mut cam = CamTable::new();
        // Skip duplicate prefixes with conflicting next hops: replacement
        // order is well-defined per engine but the test wants one source of
        // truth, so only the first (prefix → next hop) binding is used.
        let mut seen = std::collections::HashSet::new();
        for &(addr, len, nh) in &routes {
            let p = Prefix::new(addr, len);
            if seen.insert(p) {
                oracle.insert(p, nh);
                bin.insert(p, nh);
                mb3.insert(p, nh);
                mb4.insert(p, nh);
                mb8.insert(p, nh);
                cam.insert(p, nh);
            }
        }
        for &probe in &probes {
            let want = oracle.lookup(probe);
            prop_assert_eq!(bin.lookup(probe), want, "binary trie at {:#010x}", probe);
            prop_assert_eq!(mb3.lookup(probe), want, "stride-3 trie at {:#010x}", probe);
            prop_assert_eq!(mb4.lookup(probe), want, "stride-4 trie at {:#010x}", probe);
            prop_assert_eq!(mb8.lookup(probe), want, "stride-8 trie at {:#010x}", probe);
            prop_assert_eq!(cam.lookup(probe), want, "cam at {:#010x}", probe);
        }
        // And every inserted prefix's own network address resolves.
        for &(addr, len, _) in &routes {
            let p = Prefix::new(addr, len);
            prop_assert!(bin.lookup(p.addr).is_some());
        }
    }
}
