//! The event taxonomy and the sink contract.
//!
//! Events are small `Copy` records stamped with the simulation cycle they
//! occurred in. Emitters produce them in simulation order, so a sink's
//! buffer is chronologically sorted by construction — the Perfetto
//! exporter relies on that instead of re-sorting.

use std::collections::VecDeque;

/// One cycle-stamped structured event from the simulation domain.
///
/// Identifiers are plain indexes (endpoint, router, PE, thread, object) —
/// the trace consumer resolves them against the platform it traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was accepted into a source network interface.
    FlitInject {
        /// Cycle of acceptance.
        cycle: u64,
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dst: usize,
        /// Payload bytes carried.
        bytes: usize,
    },
    /// A packet reached its destination eject queue.
    FlitDeliver {
        /// Cycle of delivery.
        cycle: u64,
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dst: usize,
        /// End-to-end cycles since NI acceptance.
        latency: u64,
    },
    /// A router output port started serializing a packet onto a link.
    LinkTransfer {
        /// Cycle the transfer started.
        cycle: u64,
        /// Upstream router.
        router: usize,
        /// Output port index at that router.
        port: usize,
        /// Downstream router.
        to: usize,
        /// Flits transported.
        flits: u64,
        /// Serialization cycles the link stays occupied.
        ser: u64,
    },
    /// The runtime dispatched a handler program onto a hardware thread.
    HandlerStart {
        /// Dispatch cycle.
        cycle: u64,
        /// Hosting PE.
        pe: usize,
        /// Hardware thread index.
        thread: usize,
        /// Application object the handler belongs to.
        object: usize,
    },
    /// A handler program retired (its hardware thread went idle).
    HandlerEnd {
        /// Retirement cycle.
        cycle: u64,
        /// Hosting PE.
        pe: usize,
        /// Hardware thread index.
        thread: usize,
    },
    /// A recorded round trip exceeded its object's deadline budget.
    DeadlineMiss {
        /// Reply-delivery cycle (when the miss was judged).
        cycle: u64,
        /// Object the latency was attributed to.
        object: usize,
        /// Measured end-to-end latency.
        latency: u64,
        /// The budget it blew.
        budget: u64,
    },
    /// The active-set scheduler fast-forwarded over a quiet span.
    FastForward {
        /// Cycle the span started.
        cycle: u64,
        /// Cycles skipped in one hop.
        span: u64,
    },
    /// A fault campaign applied one scheduled fault.
    FaultInjected {
        /// Injection cycle.
        cycle: u64,
        /// Fault class discriminant (see `nw-fault`'s `FaultKind`; the
        /// trace layer keeps it opaque): 0 = transient link, 1 = permanent
        /// link, 2 = router stall, 3 = drop, 4 = corrupt, 5 = PE crash,
        /// 6 = PE restart.
        kind: u8,
        /// Primary target index (router, endpoint, or PE per `kind`).
        target: usize,
        /// Secondary argument (port index, recovery cycle, or 0).
        arg: u64,
    },
    /// The resilience layer re-issued a timed-out invocation.
    RetryIssued {
        /// Re-issue cycle.
        cycle: u64,
        /// Requesting PE.
        pe: usize,
        /// Requesting hardware thread.
        thread: usize,
        /// Attempt number (1 = first retry).
        attempt: u32,
    },
    /// Degraded-mode rerouting recomputed routes around a dead link.
    Reroute {
        /// Recomputation cycle.
        cycle: u64,
        /// Router whose link died.
        router: usize,
        /// Dead output-port index at that router.
        port: usize,
    },
}

impl TraceEvent {
    /// The cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::FlitInject { cycle, .. }
            | TraceEvent::FlitDeliver { cycle, .. }
            | TraceEvent::LinkTransfer { cycle, .. }
            | TraceEvent::HandlerStart { cycle, .. }
            | TraceEvent::HandlerEnd { cycle, .. }
            | TraceEvent::DeadlineMiss { cycle, .. }
            | TraceEvent::FastForward { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::RetryIssued { cycle, .. }
            | TraceEvent::Reroute { cycle, .. } => cycle,
        }
    }
}

/// Receives simulation trace events.
///
/// The contract: a sink is a pure observer. `emit` must not panic on any
/// event sequence and must not feed anything back into the simulation
/// (the platform only ever hands it events, never reads it). Emitters
/// thread sinks as `Option<&mut dyn TraceSink>`, so the disabled path is
/// one branch and zero allocation. Sinks are `Send` so a platform owning
/// one can move across sweep-worker threads (forked replicas run under
/// `parallel_map`).
pub trait TraceSink: std::fmt::Debug + Send {
    /// Receives one event, in simulation order.
    fn emit(&mut self, ev: TraceEvent);
    /// Downcast support so owners of a boxed sink can recover the concrete
    /// type (e.g. drain a [`RingBufferSink`] after a traced run).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A bounded FIFO of the most recent events.
///
/// When full, the *oldest* event is dropped and counted — the tail of a
/// run is usually the interesting part, and the exporter knows how to
/// skip span ends whose begins were evicted.
#[derive(Debug)]
pub struct RingBufferSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `cap` events (`cap` is clamped to >= 1).
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes the buffered events (oldest first), leaving the ring empty.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut s = RingBufferSink::new(2);
        for c in 0..5 {
            s.emit(TraceEvent::FastForward { cycle: c, span: 1 });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let evs = s.drain();
        assert_eq!(evs[0].cycle(), 3);
        assert_eq!(evs[1].cycle(), 4);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 3, "drain does not reset the drop counter");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = RingBufferSink::new(0);
        s.emit(TraceEvent::FastForward { cycle: 7, span: 2 });
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn downcast_recovers_concrete_sink() {
        let mut boxed: Box<dyn TraceSink> = Box::new(RingBufferSink::new(8));
        boxed.emit(TraceEvent::FlitInject {
            cycle: 1,
            src: 0,
            dst: 3,
            bytes: 40,
        });
        let ring = boxed
            .as_any_mut()
            .downcast_mut::<RingBufferSink>()
            .expect("concrete type is RingBufferSink");
        assert_eq!(ring.len(), 1);
    }
}
