//! Observability for the platform simulator: deterministic trace events,
//! contention heatmaps, Chrome/Perfetto trace export, and a host-side
//! phase profiler.
//!
//! Two strictly separated domains live here:
//!
//! * **Sim-domain tracing** ([`TraceEvent`], [`TraceSink`],
//!   [`RingBufferSink`], [`NocHeatmap`]) — cycle-stamped structured events
//!   the platform emits while simulating. Everything in this half is a pure
//!   *observer*: events are derived from simulation state, never fed back
//!   into it, so a traced run is bit-identical to an untraced one (pinned
//!   by the scheduler differential suite). Sinks are threaded as
//!   `Option<&mut dyn TraceSink>`; the disabled path is a single `None`
//!   check with no allocation.
//! * **Host-domain profiling** ([`HostProfiler`], [`HostPhase`]) — wall
//!   clock attribution of the scheduler main loop into named phases. This
//!   is the *only* non-bench code in the workspace allowed to read the
//!   wall clock, under an audited `nw-analyze` ND02 allowlist exemption:
//!   readings land exclusively in observability reports, never in
//!   simulation state.
//!
//! [`export_chrome_trace`] renders captured events as Chrome trace-event /
//! Perfetto JSON (one simulated cycle = one microsecond of trace time),
//! and [`validate_chrome_trace`] re-parses such a file with a
//! dependency-free JSON reader, checking timestamp monotonicity and
//! begin/end span pairing — the trace smoke tests' oracle.

pub mod event;
pub mod heatmap;
pub mod perfetto;
pub mod profile;

pub use event::{RingBufferSink, TraceEvent, TraceSink};
pub use heatmap::{LinkLoad, NocHeatmap, RouterLoad};
pub use perfetto::{export_chrome_trace, validate_chrome_trace, TraceCheck};
pub use profile::{HostPhase, HostProfiler, PhaseSlice, ProfileReport};
