//! Per-link utilization and per-router queue-occupancy heatmaps.
//!
//! The NoC engine maintains these counters event-driven (updated when a
//! transfer fires or a queue length changes, never by per-cycle sampling),
//! so they are exact under both schedulers — a fast-forwarded span
//! contributes the same occupancy-x-time as the dense scheduler stepping
//! through it.

use std::fmt::Write as _;

/// Load on one directed link (router output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkLoad {
    /// Upstream router.
    pub router: usize,
    /// Output port index at that router.
    pub port: usize,
    /// Downstream router.
    pub to: usize,
    /// Cycles the link spent serializing packets.
    pub busy_cycles: u64,
    /// Packets transported.
    pub packets: u64,
    /// Flits transported.
    pub flits: u64,
}

impl LinkLoad {
    /// Busy cycles over the observation window (0.0 for an empty window).
    pub fn utilization(&self, window: u64) -> f64 {
        if window == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / window as f64
        }
    }
}

/// Queueing pressure at one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterLoad {
    /// Router index.
    pub router: usize,
    /// Time integral of the output-queue length (packet-cycles): mean
    /// occupancy is `queue_integral / window`.
    pub queue_integral: u64,
    /// Peak output-queue length observed.
    pub peak_queue: usize,
    /// Packets delivered to this router's local endpoint.
    pub delivered: u64,
}

impl RouterLoad {
    /// Mean queued packets over the observation window.
    pub fn mean_queue(&self, window: u64) -> f64 {
        if window == 0 {
            0.0
        } else {
            self.queue_integral as f64 / window as f64
        }
    }
}

/// The full contention picture of one traced run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NocHeatmap {
    /// Observation window in cycles (trace start to capture).
    pub window: u64,
    /// Every link with any recorded traffic, in (router, port) order.
    pub links: Vec<LinkLoad>,
    /// Every router with any recorded queueing or delivery, in index order.
    pub routers: Vec<RouterLoad>,
}

impl NocHeatmap {
    /// Renders the `top` busiest links and most-queued routers as a
    /// human-readable table (hot-spot triage for the raw-speed work).
    pub fn render(&self, top: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "NoC heatmap over {} cycles", self.window);
        let mut links = self.links.clone();
        links.sort_by(|a, b| {
            b.busy_cycles
                .cmp(&a.busy_cycles)
                .then(a.router.cmp(&b.router))
        });
        let _ = writeln!(s, "  busiest links (router.port -> to):");
        for l in links.iter().take(top) {
            let _ = writeln!(
                s,
                "    r{}.p{} -> r{}  {:>5.1}% busy  {} pkts  {} flits",
                l.router,
                l.port,
                l.to,
                l.utilization(self.window) * 100.0,
                l.packets,
                l.flits
            );
        }
        let mut routers = self.routers.clone();
        routers.sort_by(|a, b| {
            b.queue_integral
                .cmp(&a.queue_integral)
                .then(a.router.cmp(&b.router))
        });
        let _ = writeln!(s, "  most-queued routers:");
        for r in routers.iter().take(top) {
            let _ = writeln!(
                s,
                "    r{}  mean queue {:.2}  peak {}  delivered {}",
                r.router,
                r.mean_queue(self.window),
                r.peak_queue,
                r.delivered
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_orders_by_load() {
        let h = NocHeatmap {
            window: 100,
            links: vec![
                LinkLoad {
                    router: 0,
                    port: 0,
                    to: 1,
                    busy_cycles: 10,
                    packets: 2,
                    flits: 8,
                },
                LinkLoad {
                    router: 3,
                    port: 1,
                    to: 2,
                    busy_cycles: 90,
                    packets: 9,
                    flits: 90,
                },
            ],
            routers: vec![RouterLoad {
                router: 2,
                queue_integral: 250,
                peak_queue: 5,
                delivered: 9,
            }],
        };
        let out = h.render(10);
        let hot = out.find("r3.p1").expect("hot link listed");
        let cold = out.find("r0.p0").expect("cold link listed");
        assert!(hot < cold, "busiest link first:\n{out}");
        assert!(out.contains("mean queue 2.50"), "{out}");
        assert_eq!(h.links[1].utilization(100), 0.9);
        assert_eq!(h.links[1].utilization(0), 0.0);
    }
}
