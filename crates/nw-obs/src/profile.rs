//! Host-side phase profiler for the scheduler main loop.
//!
//! This is *host-domain* observability: it measures where the simulator
//! process spends wall-clock time, attributed to named phases of the
//! platform step. It never touches simulation state, so profiled runs
//! stay bit-identical to unprofiled ones.
//!
//! Timing is **lap-based**: the profiler keeps a single running mark and,
//! at each phase boundary, attributes the time since the previous mark to
//! the phase that just finished. One `Instant::now` read per boundary,
//! and every nanosecond between `arm` and `pause` lands in exactly one
//! phase — which is what lets `expt bench` assert that the phase breakdown
//! sums to the measured loop total (within noise). The cost of work that
//! happens between laps without its own phase (e.g. the active-set
//! quiet-span probe) folds into the next lap taken.
//!
//! Wall-clock reads live only in this file; the `nw-analyze` ND02 rule
//! exempts it via the audited allowlist because readings flow exclusively
//! into observability reports, never into simulation results.

use std::time::{Duration, Instant};

/// One named phase of the platform main loop.
///
/// The first seven are the numbered sub-steps of a platform step, in
/// execution order; `FastForward` and `Settle` belong to the run loop
/// around the steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostPhase {
    /// Ingress pacing: paced packet injection into source NIs.
    IoPacing,
    /// NoC clock tick: wheel pop, NI drain, link transmit.
    NocTick,
    /// Moving ejected packets into runtime queues.
    RouteArrivals,
    /// Service endpoints consuming and replying.
    Services,
    /// Runtime drive + handler dispatch onto hardware threads.
    Dispatch,
    /// Stepping the processing elements.
    PeStep,
    /// Flushing PE outboxes back into the NoC.
    Outbox,
    /// Active-set quiet-span fast-forward hops.
    FastForward,
    /// End-of-run accounting settle and report collection.
    Settle,
}

impl HostPhase {
    /// All phases, in execution order.
    pub const ALL: [HostPhase; 9] = [
        HostPhase::IoPacing,
        HostPhase::NocTick,
        HostPhase::RouteArrivals,
        HostPhase::Services,
        HostPhase::Dispatch,
        HostPhase::PeStep,
        HostPhase::Outbox,
        HostPhase::FastForward,
        HostPhase::Settle,
    ];

    /// Stable snake_case name (used as the JSON key in bench reports).
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::IoPacing => "io_pacing",
            HostPhase::NocTick => "noc_tick",
            HostPhase::RouteArrivals => "route_arrivals",
            HostPhase::Services => "services",
            HostPhase::Dispatch => "dispatch",
            HostPhase::PeStep => "pe_step",
            HostPhase::Outbox => "outbox",
            HostPhase::FastForward => "fast_forward",
            HostPhase::Settle => "settle",
        }
    }

    /// Hierarchy parent: per-step phases group under `step`, loop-level
    /// phases under `run`.
    pub fn group(self) -> &'static str {
        match self {
            HostPhase::FastForward | HostPhase::Settle => "run",
            _ => "step",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated wall-clock attribution for the scheduler main loop.
///
/// Usage: [`arm`](HostProfiler::arm) when the loop starts, call
/// [`lap`](HostProfiler::lap) at the end of each phase, and
/// [`pause`](HostProfiler::pause) when leaving the loop (so time spent
/// outside it is attributed to nothing). [`report`](HostProfiler::report)
/// snapshots the totals.
#[derive(Debug, Default)]
pub struct HostProfiler {
    mark: Option<Instant>,
    acc: [Duration; HostPhase::ALL.len()],
    laps: [u64; HostPhase::ALL.len()],
}

impl HostProfiler {
    /// A profiler with all phase accumulators at zero, not armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) the running mark. Time before `arm` is not
    /// attributed to anything.
    pub fn arm(&mut self) {
        self.mark = Some(Instant::now());
    }

    /// Closes the phase that just finished: attributes the time since the
    /// previous mark to `phase` and advances the mark. If the profiler is
    /// not armed this only arms it (nothing is attributed).
    pub fn lap(&mut self, phase: HostPhase) {
        let now = Instant::now();
        if let Some(prev) = self.mark {
            let i = phase.index();
            self.acc[i] += now - prev;
            self.laps[i] += 1;
        }
        self.mark = Some(now);
    }

    /// Drops the running mark; the gap until the next `arm`/`lap` is not
    /// attributed to any phase.
    pub fn pause(&mut self) {
        self.mark = None;
    }

    /// Snapshot of the accumulated per-phase totals.
    pub fn report(&self) -> ProfileReport {
        let phases = HostPhase::ALL
            .iter()
            .map(|&p| PhaseSlice {
                phase: p,
                secs: self.acc[p.index()].as_secs_f64(),
                laps: self.laps[p.index()],
            })
            .collect::<Vec<_>>();
        let total_secs = phases.iter().map(|s| s.secs).sum();
        ProfileReport { phases, total_secs }
    }
}

/// Accumulated time for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSlice {
    /// Which phase.
    pub phase: HostPhase,
    /// Total attributed wall-clock seconds.
    pub secs: f64,
    /// Number of laps (boundary crossings) attributed.
    pub laps: u64,
}

/// Per-phase wall-clock breakdown of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// One slice per [`HostPhase`], in execution order.
    pub phases: Vec<PhaseSlice>,
    /// Sum of all attributed phase time.
    pub total_secs: f64,
}

impl ProfileReport {
    /// Seconds attributed to `phase`.
    pub fn secs(&self, phase: HostPhase) -> f64 {
        self.phases
            .iter()
            .find(|s| s.phase == phase)
            .map_or(0.0, |s| s.secs)
    }

    /// Renders a hierarchical table: phases grouped under `step` / `run`
    /// parents, each with share-of-total, absolute time, and lap count.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let total = if self.total_secs > 0.0 {
            self.total_secs
        } else {
            1.0 // avoid 0/0 shares on an empty profile
        };
        let _ = writeln!(
            s,
            "host phase breakdown  (attributed total {:.3}s)",
            self.total_secs
        );
        for group in ["step", "run"] {
            let members: Vec<&PhaseSlice> = self
                .phases
                .iter()
                .filter(|p| p.phase.group() == group)
                .collect();
            let group_secs: f64 = members.iter().map(|p| p.secs).sum();
            let _ = writeln!(
                s,
                "  {group:<16} {:>6.1}%  {:>9.3}s",
                group_secs / total * 100.0,
                group_secs
            );
            for p in members {
                let _ = writeln!(
                    s,
                    "    {:<14} {:>6.1}%  {:>9.3}s  {:>10} laps",
                    p.phase.name(),
                    p.secs / total * 100.0,
                    p.secs,
                    p.laps
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_attribute_all_time_between_arm_and_pause() {
        let mut prof = HostProfiler::new();
        let start = Instant::now();
        prof.arm();
        std::thread::sleep(Duration::from_millis(2));
        prof.lap(HostPhase::NocTick);
        std::thread::sleep(Duration::from_millis(2));
        prof.lap(HostPhase::PeStep);
        prof.pause();
        let elapsed = start.elapsed().as_secs_f64();
        let rep = prof.report();
        assert!(rep.secs(HostPhase::NocTick) > 0.0);
        assert!(rep.secs(HostPhase::PeStep) > 0.0);
        // Lap-based timing leaves no unattributed gaps inside arm..pause.
        assert!(
            rep.total_secs <= elapsed,
            "attributed {} > elapsed {elapsed}",
            rep.total_secs
        );
        assert!(
            rep.total_secs >= 0.004 * 0.5,
            "sleeps under-attributed: {}",
            rep.total_secs
        );
    }

    #[test]
    fn unarmed_lap_attributes_nothing() {
        let mut prof = HostProfiler::new();
        prof.lap(HostPhase::Settle); // arms only
        let rep = prof.report();
        assert_eq!(rep.secs(HostPhase::Settle), 0.0);
        assert_eq!(rep.phases.iter().map(|p| p.laps).sum::<u64>(), 0);
    }

    #[test]
    fn paused_time_is_not_attributed() {
        let mut prof = HostProfiler::new();
        prof.arm();
        prof.lap(HostPhase::NocTick);
        prof.pause();
        let before = prof.report().total_secs;
        std::thread::sleep(Duration::from_millis(2));
        prof.arm();
        prof.lap(HostPhase::NocTick);
        let after = prof.report().total_secs;
        assert!(
            after - before < 0.002,
            "paused sleep leaked into attribution: {before} -> {after}"
        );
    }

    #[test]
    fn render_groups_phases_hierarchically() {
        let mut prof = HostProfiler::new();
        prof.arm();
        prof.lap(HostPhase::Dispatch);
        prof.lap(HostPhase::FastForward);
        let out = prof.report().render();
        let step = out.find("step").expect("step group");
        let dispatch = out.find("dispatch").expect("dispatch row");
        let run = out.find("run ").expect("run group");
        assert!(step < dispatch && dispatch < run, "hierarchy order:\n{out}");
        assert!(out.contains("laps"));
    }

    #[test]
    fn names_are_stable_snake_case() {
        for p in HostPhase::ALL {
            let n = p.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(HostPhase::ALL.len(), 9);
    }
}
