//! Chrome trace-event / Perfetto JSON export, and its validating reader.
//!
//! The exporter maps one simulated cycle to one microsecond of trace time
//! (the `ts` unit of the Chrome trace-event format), so a Perfetto or
//! `chrome://tracing` timeline reads directly in cycles. Track layout:
//!
//! | pid | process       | events |
//! |-----|---------------|--------|
//! | 1   | `handlers`    | `B`/`E` spans per hardware thread (tid = pe * 1024 + thread) |
//! | 2   | `noc`         | `i` instants: packet inject (tid 0) and deliver (tid 1) |
//! | 3   | `links`       | `X` complete events per link (tid = router * 256 + port), dur = serialization |
//! | 4   | `deadlines`   | `i` instants per object (tid = object id) |
//! | 5   | `scheduler`   | `X` complete events for fast-forwarded spans |
//! | 6   | `faults`      | `i` instants: injections (tid 0), retries (tid 1), reroutes (tid 2) |
//!
//! Emitted JSON is always well formed even on truncated input: a
//! `HandlerEnd` whose begin was evicted from the ring is skipped, and
//! spans still open when the capture ends are closed at the last
//! timestamp. [`validate_chrome_trace`] checks exactly those invariants
//! (parseable, monotone non-decreasing `ts`, matched begin/end pairs)
//! with a dependency-free JSON reader — the trace smoke tests' oracle.

use crate::event::TraceEvent;
use crate::heatmap::NocHeatmap;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const PID_HANDLERS: u64 = 1;
const PID_NOC: u64 = 2;
const PID_LINKS: u64 = 3;
const PID_DEADLINES: u64 = 4;
const PID_SCHED: u64 = 5;
const PID_FAULTS: u64 = 6;

/// Renders captured events (simulation order) as Chrome trace-event JSON.
///
/// `dropped` is the ring's eviction count, recorded under `otherData`;
/// `heatmap`, when present, is embedded as a custom `nocHeatmap` section
/// Perfetto ignores but tooling can read back.
pub fn export_chrome_trace(
    events: &[TraceEvent],
    dropped: u64,
    heatmap: Option<&NocHeatmap>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n\"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(s, "\"otherData\": {{\"droppedEvents\": {dropped}}},");
    if let Some(h) = heatmap {
        s.push_str("\"nocHeatmap\": ");
        write_heatmap(&mut s, h);
        s.push_str(",\n");
    }
    s.push_str("\"traceEvents\": [\n");
    let mut rows: Vec<String> = Vec::with_capacity(events.len() + 5);
    for (pid, name) in [
        (PID_HANDLERS, "handlers"),
        (PID_NOC, "noc"),
        (PID_LINKS, "links"),
        (PID_DEADLINES, "deadlines"),
        (PID_SCHED, "scheduler"),
        (PID_FAULTS, "faults"),
    ] {
        rows.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": \"{name}\"}}}}"
        ));
    }
    // Open-span depth per (pid, tid): a HandlerEnd without a live begin
    // (evicted from the ring) is skipped; leftovers are closed at the end.
    let mut open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut max_ts = 0u64;
    for ev in events {
        max_ts = max_ts.max(ev.cycle());
        match *ev {
            TraceEvent::FlitInject {
                cycle,
                src,
                dst,
                bytes,
            } => rows.push(format!(
                "{{\"name\": \"inject\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_NOC}, \"tid\": 0, \"args\": {{\"src\": {src}, \"dst\": {dst}, \"bytes\": {bytes}}}}}"
            )),
            TraceEvent::FlitDeliver {
                cycle,
                src,
                dst,
                latency,
            } => rows.push(format!(
                "{{\"name\": \"deliver\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_NOC}, \"tid\": 1, \"args\": {{\"src\": {src}, \"dst\": {dst}, \"latency\": {latency}}}}}"
            )),
            TraceEvent::LinkTransfer {
                cycle,
                router,
                port,
                to,
                flits,
                ser,
            } => rows.push(format!(
                "{{\"name\": \"r{router}.p{port}->r{to}\", \"ph\": \"X\", \"ts\": {cycle}, \"dur\": {ser}, \"pid\": {PID_LINKS}, \"tid\": {}, \"args\": {{\"flits\": {flits}}}}}",
                router as u64 * 256 + port as u64
            )),
            TraceEvent::HandlerStart {
                cycle,
                pe,
                thread,
                object,
            } => {
                let tid = pe as u64 * 1024 + thread as u64;
                *open.entry((PID_HANDLERS, tid)).or_insert(0) += 1;
                rows.push(format!(
                    "{{\"name\": \"o{object}\", \"ph\": \"B\", \"ts\": {cycle}, \"pid\": {PID_HANDLERS}, \"tid\": {tid}, \"args\": {{\"object\": {object}}}}}"
                ));
            }
            TraceEvent::HandlerEnd { cycle, pe, thread } => {
                let tid = pe as u64 * 1024 + thread as u64;
                let depth = open.entry((PID_HANDLERS, tid)).or_insert(0);
                if *depth > 0 {
                    *depth -= 1;
                    rows.push(format!(
                        "{{\"ph\": \"E\", \"ts\": {cycle}, \"pid\": {PID_HANDLERS}, \"tid\": {tid}}}"
                    ));
                }
            }
            TraceEvent::DeadlineMiss {
                cycle,
                object,
                latency,
                budget,
            } => rows.push(format!(
                "{{\"name\": \"miss o{object}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_DEADLINES}, \"tid\": {object}, \"args\": {{\"latency\": {latency}, \"budget\": {budget}}}}}"
            )),
            TraceEvent::FastForward { cycle, span } => rows.push(format!(
                "{{\"name\": \"fast-forward\", \"ph\": \"X\", \"ts\": {cycle}, \"dur\": {span}, \"pid\": {PID_SCHED}, \"tid\": 0, \"args\": {{\"span\": {span}}}}}"
            )),
            TraceEvent::FaultInjected {
                cycle,
                kind,
                target,
                arg,
            } => rows.push(format!(
                "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_FAULTS}, \"tid\": 0, \"args\": {{\"kind\": {kind}, \"target\": {target}, \"arg\": {arg}}}}}",
                fault_kind_name(kind)
            )),
            TraceEvent::RetryIssued {
                cycle,
                pe,
                thread,
                attempt,
            } => rows.push(format!(
                "{{\"name\": \"retry\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_FAULTS}, \"tid\": 1, \"args\": {{\"pe\": {pe}, \"thread\": {thread}, \"attempt\": {attempt}}}}}"
            )),
            TraceEvent::Reroute {
                cycle,
                router,
                port,
            } => rows.push(format!(
                "{{\"name\": \"reroute r{router}.p{port}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {cycle}, \"pid\": {PID_FAULTS}, \"tid\": 2, \"args\": {{\"router\": {router}, \"port\": {port}}}}}"
            )),
        }
    }
    // Close every span still open at capture end so B/E always pair.
    for (&(pid, tid), &depth) in &open {
        for _ in 0..depth {
            rows.push(format!(
                "{{\"ph\": \"E\", \"ts\": {max_ts}, \"pid\": {pid}, \"tid\": {tid}}}"
            ));
        }
    }
    for (i, row) in rows.iter().enumerate() {
        s.push_str(row);
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n}\n");
    s
}

/// Human-readable label for a [`TraceEvent::FaultInjected`] discriminant.
fn fault_kind_name(kind: u8) -> &'static str {
    match kind {
        0 => "link-transient",
        1 => "link-dead",
        2 => "router-stall",
        3 => "drop",
        4 => "corrupt",
        5 => "pe-crash",
        6 => "pe-restart",
        _ => "fault",
    }
}

fn write_heatmap(s: &mut String, h: &NocHeatmap) {
    let _ = write!(s, "{{\"window\": {}, \"links\": [", h.window);
    for (i, l) in h.links.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"router\": {}, \"port\": {}, \"to\": {}, \"busy_cycles\": {}, \"packets\": {}, \"flits\": {}}}",
            if i == 0 { "" } else { ", " },
            l.router,
            l.port,
            l.to,
            l.busy_cycles,
            l.packets,
            l.flits
        );
    }
    s.push_str("], \"routers\": [");
    for (i, r) in h.routers.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"router\": {}, \"queue_integral\": {}, \"peak_queue\": {}, \"delivered\": {}}}",
            if i == 0 { "" } else { ", " },
            r.router,
            r.queue_integral,
            r.peak_queue,
            r.delivered
        );
    }
    s.push_str("]}");
}

/// What [`validate_chrome_trace`] verified about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Matched begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Complete (`X`) events.
    pub completes: usize,
    /// Largest timestamp seen.
    pub max_ts: u64,
}

/// Parses `json` as a Chrome trace-event file and checks its invariants:
/// syntactically valid JSON, a `traceEvents` array of objects, timestamps
/// monotone non-decreasing in emission order, and every `E` matched by an
/// earlier unclosed `B` on the same `(pid, tid)` track (with none left
/// open at the end).
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let root = json::parse(json)?;
    let obj = root.as_obj().ok_or("root is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut check = TraceCheck {
        events: events.len(),
        spans: 0,
        instants: 0,
        completes: 0,
        max_ts: 0,
    };
    let mut last_ts: Option<f64> = None;
    let mut open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let fields = ev.as_obj().ok_or(format!("event {i} is not an object"))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ph = get("ph")
            .and_then(json::Value::as_str)
            .ok_or(format!("event {i} has no ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = get("ts")
            .and_then(json::Value::as_num)
            .ok_or(format!("event {i} ({ph}) has no ts"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: ts {ts} < previous {prev}"));
            }
        }
        last_ts = Some(ts);
        check.max_ts = check.max_ts.max(ts as u64);
        let track = (
            get("pid").and_then(json::Value::as_num).unwrap_or(0.0) as u64,
            get("tid").and_then(json::Value::as_num).unwrap_or(0.0) as u64,
        );
        match ph {
            "B" => *open.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(track).or_insert(0);
                if *depth == 0 {
                    return Err(format!("event {i}: E without open B on track {track:?}"));
                }
                *depth -= 1;
                check.spans += 1;
            }
            "i" | "I" => check.instants += 1,
            "X" => check.completes += 1,
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    if let Some((track, depth)) = open.iter().find(|(_, &d)| d > 0) {
        return Err(format!("{depth} unclosed B span(s) on track {track:?}"));
    }
    Ok(check)
}

/// A minimal recursive-descent JSON reader — just enough to validate the
/// exporter's own output (and any standard trace file). No numbers beyond
/// f64, strings with the standard escapes.
mod json {
    /// A parsed JSON value. Object keys keep file order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number, as f64.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, keys in file order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {pos}",
                c as char,
                pos = *pos
            ))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => obj(b, pos),
            Some(b'[') => arr(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => num(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or(format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences whole).
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", *pos)),
            }
        }
    }

    fn obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::{LinkLoad, RouterLoad};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FlitInject {
                cycle: 0,
                src: 5,
                dst: 2,
                bytes: 40,
            },
            TraceEvent::LinkTransfer {
                cycle: 1,
                router: 5,
                port: 0,
                to: 4,
                flits: 6,
                ser: 3,
            },
            TraceEvent::HandlerStart {
                cycle: 2,
                pe: 1,
                thread: 3,
                object: 7,
            },
            TraceEvent::FlitDeliver {
                cycle: 4,
                src: 5,
                dst: 2,
                latency: 4,
            },
            TraceEvent::DeadlineMiss {
                cycle: 5,
                object: 7,
                latency: 900,
                budget: 300,
            },
            TraceEvent::HandlerEnd {
                cycle: 6,
                pe: 1,
                thread: 3,
            },
            TraceEvent::FastForward {
                cycle: 7,
                span: 120,
            },
            TraceEvent::FaultInjected {
                cycle: 8,
                kind: 1,
                target: 5,
                arg: 0,
            },
            TraceEvent::Reroute {
                cycle: 8,
                router: 5,
                port: 0,
            },
            TraceEvent::RetryIssued {
                cycle: 9,
                pe: 1,
                thread: 3,
                attempt: 1,
            },
        ]
    }

    #[test]
    fn export_round_trips_through_validator() {
        let json = export_chrome_trace(&sample_events(), 3, None);
        let check = validate_chrome_trace(&json).expect("own output validates");
        assert_eq!(check.spans, 1);
        assert_eq!(check.instants, 6);
        assert_eq!(check.completes, 2);
        assert_eq!(check.max_ts, 9);
        assert!(json.contains("\"droppedEvents\": 3"));
        assert!(json.contains("\"name\": \"link-dead\""));
        assert!(json.contains("\"name\": \"reroute r5.p0\""));
        assert!(json.contains("\"attempt\": 1"));
    }

    #[test]
    fn orphan_end_is_skipped_and_open_begin_is_closed() {
        // An End whose Begin was evicted, then a Begin that never ends.
        let events = vec![
            TraceEvent::HandlerEnd {
                cycle: 1,
                pe: 0,
                thread: 0,
            },
            TraceEvent::HandlerStart {
                cycle: 2,
                pe: 0,
                thread: 1,
                object: 0,
            },
            TraceEvent::FlitInject {
                cycle: 9,
                src: 0,
                dst: 1,
                bytes: 8,
            },
        ];
        let json = export_chrome_trace(&events, 10, None);
        let check =
            validate_chrome_trace(&json).expect("truncated input still exports well-formed");
        assert_eq!(check.spans, 1, "open span auto-closed at max ts");
        assert_eq!(check.max_ts, 9);
    }

    #[test]
    fn heatmap_section_is_embedded() {
        let h = NocHeatmap {
            window: 50,
            links: vec![LinkLoad {
                router: 1,
                port: 0,
                to: 2,
                busy_cycles: 25,
                packets: 5,
                flits: 30,
            }],
            routers: vec![RouterLoad {
                router: 2,
                queue_integral: 10,
                peak_queue: 2,
                delivered: 5,
            }],
        };
        let json = export_chrome_trace(&sample_events(), 0, Some(&h));
        validate_chrome_trace(&json).expect("valid with heatmap section");
        assert!(json.contains("\"nocHeatmap\""));
        assert!(json.contains("\"busy_cycles\": 25"));
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Non-monotone timestamps.
        let bad_ts = r#"{"traceEvents": [
            {"ph": "i", "s": "t", "name": "a", "ts": 5, "pid": 1, "tid": 0},
            {"ph": "i", "s": "t", "name": "b", "ts": 4, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad_ts).unwrap_err().contains("ts"));
        // E without B.
        let bad_span = r#"{"traceEvents": [
            {"ph": "E", "ts": 1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad_span)
            .unwrap_err()
            .contains("without open B"));
        // B without E.
        let open_span = r#"{"traceEvents": [
            {"ph": "B", "name": "x", "ts": 1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(open_span)
            .unwrap_err()
            .contains("unclosed"));
    }

    #[test]
    fn empty_capture_exports_metadata_only() {
        let json = export_chrome_trace(&[], 0, None);
        let check = validate_chrome_trace(&json).expect("empty trace is valid");
        assert_eq!(check.spans + check.instants + check.completes, 0);
        assert!(check.events >= 5, "process metadata present");
    }
}
