//! Micro-op programs: the PE's ISA abstraction.
//!
//! The reproduction does not interpret a concrete instruction set — the
//! paper's claims depend only on *timing* behaviour (how long a handler
//! computes, when it stalls on the NoC or memory). A [`Program`] is a
//! straight-line sequence of timed micro-ops, typically synthesized by the
//! DSOC runtime from an object's method descriptor and dispatched onto an
//! idle hardware thread per invocation.

use crate::class::KernelDomain;
use nw_types::{Cycles, NodeId};

/// One micro-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Busy-compute for this many GP-RISC-baseline cycles (scaled by the
    /// executing PE's class speedup for the program's domain).
    Compute(u64),
    /// Access the PE-local scratchpad memory; the thread stalls for the
    /// scratchpad's service time but nothing crosses the NoC.
    LocalMem {
        /// Write if true, read otherwise.
        write: bool,
        /// Access size.
        bytes: u64,
    },
    /// Fire-and-forget message to another node (packet forward, async
    /// reply). The thread stalls only until the NI accepts the packet.
    Send {
        /// Destination endpoint.
        dst: NodeId,
        /// Payload size on the wire.
        bytes: u64,
        /// Marshalled payload carried verbatim (may be empty).
        data: Vec<u8>,
        /// Opaque NoC tag (the DSOC runtime uses it to flag replies).
        tag: u64,
    },
    /// Synchronous request/response to another node (remote memory read,
    /// DSOC method call). The thread blocks until the response returns —
    /// this is the latency that hardware multithreading hides.
    Call {
        /// Destination endpoint.
        dst: NodeId,
        /// Request payload size on the wire.
        bytes: u64,
        /// Expected response size.
        reply_bytes: u64,
        /// Marshalled request payload (may be empty).
        data: Vec<u8>,
    },
}

impl Op {
    /// Shorthand for a send with no marshalled payload.
    pub fn send(dst: NodeId, bytes: u64) -> Op {
        Op::Send {
            dst,
            bytes,
            data: Vec::new(),
            tag: 0,
        }
    }

    /// Shorthand for a call with no marshalled payload.
    pub fn call(dst: NodeId, bytes: u64, reply_bytes: u64) -> Op {
        Op::Call {
            dst,
            bytes,
            reply_bytes,
            data: Vec::new(),
        }
    }
}

/// A straight-line micro-op program with a kernel domain annotation.
///
/// # Examples
///
/// ```
/// use nw_pe::{Program, Op, KernelDomain};
/// use nw_types::NodeId;
///
/// let p = Program::new(
///     [Op::Compute(50), Op::call(NodeId(3), 16, 64), Op::Compute(30)],
///     KernelDomain::PacketHeader,
/// );
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.baseline_compute_cycles(), nw_types::Cycles(80));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
    domain: KernelDomain,
}

impl Program {
    /// Creates a program from ops and a domain annotation.
    pub fn new(ops: impl IntoIterator<Item = Op>, domain: KernelDomain) -> Self {
        Program {
            ops: ops.into_iter().collect(),
            domain,
        }
    }

    /// Creates a generic-domain program.
    pub fn straight_line(ops: impl IntoIterator<Item = Op>) -> Self {
        Self::new(ops, KernelDomain::Generic)
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the program, yielding its ops — the fault layer harvests
    /// marshalled payload buffers from unexecuted ops when a PE crashes,
    /// so pooled buffers are recycled instead of leaked.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Op at `pc`, if within the program.
    pub fn op(&self, pc: usize) -> Option<&Op> {
        self.ops.get(pc)
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The kernel domain (decides specialization speedups).
    pub fn domain(&self) -> KernelDomain {
        self.domain
    }

    /// Total `Compute` cycles at GP-RISC baseline speed.
    pub fn baseline_compute_cycles(&self) -> Cycles {
        Cycles(
            self.ops
                .iter()
                .map(|op| match op {
                    Op::Compute(n) => *n,
                    _ => 0,
                })
                .sum(),
        )
    }

    /// Number of synchronous calls (round trips) in the program.
    pub fn call_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Call { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Program::new(
            [
                Op::Compute(10),
                Op::send(NodeId(1), 8),
                Op::call(NodeId(2), 8, 8),
            ],
            KernelDomain::Signal,
        );
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.domain(), KernelDomain::Signal);
        assert_eq!(p.call_count(), 1);
        assert_eq!(p.baseline_compute_cycles(), Cycles(10));
        assert!(matches!(p.op(0), Some(Op::Compute(10))));
        assert!(p.op(3).is_none());
    }

    #[test]
    fn empty_program() {
        let p = Program::straight_line([]);
        assert!(p.is_empty());
        assert_eq!(p.baseline_compute_cycles(), Cycles::ZERO);
    }

    #[test]
    fn op_shorthands_have_empty_data() {
        match Op::send(NodeId(1), 8) {
            Op::Send { data, .. } => assert!(data.is_empty()),
            _ => unreachable!(),
        }
        match Op::call(NodeId(1), 8, 16) {
            Op::Call {
                data, reply_bytes, ..
            } => {
                assert!(data.is_empty());
                assert_eq!(reply_bytes, 16);
            }
            _ => unreachable!(),
        }
    }
}
