//! The processor-specialization continuum of the paper's Figure 1.
//!
//! Figure 1 plots processor classes on two axes: time-to-market (ease of
//! use, flexibility) against product differentiation (power, performance,
//! cost). The parameters here encode that continuum with early-2000s
//! magnitudes: moving from general-purpose RISC toward application-specific
//! hardware buys roughly an order of magnitude in energy efficiency and
//! per-area performance on *matched* kernels, at the price of development
//! effort and loss of generality.

use nw_types::{AreaMm2, Picojoules};
use std::fmt;

/// Application domain of a kernel, used to decide whether a specialized
/// processor's speedup applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelDomain {
    /// Control-dominated code (protocol upper layers, OS services).
    Control,
    /// Signal-processing kernels (filters, transforms).
    Signal,
    /// Packet-header processing (parsing, lookup, classification).
    PacketHeader,
    /// Generic integer compute.
    Generic,
}

impl fmt::Display for KernelDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelDomain::Control => "control",
            KernelDomain::Signal => "signal",
            KernelDomain::PacketHeader => "packet-header",
            KernelDomain::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// Processor classes along the Figure 1 continuum (software-programmable
/// part; the eFPGA and hardwired points live in `nw-fabric` and `nw-hwip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeClass {
    /// General-purpose 32-bit RISC: runs everything, differentiates nothing.
    GpRisc,
    /// Digital signal processor: strong on signal kernels.
    Dsp,
    /// Configurable processor (Arc/Tensilica style): RISC plus tuned
    /// instruction extensions, moderate speedup on its configured domain.
    Configurable {
        /// The domain its extensions were configured for.
        tuned_for: KernelDomain,
    },
    /// Application-specific instruction-set processor: large speedup on its
    /// domain, RISC-like elsewhere.
    Asip {
        /// The domain it was designed for.
        domain: KernelDomain,
    },
}

impl PeClass {
    /// Cycle-count speedup over the GP-RISC baseline for a kernel in
    /// `domain`. Specialization only pays on matched domains.
    pub fn speedup(&self, domain: KernelDomain) -> f64 {
        match *self {
            PeClass::GpRisc => 1.0,
            PeClass::Dsp => {
                if domain == KernelDomain::Signal {
                    4.0
                } else {
                    0.8 // DSPs are awkward for control code
                }
            }
            PeClass::Configurable { tuned_for } => {
                if domain == tuned_for {
                    3.0
                } else {
                    1.0
                }
            }
            PeClass::Asip { domain: d } => {
                if domain == d {
                    8.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Dynamic energy per active cycle. Specialized datapaths do more per
    /// cycle for similar power, so energy *per task* drops with the speedup.
    pub fn energy_per_cycle(&self) -> Picojoules {
        match self {
            PeClass::GpRisc => Picojoules(40.0),
            PeClass::Dsp => Picojoules(55.0),
            PeClass::Configurable { .. } => Picojoules(45.0),
            PeClass::Asip { .. } => Picojoules(50.0),
        }
    }

    /// Core area (logic + register banks, excluding local memories) at the
    /// 0.13 µm reference node.
    pub fn core_area(&self) -> AreaMm2 {
        match self {
            PeClass::GpRisc => AreaMm2(0.8),
            PeClass::Dsp => AreaMm2(1.5),
            PeClass::Configurable { .. } => AreaMm2(1.1),
            PeClass::Asip { .. } => AreaMm2(1.0),
        }
    }

    /// Software development effort multiplier versus GP-RISC (the
    /// time-to-market axis of Figure 1): specialized targets need tool
    /// retargeting and manual tuning.
    pub fn dev_effort(&self) -> f64 {
        match self {
            PeClass::GpRisc => 1.0,
            PeClass::Configurable { .. } => 1.8,
            PeClass::Dsp => 2.5,
            PeClass::Asip { .. } => 4.0,
        }
    }
}

impl fmt::Display for PeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeClass::GpRisc => write!(f, "gp-risc"),
            PeClass::Dsp => write!(f, "dsp"),
            PeClass::Configurable { tuned_for } => write!(f, "configurable({tuned_for})"),
            PeClass::Asip { domain } => write!(f, "asip({domain})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_risc_is_the_flexibility_baseline() {
        for d in [
            KernelDomain::Control,
            KernelDomain::Signal,
            KernelDomain::PacketHeader,
            KernelDomain::Generic,
        ] {
            assert_eq!(PeClass::GpRisc.speedup(d), 1.0);
        }
        assert_eq!(PeClass::GpRisc.dev_effort(), 1.0);
    }

    #[test]
    fn specialization_pays_only_on_matched_domain() {
        let asip = PeClass::Asip {
            domain: KernelDomain::PacketHeader,
        };
        assert!(asip.speedup(KernelDomain::PacketHeader) > 4.0);
        assert_eq!(asip.speedup(KernelDomain::Signal), 1.0);
    }

    #[test]
    fn figure1_ordering_speedup_vs_effort() {
        // Moving right on Figure 1: more speedup on domain, more effort.
        let domain = KernelDomain::Signal;
        let ladder = [
            PeClass::GpRisc,
            PeClass::Configurable { tuned_for: domain },
            PeClass::Dsp,
            PeClass::Asip { domain },
        ];
        for w in ladder.windows(2) {
            assert!(w[1].speedup(domain) >= w[0].speedup(domain));
            assert!(w[1].dev_effort() > w[0].dev_effort());
        }
    }

    #[test]
    fn energy_per_matched_task_drops_with_specialization() {
        // Same kernel, 1000 baseline cycles.
        let domain = KernelDomain::PacketHeader;
        let task_energy = |c: PeClass| {
            let cycles = 1000.0 / c.speedup(domain);
            c.energy_per_cycle().0 * cycles
        };
        let risc = task_energy(PeClass::GpRisc);
        let asip = task_energy(PeClass::Asip { domain });
        assert!(asip < risc / 4.0, "ASIP task energy {asip} vs RISC {risc}");
    }

    #[test]
    fn dsp_is_poor_at_control() {
        assert!(PeClass::Dsp.speedup(KernelDomain::Control) < 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(PeClass::GpRisc.to_string(), "gp-risc");
        assert_eq!(
            PeClass::Asip {
                domain: KernelDomain::PacketHeader
            }
            .to_string(),
            "asip(packet-header)"
        );
    }
}
