//! Multithreaded processing-element models.
//!
//! The paper's §6.2 describes the processor menagerie of an MP-SoC platform
//! — general-purpose RISC, DSPs, ASIPs, configurable processors — and the
//! mechanism that makes them effective behind a high-latency NoC:
//!
//! > "A hardware multithreaded processor has separate register banks for
//! > different threads, with hardware units that schedule threads and swap
//! > them in one cycle."
//!
//! This crate models exactly that. A [`Pe`] has `n` hardware thread
//! contexts executing straight-line micro-op [`Program`]s (compute bursts,
//! local scratchpad accesses, asynchronous sends and synchronous
//! request/response calls). When a thread stalls on a call, the scheduler
//! swaps in another ready context for a configurable penalty (one cycle by
//! default, zero for an ideal machine, or barrel-style round-robin for the
//! ablation of experiment F6).
//!
//! The PE is platform-agnostic: it raises [`PeRequest`]s which the owner
//! (the `nanowall` platform glue) services over the NoC and acknowledges
//! with [`Pe::complete`].
//!
//! # Examples
//!
//! ```
//! use nw_pe::{Pe, PeClass, PeConfig, Program, Op};
//! use nw_sim::Clocked;
//! use nw_types::Cycles;
//!
//! let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 4));
//! let tid = pe.spawn(Program::straight_line([Op::Compute(10)])).unwrap();
//! for c in 0..12 { pe.tick(Cycles(c)); }
//! assert!(pe.thread_is_idle(tid)); // task ran to completion
//! assert_eq!(pe.tasks_completed(), 1);
//! ```

pub mod class;
pub mod pe;
pub mod program;

pub use class::{KernelDomain, PeClass};
pub use pe::{Pe, PeConfig, PeRequest, PeStats, SchedPolicy, SpawnError};
pub use program::{Op, Program};
