//! The hardware-multithreaded processing element.

use crate::class::PeClass;
use crate::program::{Op, Program};
use nw_mem::{MemorySpec, MemoryTechnology};
use nw_sim::{Clocked, Utilization};
use nw_types::{Cycles, NodeId, Picojoules, ThreadId};
use std::collections::VecDeque;
use std::fmt;

/// Hardware thread scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Run the current thread until it stalls, then swap to the next ready
    /// context, paying the swap penalty (the paper's §6.2 machine with a
    /// one-cycle swap).
    #[default]
    SwitchOnStall,
    /// Barrel processor: rotate among ready contexts every cycle with no
    /// swap penalty (F6 ablation).
    RoundRobin,
}

/// Configuration of one processing element.
#[derive(Debug, Clone)]
pub struct PeConfig {
    /// Processor class (Figure 1 continuum point).
    pub class: PeClass,
    /// Number of hardware thread contexts (register banks).
    pub n_threads: usize,
    /// Context-switch penalty in cycles (the paper's HW-MT machines swap in
    /// one cycle; 0 models an ideal machine).
    pub swap_penalty: u64,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Local scratchpad technology (services `Op::LocalMem`).
    pub scratchpad: MemorySpec,
}

impl PeConfig {
    /// A PE of `class` with `n_threads` contexts, one-cycle swap,
    /// switch-on-stall scheduling and an SRAM scratchpad.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(class: PeClass, n_threads: usize) -> Self {
        assert!(n_threads > 0, "a PE needs at least one thread context");
        PeConfig {
            class,
            n_threads,
            swap_penalty: 1,
            policy: SchedPolicy::SwitchOnStall,
            scratchpad: MemorySpec::of(MemoryTechnology::Sram),
        }
    }

    /// Sets the swap penalty.
    pub fn with_swap_penalty(mut self, cycles: u64) -> Self {
        self.swap_penalty = cycles;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// A request the PE raises to its owner for servicing over the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeRequest {
    /// Asynchronous message: complete the thread once the NI accepts it.
    Send {
        /// Destination endpoint.
        dst: NodeId,
        /// Wire payload size.
        bytes: u64,
        /// Marshalled payload.
        data: Vec<u8>,
        /// Opaque NoC tag passed through from the op.
        tag: u64,
    },
    /// Synchronous round trip: complete the thread when the response
    /// arrives.
    Call {
        /// Destination endpoint.
        dst: NodeId,
        /// Request payload size.
        bytes: u64,
        /// Expected response size.
        reply_bytes: u64,
        /// Marshalled payload.
        data: Vec<u8>,
    },
}

/// Error from [`Pe::spawn`] when no context is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnError;

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no idle hardware thread context")
    }
}

impl std::error::Error for SpawnError {}

#[derive(Debug, Clone)]
enum ThreadState {
    /// No task assigned.
    Idle,
    /// Has a task and can execute.
    Ready,
    /// Mid compute burst.
    Computing { remaining: u64 },
    /// Stalled on the local scratchpad until the given cycle.
    ScratchpadStall { until: u64 },
    /// Stalled on a platform-serviced request (NoC send/call).
    AwaitingCompletion,
}

#[derive(Debug, Clone)]
struct Thread {
    state: ThreadState,
    program: Option<Program>,
    pc: usize,
    occupancy: Utilization,
    busy: Utilization,
}

/// Aggregate statistics of one PE.
#[derive(Debug, Clone)]
pub struct PeStats {
    /// Fraction of cycles the core issued (any context).
    pub core_utilization: f64,
    /// Per-thread fraction of cycles holding a task.
    pub thread_occupancy: Vec<f64>,
    /// Tasks run to completion.
    pub tasks_completed: u64,
    /// Total dynamic energy.
    pub energy: Picojoules,
    /// Context switches performed.
    pub swaps: u64,
}

/// A hardware-multithreaded processing element.
///
/// See the [crate-level documentation](crate) for the execution model and
/// an end-to-end example.
#[derive(Debug, Clone)]
pub struct Pe {
    cfg: PeConfig,
    threads: Vec<Thread>,
    current: usize,
    swap_remaining: u64,
    swaps: u64,
    requests: VecDeque<(ThreadId, PeRequest)>,
    core: Utilization,
    tasks_completed: u64,
    /// Scratchpad access energy. Core issue energy is not accumulated
    /// per cycle: it is exactly `energy_per_cycle × busy issue slots`, so
    /// [`Pe::stats`] derives it from the core utilization counter — one
    /// multiply instead of a float addition per cycle, and bulk compute
    /// fast-forwards ([`Pe::advance_quiet`]) stay bit-identical to
    /// per-cycle ticking.
    mem_energy: Picojoules,
    /// Cycle up to which (exclusive) busy/idle accounting has been applied.
    /// An active-set scheduler may skip ticking a dormant PE (every thread
    /// `Idle` or `AwaitingCompletion`); the skipped cycles are settled in
    /// bulk — with identical counter arithmetic — on the next tick or via
    /// [`Pe::settle_accounting`].
    accounted_to: u64,
    /// Threads retired since the last [`Pe::take_retired`], recorded only
    /// when enabled via [`Pe::set_retire_log`] (tracing). `None` keeps the
    /// retire path allocation-free when no one is watching.
    retire_log: Option<Vec<ThreadId>>,
    /// Crashed by fault injection: every context is dead and refuses new
    /// tasks until [`Pe::restart`]. A crashed PE ticks as a pure
    /// accounting no-op (all threads idle), so schedulers need no special
    /// case.
    crashed: bool,
}

impl Pe {
    /// Builds a PE from its configuration.
    pub fn new(cfg: PeConfig) -> Self {
        let threads = (0..cfg.n_threads)
            .map(|_| Thread {
                state: ThreadState::Idle,
                program: None,
                pc: 0,
                occupancy: Utilization::new(),
                busy: Utilization::new(),
            })
            .collect();
        Pe {
            cfg,
            threads,
            current: 0,
            swap_remaining: 0,
            swaps: 0,
            requests: VecDeque::new(),
            core: Utilization::new(),
            tasks_completed: 0,
            mem_energy: Picojoules::ZERO,
            accounted_to: 0,
            retire_log: None,
            crashed: false,
        }
    }

    /// Enables (or disables) recording of retired thread ids for tracing.
    /// Observation only: logging changes no scheduling or accounting.
    pub fn set_retire_log(&mut self, on: bool) {
        self.retire_log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the threads retired since the last call (empty when the log
    /// is disabled or nothing retired).
    pub fn take_retired(&mut self) -> Vec<ThreadId> {
        self.retire_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The configuration this PE was built with.
    pub fn config(&self) -> &PeConfig {
        &self.cfg
    }

    /// Number of hardware thread contexts.
    pub fn n_threads(&self) -> usize {
        self.cfg.n_threads
    }

    /// Whether thread `tid` currently has no task.
    pub fn thread_is_idle(&self, tid: ThreadId) -> bool {
        matches!(self.threads[tid.0].state, ThreadState::Idle)
    }

    /// Number of idle contexts ready to accept a task (0 while crashed).
    pub fn idle_threads(&self) -> usize {
        if self.crashed {
            return 0;
        }
        self.threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Idle))
            .count()
    }

    /// Assigns a task to the lowest-numbered idle context.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] when every context is occupied — the caller
    /// (the DSOC dispatcher) should queue the invocation and retry.
    pub fn spawn(&mut self, program: Program) -> Result<ThreadId, SpawnError> {
        if self.crashed {
            return Err(SpawnError);
        }
        let slot = self
            .threads
            .iter()
            .position(|t| matches!(t.state, ThreadState::Idle))
            .ok_or(SpawnError)?;
        let t = &mut self.threads[slot];
        t.state = if program.is_empty() {
            // Degenerate empty task: completes immediately.
            ThreadState::Idle
        } else {
            ThreadState::Ready
        };
        if program.is_empty() {
            self.tasks_completed += 1;
            return Ok(ThreadId(slot));
        }
        t.program = Some(program);
        t.pc = 0;
        Ok(ThreadId(slot))
    }

    /// Unblocks a thread stalled on a platform request (NI accepted the
    /// send, or the call's response arrived).
    ///
    /// # Panics
    ///
    /// Panics if the thread was not awaiting completion — that indicates a
    /// platform-glue protocol bug worth failing loudly on.
    pub fn complete(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0];
        assert!(
            matches!(t.state, ThreadState::AwaitingCompletion),
            "complete() on {tid} which is not awaiting completion"
        );
        t.state = ThreadState::Ready;
    }

    /// Whether thread `tid` is stalled awaiting a platform completion.
    /// The resilience layer's guard before [`Pe::complete`]: a reply for a
    /// thread that crashed (or already gave up) must be discarded, not
    /// delivered.
    pub fn is_awaiting(&self, tid: ThreadId) -> bool {
        matches!(self.threads[tid.0].state, ThreadState::AwaitingCompletion)
    }

    /// Whether this PE is crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crash this PE at `now`: every context dies mid-task, pending
    /// platform requests are discarded, and the PE refuses new work until
    /// [`Pe::restart`]. Returns every marshalled payload buffer the PE
    /// owned (unexecuted op payloads plus undrained request payloads) so
    /// the platform can recycle them into its payload pool — a crashed PE
    /// must not leak pooled buffers.
    ///
    /// Killed tasks count as neither completed nor retired.
    pub fn crash(&mut self, now: Cycles) -> Vec<Vec<u8>> {
        self.settle_accounting(now);
        self.crashed = true;
        self.swap_remaining = 0;
        self.current = 0;
        let mut harvested = Vec::new();
        for (_, req) in std::mem::take(&mut self.requests) {
            match req {
                PeRequest::Send { data, .. } | PeRequest::Call { data, .. } => {
                    harvested.push(data);
                }
            }
        }
        for t in &mut self.threads {
            t.state = ThreadState::Idle;
            let pc = std::mem::take(&mut t.pc);
            if let Some(prog) = t.program.take() {
                // Only ops the thread never issued: an executed Send/Call
                // already cloned its payload into the request stream, where
                // normal wire-side recycling (or the request drain above)
                // accounts for it — harvesting the program's copy too
                // would over-return to the pool.
                for op in prog.into_ops().into_iter().skip(pc) {
                    match op {
                        Op::Send { data, .. } | Op::Call { data, .. } => harvested.push(data),
                        Op::Compute(_) | Op::LocalMem { .. } => {}
                    }
                }
            }
        }
        harvested
    }

    /// Restart a crashed PE at `now` with cold, idle contexts. No-op when
    /// not crashed.
    pub fn restart(&mut self, now: Cycles) {
        if self.crashed {
            self.settle_accounting(now);
            self.crashed = false;
        }
    }

    /// Drains the requests raised since the last call.
    pub fn take_requests(&mut self) -> Vec<(ThreadId, PeRequest)> {
        self.requests.drain(..).collect()
    }

    /// Whether undrained platform requests are pending.
    pub fn has_requests(&self) -> bool {
        !self.requests.is_empty()
    }

    /// Whether ticking this PE can do anything besides busy/idle accounting:
    /// a context switch is in flight, or some thread is `Ready`, mid compute
    /// burst, or sleeping on a self-timed scratchpad stall.
    ///
    /// A PE that is **not** live (every thread `Idle` or awaiting a platform
    /// completion) ticks as a pure accounting no-op, so an active-set
    /// scheduler may skip it and settle the skipped cycles in bulk with
    /// [`Pe::settle_accounting`] — the counters come out bit-identical.
    pub fn is_live(&self) -> bool {
        self.swap_remaining > 0
            || self.threads.iter().any(|t| {
                matches!(
                    t.state,
                    ThreadState::Ready
                        | ThreadState::Computing { .. }
                        | ThreadState::ScratchpadStall { .. }
                )
            })
    }

    /// Applies busy/idle accounting for all unaccounted cycles before `now`,
    /// assuming the PE was dormant (not [`Pe::is_live`]) for that span: each
    /// skipped cycle counts occupancy for non-idle threads and an idle issue
    /// slot, exactly as the per-cycle tick would have.
    ///
    /// Callers must settle **before** mutating thread state at `now` (e.g.
    /// before `spawn`), so the gap is accounted with the state that actually
    /// held during it. Settling is idempotent.
    pub fn settle_accounting(&mut self, now: Cycles) {
        if now.0 <= self.accounted_to {
            return;
        }
        let n = now.0 - self.accounted_to;
        for t in &mut self.threads {
            if matches!(t.state, ThreadState::Idle) {
                t.occupancy.idle_n(n);
            } else {
                t.occupancy.busy_n(n);
            }
            t.busy.idle_n(n);
        }
        self.core.idle_n(n);
        self.accounted_to = now.0;
    }

    /// Tasks run to completion so far.
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PeStats {
        let issue_energy = self.cfg.class.energy_per_cycle().0 * self.core.busy_cycles() as f64;
        PeStats {
            core_utilization: self.core.fraction(),
            thread_occupancy: self
                .threads
                .iter()
                .map(|t| t.occupancy.fraction())
                .collect(),
            tasks_completed: self.tasks_completed,
            energy: Picojoules(self.mem_energy.0 + issue_energy),
            swaps: self.swaps,
        }
    }

    /// The number of upcoming cycles over which this PE's evolution is
    /// provably bulk-computable, or `None` when the next tick may do
    /// arbitrary work and must run normally. Two skippable shapes:
    ///
    /// * **Compute burst** (switch-on-stall): the issuing context is mid
    ///   [`Op::Compute`] with that many decrements left before anything
    ///   state-changing — retirement, a new op, a swap — can happen.
    ///   Nothing preempts a runnable current context, so other threads
    ///   maturing from scratchpad stalls or completions arriving do not
    ///   alter the span's accounting.
    /// * **Whole-PE stall**: every context is idle, awaiting a platform
    ///   completion, or sleeping on a scratchpad stall — no issue slot
    ///   fires until the earliest stall matures, which bounds the span.
    ///
    /// Used with [`Pe::advance_quiet`] by the platform's active-set
    /// scheduler to fast-forward busy (not merely idle) spans.
    pub fn quiet_span(&self, now: Cycles) -> Option<u64> {
        if self.swap_remaining > 0 || !self.requests.is_empty() {
            return None;
        }
        if self.cfg.policy == SchedPolicy::SwitchOnStall {
            if let ThreadState::Computing { remaining } = self.threads[self.current].state {
                return (remaining >= 2).then_some(remaining - 1);
            }
        }
        // Whole-PE stall: no context may be runnable now or become runnable
        // inside the span (a matured stall swaps in on the next tick).
        let mut earliest = u64::MAX;
        for t in &self.threads {
            match t.state {
                ThreadState::Idle | ThreadState::AwaitingCompletion => {}
                ThreadState::ScratchpadStall { until } if until > now.0 => {
                    earliest = earliest.min(until);
                }
                _ => return None,
            }
        }
        if earliest == u64::MAX {
            // Fully dormant — the caller's lazy settle path covers this.
            return None;
        }
        Some(earliest - now.0)
    }

    /// Bulk-applies `k` cycles of the span promised by [`Pe::quiet_span`]
    /// — counter arithmetic identical to `k` per-cycle ticks. A compute
    /// burst decrements with the core issuing busy and the current thread
    /// running; a whole-PE stall accrues idle issue slots with occupancy
    /// for every non-idle context (the same arithmetic as
    /// [`Pe::settle_accounting`]).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `k` exceeds the promised span.
    pub fn advance_quiet(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        let cur = self.current;
        if self.cfg.policy == SchedPolicy::SwitchOnStall {
            if let ThreadState::Computing { remaining } = self.threads[cur].state {
                debug_assert!(remaining > k, "advance_quiet beyond the compute burst");
                self.threads[cur].state = ThreadState::Computing {
                    remaining: remaining - k,
                };
                for (j, t) in self.threads.iter_mut().enumerate() {
                    if matches!(t.state, ThreadState::Idle) {
                        t.occupancy.idle_n(k);
                    } else {
                        t.occupancy.busy_n(k);
                    }
                    if j == cur {
                        t.busy.busy_n(k);
                    } else {
                        t.busy.idle_n(k);
                    }
                }
                self.core.busy_n(k);
                self.accounted_to += k;
                return;
            }
        }
        // Whole-PE stall: no issue slot fires during the span.
        for t in &mut self.threads {
            if matches!(t.state, ThreadState::Idle) {
                t.occupancy.idle_n(k);
            } else {
                t.occupancy.busy_n(k);
            }
            t.busy.idle_n(k);
        }
        self.core.idle_n(k);
        self.accounted_to += k;
    }

    fn thread_is_runnable(&self, i: usize, now: Cycles) -> bool {
        match self.threads[i].state {
            ThreadState::Ready | ThreadState::Computing { .. } => true,
            ThreadState::ScratchpadStall { until } => until <= now.0,
            _ => false,
        }
    }

    /// Picks the next runnable context after `from` in round-robin order.
    fn next_runnable(&self, from: usize, now: Cycles) -> Option<usize> {
        let n = self.threads.len();
        (1..=n)
            .map(|k| (from + k) % n)
            .find(|&i| self.thread_is_runnable(i, now))
    }

    /// Executes one issue slot of thread `i`. Returns true if work was done.
    fn run_thread(&mut self, i: usize, now: Cycles) -> bool {
        // Resolve a matured scratchpad stall into Ready.
        if let ThreadState::ScratchpadStall { until } = self.threads[i].state {
            if until <= now.0 {
                self.threads[i].state = ThreadState::Ready;
            } else {
                return false;
            }
        }
        match self.threads[i].state.clone() {
            ThreadState::Computing { remaining } => {
                if remaining <= 1 {
                    self.threads[i].state = ThreadState::Ready;
                    self.advance_pc(i);
                } else {
                    self.threads[i].state = ThreadState::Computing {
                        remaining: remaining - 1,
                    };
                }
                true
            }
            ThreadState::Ready => self.issue(i, now),
            _ => false,
        }
    }

    /// Issues the op at the thread's pc. Returns true if a cycle of work was
    /// consumed.
    fn issue(&mut self, i: usize, now: Cycles) -> bool {
        let (op, domain) = {
            let t = &self.threads[i];
            let prog = t.program.as_ref().expect("ready thread has a program");
            match prog.op(t.pc) {
                Some(op) => (op.clone(), prog.domain()),
                None => {
                    // Program exhausted: retire the task.
                    self.retire(i);
                    return true;
                }
            }
        };
        match op {
            Op::Compute(n) => {
                let speedup = self.cfg.class.speedup(domain);
                let eff = ((n as f64 / speedup).ceil() as u64).max(1);
                if eff == 1 {
                    self.threads[i].state = ThreadState::Ready;
                    self.advance_pc(i);
                } else {
                    self.threads[i].state = ThreadState::Computing { remaining: eff - 1 };
                }
            }
            Op::LocalMem { write, bytes } => {
                let service = self.cfg.scratchpad.service_time(write, bytes);
                self.mem_energy += self.cfg.scratchpad.access_energy(write, bytes);
                self.threads[i].state = ThreadState::ScratchpadStall {
                    until: now.0 + service.0,
                };
                self.advance_pc(i);
            }
            Op::Send {
                dst,
                bytes,
                data,
                tag,
            } => {
                self.requests.push_back((
                    ThreadId(i),
                    PeRequest::Send {
                        dst,
                        bytes,
                        data,
                        tag,
                    },
                ));
                self.threads[i].state = ThreadState::AwaitingCompletion;
                self.advance_pc(i);
            }
            Op::Call {
                dst,
                bytes,
                reply_bytes,
                data,
            } => {
                self.requests.push_back((
                    ThreadId(i),
                    PeRequest::Call {
                        dst,
                        bytes,
                        reply_bytes,
                        data,
                    },
                ));
                self.threads[i].state = ThreadState::AwaitingCompletion;
                self.advance_pc(i);
            }
        }
        true
    }

    fn advance_pc(&mut self, i: usize) {
        self.threads[i].pc += 1;
        let done = {
            let t = &self.threads[i];
            t.program.as_ref().is_none_or(|p| t.pc >= p.len())
                && matches!(t.state, ThreadState::Ready)
        };
        if done {
            self.retire(i);
        }
    }

    fn retire(&mut self, i: usize) {
        self.threads[i].state = ThreadState::Idle;
        self.threads[i].program = None;
        self.threads[i].pc = 0;
        self.tasks_completed += 1;
        if let Some(log) = self.retire_log.as_mut() {
            log.push(ThreadId(i));
        }
    }
}

impl Clocked for Pe {
    fn tick(&mut self, now: Cycles) {
        // Settle any cycles skipped by an active-set scheduler, then mark
        // this cycle accounted (the body below does its accounting inline).
        self.settle_accounting(now);
        self.accounted_to = now.0 + 1;

        // Occupancy accounting for every context.
        for t in &mut self.threads {
            if matches!(t.state, ThreadState::Idle) {
                t.occupancy.idle();
            } else {
                t.occupancy.busy();
            }
        }

        // Mid context switch: the core is stalled.
        if self.swap_remaining > 0 {
            self.swap_remaining -= 1;
            self.core.idle();
            for t in &mut self.threads {
                t.busy.idle();
            }
            return;
        }

        // Choose which context issues this cycle.
        let issuing = match self.cfg.policy {
            SchedPolicy::SwitchOnStall => {
                if self.thread_is_runnable(self.current, now) {
                    Some(self.current)
                } else if let Some(next) = self.next_runnable(self.current, now) {
                    self.swaps += 1;
                    self.current = next;
                    if self.cfg.swap_penalty > 0 {
                        // The swap consumes this cycle (and possibly more).
                        self.swap_remaining = self.cfg.swap_penalty - 1;
                        self.core.idle();
                        for t in &mut self.threads {
                            t.busy.idle();
                        }
                        return;
                    }
                    Some(next)
                } else {
                    None
                }
            }
            SchedPolicy::RoundRobin => {
                let next = if self.thread_is_runnable(self.current, now)
                    || self.next_runnable(self.current, now).is_some()
                {
                    // Rotate every cycle among runnable contexts.
                    self.next_runnable(self.current, now)
                        .filter(|_| true)
                        .or(Some(self.current))
                } else {
                    None
                };
                if let Some(n) = next {
                    self.current = n;
                }
                next
            }
        };

        let mut worked = false;
        if let Some(i) = issuing {
            worked = self.run_thread(i, now);
        }
        if worked {
            // Issue energy is derived from the busy counter in `stats()`.
            self.core.busy();
        } else {
            self.core.idle();
        }
        for (j, t) in self.threads.iter_mut().enumerate() {
            if worked && issuing == Some(j) {
                t.busy.busy();
            } else {
                t.busy.idle();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::KernelDomain;

    fn run(pe: &mut Pe, cycles: u64) {
        for c in 0..cycles {
            pe.tick(Cycles(c));
        }
    }

    #[test]
    fn compute_task_takes_expected_cycles() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        pe.spawn(Program::straight_line([Op::Compute(10)])).unwrap();
        run(&mut pe, 10);
        // 10 compute cycles; retirement happens on the next issue slot.
        assert!(pe.tasks_completed() <= 1);
        run(&mut pe, 2);
        assert_eq!(pe.tasks_completed(), 1);
        assert!(pe.idle_threads() == 1);
    }

    #[test]
    fn asip_speedup_shortens_matched_kernels() {
        let domain = KernelDomain::PacketHeader;
        let time_to_finish = |class: PeClass| {
            let mut pe = Pe::new(PeConfig::new(class, 1));
            pe.spawn(Program::new([Op::Compute(80)], domain)).unwrap();
            let mut c = 0u64;
            while pe.tasks_completed() == 0 {
                pe.tick(Cycles(c));
                c += 1;
                assert!(c < 1000);
            }
            c
        };
        let risc = time_to_finish(PeClass::GpRisc);
        let asip = time_to_finish(PeClass::Asip { domain });
        assert!(asip * 4 < risc, "asip {asip} vs risc {risc}");
    }

    #[test]
    fn call_blocks_until_completed() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        let tid = pe
            .spawn(Program::straight_line([
                Op::call(NodeId(5), 8, 8),
                Op::Compute(1),
            ]))
            .unwrap();
        run(&mut pe, 5);
        let reqs = pe.take_requests();
        assert_eq!(reqs.len(), 1);
        assert!(matches!(reqs[0].1, PeRequest::Call { dst: NodeId(5), .. }));
        // Blocked: no progress however long we wait.
        run(&mut pe, 50);
        assert_eq!(pe.tasks_completed(), 0);
        pe.complete(tid);
        run(&mut pe, 55);
        assert_eq!(pe.tasks_completed(), 1);
    }

    #[test]
    fn multithreading_hides_call_latency() {
        // One thread stalls on a call; the second thread keeps the core busy.
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 2).with_swap_penalty(1));
        pe.spawn(Program::straight_line([Op::call(NodeId(1), 8, 8)]))
            .unwrap();
        pe.spawn(Program::straight_line([Op::Compute(100)]))
            .unwrap();
        run(&mut pe, 50);
        let s = pe.stats();
        assert!(
            s.core_utilization > 0.9,
            "core should stay busy: {}",
            s.core_utilization
        );
        assert!(s.swaps >= 1);
    }

    #[test]
    fn single_thread_starves_on_call() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        pe.spawn(Program::straight_line([Op::call(NodeId(1), 8, 8)]))
            .unwrap();
        run(&mut pe, 100);
        let s = pe.stats();
        assert!(
            s.core_utilization < 0.1,
            "blocked single-thread core must idle: {}",
            s.core_utilization
        );
    }

    #[test]
    fn spawn_fails_when_full_and_recovers() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 2));
        pe.spawn(Program::straight_line([Op::Compute(5)])).unwrap();
        pe.spawn(Program::straight_line([Op::Compute(5)])).unwrap();
        assert_eq!(
            pe.spawn(Program::straight_line([Op::Compute(5)])),
            Err(SpawnError)
        );
        run(&mut pe, 30);
        assert!(pe.idle_threads() > 0);
        assert!(pe.spawn(Program::straight_line([Op::Compute(5)])).is_ok());
    }

    #[test]
    fn scratchpad_stall_is_self_timed() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        pe.spawn(Program::straight_line([
            Op::LocalMem {
                write: false,
                bytes: 64,
            },
            Op::Compute(1),
        ]))
        .unwrap();
        // SRAM 64B read = 10 cycles stall + issue cycles; finishes unaided.
        run(&mut pe, 20);
        assert_eq!(pe.tasks_completed(), 1);
        assert!(pe.stats().energy.0 > 0.0);
    }

    #[test]
    fn send_blocks_until_ni_accept() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        let tid = pe
            .spawn(Program::straight_line([Op::send(NodeId(2), 40)]))
            .unwrap();
        run(&mut pe, 3);
        let reqs = pe.take_requests();
        assert!(matches!(reqs[0].1, PeRequest::Send { bytes: 40, .. }));
        pe.complete(tid);
        run(&mut pe, 6);
        assert_eq!(pe.tasks_completed(), 1);
    }

    #[test]
    fn round_robin_policy_interleaves_without_swap_cost() {
        let mut pe =
            Pe::new(PeConfig::new(PeClass::GpRisc, 4).with_policy(SchedPolicy::RoundRobin));
        for _ in 0..4 {
            pe.spawn(Program::straight_line([Op::Compute(25)])).unwrap();
        }
        run(&mut pe, 110);
        let s = pe.stats();
        assert_eq!(s.tasks_completed, 4);
        assert_eq!(s.swaps, 0);
        assert!(s.core_utilization > 0.9);
    }

    #[test]
    fn empty_program_completes_immediately() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        pe.spawn(Program::straight_line([])).unwrap();
        assert_eq!(pe.tasks_completed(), 1);
        assert_eq!(pe.idle_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "not awaiting completion")]
    fn completing_a_non_waiting_thread_panics() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 1));
        pe.complete(ThreadId(0));
    }

    #[test]
    fn skipped_dormant_cycles_settle_identically() {
        // Two identical PEs, one ticked every cycle through a dormant span,
        // one skipped and bulk-settled: every statistic must come out equal.
        let mk = || Pe::new(PeConfig::new(PeClass::GpRisc, 2));
        let mut dense = mk();
        let mut lazy = mk();
        let task = Program::straight_line([Op::Compute(3), Op::call(NodeId(1), 8, 8)]);
        let td = dense.spawn(task.clone()).unwrap();
        let tl = lazy.spawn(task).unwrap();
        for c in 0..6 {
            dense.tick(Cycles(c));
            lazy.tick(Cycles(c));
        }
        assert_eq!(dense.take_requests().len(), 1);
        assert_eq!(lazy.take_requests().len(), 1);
        assert!(!lazy.is_live(), "blocked on the call: dormant");
        // Dormant span: dense ticks 100 cycles, lazy skips them entirely.
        for c in 6..106 {
            dense.tick(Cycles(c));
        }
        lazy.settle_accounting(Cycles(106));
        dense.complete(td);
        lazy.complete(tl);
        for c in 106..112 {
            dense.tick(Cycles(c));
            lazy.tick(Cycles(c));
        }
        let (a, b) = (dense.stats(), lazy.stats());
        assert_eq!(a.tasks_completed, b.tasks_completed);
        assert_eq!(a.swaps, b.swaps);
        assert_eq!(a.core_utilization.to_bits(), b.core_utilization.to_bits());
        assert_eq!(a.thread_occupancy.len(), b.thread_occupancy.len());
        for (x, y) in a.thread_occupancy.iter().zip(&b.thread_occupancy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.energy.0.to_bits(), b.energy.0.to_bits());
    }

    #[test]
    fn crash_harvests_buffers_and_kills_threads() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 2));
        // Thread 0 will be awaiting a call (request drained by the owner);
        // thread 1 holds an unexecuted send with a payload.
        let t0 = pe
            .spawn(Program::straight_line([Op::Call {
                dst: NodeId(1),
                bytes: 8,
                reply_bytes: 8,
                data: vec![1, 2, 3],
            }]))
            .unwrap();
        pe.spawn(Program::straight_line([
            Op::Compute(50),
            Op::Send {
                dst: NodeId(2),
                bytes: 4,
                data: vec![9, 9],
                tag: 0,
            },
        ]))
        .unwrap();
        run(&mut pe, 3);
        // Leave thread 0's request undrained so crash harvests it too.
        assert!(pe.has_requests());
        assert!(pe.is_awaiting(t0));
        let harvested = pe.crash(Cycles(3));
        assert!(pe.is_crashed());
        assert!(!pe.is_live());
        assert_eq!(pe.idle_threads(), 0);
        assert!(!pe.is_awaiting(t0));
        assert!(!pe.has_requests());
        // Both payloads recovered: the drained request's and the
        // unexecuted op's.
        let mut lens: Vec<usize> = harvested.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3]);
        assert_eq!(
            pe.spawn(Program::straight_line([Op::Compute(1)])),
            Err(SpawnError)
        );
        assert_eq!(pe.tasks_completed(), 0, "killed tasks never complete");
        // Ticking a crashed PE is a pure accounting no-op.
        run(&mut pe, 10);
        assert_eq!(pe.tasks_completed(), 0);
        // Restart brings cold contexts back.
        pe.restart(Cycles(13));
        assert!(!pe.is_crashed());
        assert_eq!(pe.idle_threads(), 2);
        pe.spawn(Program::straight_line([Op::Compute(2)])).unwrap();
        for c in 13..20 {
            pe.tick(Cycles(c));
        }
        assert_eq!(pe.tasks_completed(), 1);
    }

    #[test]
    fn crash_is_deterministic_and_restart_idempotent() {
        let mk = || {
            let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 2));
            pe.spawn(Program::straight_line([Op::Compute(20)])).unwrap();
            for c in 0..5 {
                pe.tick(Cycles(c));
            }
            pe.crash(Cycles(5));
            pe.restart(Cycles(9));
            pe.restart(Cycles(9)); // idempotent
            pe.spawn(Program::straight_line([Op::Compute(3)])).unwrap();
            for c in 9..20 {
                pe.tick(Cycles(c));
            }
            let s = pe.stats();
            (s.tasks_completed, s.core_utilization.to_bits(), s.swaps)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn occupancy_tracks_assigned_tasks() {
        let mut pe = Pe::new(PeConfig::new(PeClass::GpRisc, 2));
        pe.spawn(Program::straight_line([Op::Compute(50)])).unwrap();
        run(&mut pe, 50);
        let s = pe.stats();
        assert!(s.thread_occupancy[0] > 0.9);
        assert!(s.thread_occupancy[1] < 0.1);
    }
}
