//! Embedded FPGA fabric model.
//!
//! The paper's §6.3 is blunt about embedded FPGAs: they "will complement the
//! processors, but only with limited scope (less than 5% of the IC
//! functionality). The 10X cost and power penalty of eFPGA's will restrict
//! their further use" — yet "for high-speed and simple functions, or highly
//! parallel and regular computations, eFPGA's can play an important role."
//!
//! This crate encodes that tradeoff:
//!
//! * [`FabricSpec`] — a LUT-array fabric with the canonical ~10× area and
//!   energy penalty versus hardwired logic and a slower achievable clock.
//! * [`MappedKernel`] — a kernel implemented on the fabric, derived from the
//!   same [`KernelSpec`] a hardwired block would implement, so experiment T4
//!   can compare processor / eFPGA / hardwired points of the continuum.
//! * [`Efpga`] — a cycle-stepped accelerator node: a pipelined server plus
//!   run-time reconfiguration (loading a new bitstream stalls the pipeline,
//!   which is why §6.3 notes eFPGAs are "not well-suited to small scale time
//!   division multiplexing of different tasks").
//!
//! # Examples
//!
//! ```
//! use nw_fabric::{FabricSpec, KernelSpec, MappedKernel};
//!
//! let kernel = KernelSpec::checksum_offload();
//! let on_fabric = MappedKernel::map(&kernel, &FabricSpec::default());
//! // The 10x penalties of §6.3.
//! assert!(on_fabric.area.0 > 9.0 * kernel.hw_area.0);
//! assert!(on_fabric.energy_per_item.0 > 9.0 * kernel.hw_energy_per_item.0);
//! ```

use nw_sim::{Clocked, PipelinedServer, ServerFull};
use nw_types::{AreaMm2, Bytes, Cycles, Picojoules};
use std::fmt;

/// Parameters of an embedded FPGA fabric.
#[derive(Debug, Clone, Copy)]
pub struct FabricSpec {
    /// LUT capacity of the fabric.
    pub luts: u32,
    /// Area penalty versus hardwired logic (the paper's "10X cost").
    pub area_penalty: f64,
    /// Energy penalty versus hardwired logic (the paper's "10X power").
    pub energy_penalty: f64,
    /// Clock slowdown versus hardwired logic (routing fabric overhead).
    pub clock_slowdown: f64,
    /// Configuration port bandwidth in bytes per cycle.
    pub config_bytes_per_cycle: u64,
    /// Bitstream bytes per LUT (determines reconfiguration time).
    pub bitstream_bytes_per_lut: u64,
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec {
            luts: 20_000,
            area_penalty: 10.0,
            energy_penalty: 10.0,
            clock_slowdown: 3.0,
            config_bytes_per_cycle: 8,
            bitstream_bytes_per_lut: 12,
        }
    }
}

impl FabricSpec {
    /// Cycles to load a full-fabric bitstream of `luts` LUTs.
    pub fn reconfig_cycles(&self, luts: u32) -> Cycles {
        let bytes = luts as u64 * self.bitstream_bytes_per_lut;
        Cycles(bytes.div_ceil(self.config_bytes_per_cycle.max(1)))
    }

    /// Bitstream size for a kernel occupying `luts` LUTs.
    pub fn bitstream_bytes(&self, luts: u32) -> Bytes {
        Bytes(luts as u64 * self.bitstream_bytes_per_lut)
    }
}

/// A fixed-function kernel characterized by its *hardwired* implementation;
/// fabric and processor implementations are derived from it.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Human-readable name.
    pub name: String,
    /// Cycles one item takes on a GP-RISC processor (software baseline).
    pub sw_cycles_per_item: u64,
    /// Hardwired implementation: initiation interval (items accepted every
    /// `hw_ii` cycles).
    pub hw_ii: u64,
    /// Hardwired pipeline latency.
    pub hw_latency: u64,
    /// Hardwired die area.
    pub hw_area: AreaMm2,
    /// Hardwired energy per item.
    pub hw_energy_per_item: Picojoules,
    /// LUTs the kernel occupies when mapped to fabric.
    pub luts: u32,
}

impl KernelSpec {
    /// An IP checksum/CRC offload kernel (simple, regular — an eFPGA sweet
    /// spot per §6.3).
    pub fn checksum_offload() -> KernelSpec {
        KernelSpec {
            name: "checksum-offload".to_owned(),
            sw_cycles_per_item: 120,
            hw_ii: 1,
            hw_latency: 4,
            hw_area: AreaMm2(0.05),
            hw_energy_per_item: Picojoules(15.0),
            luts: 1_500,
        }
    }

    /// A header-field extraction/classification kernel.
    pub fn header_classify() -> KernelSpec {
        KernelSpec {
            name: "header-classify".to_owned(),
            sw_cycles_per_item: 200,
            hw_ii: 2,
            hw_latency: 8,
            hw_area: AreaMm2(0.12),
            hw_energy_per_item: Picojoules(35.0),
            luts: 4_000,
        }
    }

    /// A symmetric crypto round kernel (highly parallel and regular).
    pub fn crypto_round() -> KernelSpec {
        KernelSpec {
            name: "crypto-round".to_owned(),
            sw_cycles_per_item: 600,
            hw_ii: 2,
            hw_latency: 20,
            hw_area: AreaMm2(0.25),
            hw_energy_per_item: Picojoules(90.0),
            luts: 9_000,
        }
    }
}

/// Errors from mapping a kernel onto a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapKernelError {
    /// The kernel needs more LUTs than the fabric provides.
    DoesNotFit {
        /// LUTs required.
        needed: u32,
        /// LUTs available.
        available: u32,
    },
}

impl fmt::Display for MapKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapKernelError::DoesNotFit { needed, available } => {
                write!(f, "kernel needs {needed} LUTs, fabric has {available}")
            }
        }
    }
}

impl std::error::Error for MapKernelError {}

/// A kernel as implemented on an eFPGA fabric.
#[derive(Debug, Clone)]
pub struct MappedKernel {
    /// Kernel name.
    pub name: String,
    /// Effective initiation interval (slower fabric clock).
    pub ii: u64,
    /// Effective pipeline latency.
    pub latency: u64,
    /// Fabric area consumed (hardwired area × penalty).
    pub area: AreaMm2,
    /// Energy per item (hardwired energy × penalty).
    pub energy_per_item: Picojoules,
    /// LUTs occupied.
    pub luts: u32,
}

impl MappedKernel {
    /// Derives the fabric implementation of a kernel (infallible variant
    /// that ignores capacity; use [`MappedKernel::try_map`] to check fit).
    pub fn map(k: &KernelSpec, f: &FabricSpec) -> MappedKernel {
        MappedKernel {
            name: k.name.clone(),
            ii: ((k.hw_ii as f64 * f.clock_slowdown).ceil() as u64).max(1),
            latency: ((k.hw_latency as f64 * f.clock_slowdown).ceil() as u64).max(1),
            area: k.hw_area * f.area_penalty,
            energy_per_item: k.hw_energy_per_item * f.energy_penalty,
            luts: k.luts,
        }
    }

    /// Maps a kernel, checking LUT capacity.
    ///
    /// # Errors
    ///
    /// [`MapKernelError::DoesNotFit`] when the kernel exceeds the fabric.
    pub fn try_map(k: &KernelSpec, f: &FabricSpec) -> Result<MappedKernel, MapKernelError> {
        if k.luts > f.luts {
            return Err(MapKernelError::DoesNotFit {
                needed: k.luts,
                available: f.luts,
            });
        }
        Ok(Self::map(k, f))
    }
}

/// A cycle-stepped eFPGA accelerator node.
///
/// Holds at most one configured kernel; [`Efpga::reconfigure`] loads a new
/// one, stalling the pipeline for the bitstream load time.
#[derive(Debug, Clone)]
pub struct Efpga {
    spec: FabricSpec,
    kernel: Option<MappedKernel>,
    server: PipelinedServer,
    energy: Picojoules,
    reconfigs: u64,
}

impl Efpga {
    /// Creates an unconfigured fabric (submissions fail until a kernel is
    /// loaded).
    pub fn new(spec: FabricSpec) -> Self {
        Efpga {
            spec,
            kernel: None,
            server: PipelinedServer::new(1, 1, 1),
            energy: Picojoules::ZERO,
            reconfigs: 0,
        }
    }

    /// The fabric parameters.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The currently configured kernel, if any.
    pub fn kernel(&self) -> Option<&MappedKernel> {
        self.kernel.as_ref()
    }

    /// Loads `kernel` onto the fabric at cycle `now`; the pipeline stalls
    /// for the bitstream load.
    ///
    /// # Errors
    ///
    /// [`MapKernelError::DoesNotFit`] when the kernel exceeds capacity.
    pub fn reconfigure(&mut self, kernel: &KernelSpec, now: Cycles) -> Result<(), MapKernelError> {
        let mapped = MappedKernel::try_map(kernel, &self.spec)?;
        let downtime = self.spec.reconfig_cycles(mapped.luts);
        let mut server = PipelinedServer::new(mapped.ii, mapped.latency, 64);
        server.stall_until(now + downtime);
        self.server = server;
        self.kernel = Some(mapped);
        self.reconfigs += 1;
        Ok(())
    }

    /// Offers an item to the configured kernel.
    ///
    /// # Errors
    ///
    /// [`ServerFull`] when unconfigured or the input queue is full.
    pub fn try_submit(&mut self, id: u64, now: Cycles) -> Result<(), ServerFull> {
        if self.kernel.is_none() {
            return Err(ServerFull);
        }
        self.server.try_submit(id, now)
    }

    /// Takes the next completed item cookie.
    pub fn take_done(&mut self) -> Option<u64> {
        let r = self.server.take_done();
        if r.is_some() {
            if let Some(k) = &self.kernel {
                self.energy += k.energy_per_item;
            }
        }
        r
    }

    /// Items processed so far.
    pub fn served(&self) -> u64 {
        self.server.served()
    }

    /// Total dynamic energy consumed.
    pub fn energy(&self) -> Picojoules {
        self.energy
    }

    /// Number of reconfigurations performed.
    pub fn reconfig_count(&self) -> u64 {
        self.reconfigs
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.server.is_idle()
    }
}

impl Clocked for Efpga {
    fn tick(&mut self, now: Cycles) {
        self.server.tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(e: &mut Efpga, from: u64, upto: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for c in from..upto {
            e.tick(Cycles(c));
            while let Some(id) = e.take_done() {
                out.push((c, id));
            }
        }
        out
    }

    #[test]
    fn ten_x_penalties_hold() {
        let f = FabricSpec::default();
        for k in [
            KernelSpec::checksum_offload(),
            KernelSpec::header_classify(),
            KernelSpec::crypto_round(),
        ] {
            let m = MappedKernel::map(&k, &f);
            assert!((m.area.0 / k.hw_area.0 - 10.0).abs() < 1e-9, "{}", k.name);
            assert!(
                (m.energy_per_item.0 / k.hw_energy_per_item.0 - 10.0).abs() < 1e-9,
                "{}",
                k.name
            );
            assert!(m.ii >= k.hw_ii, "fabric cannot be faster than hardwired");
        }
    }

    #[test]
    fn fabric_still_beats_software_on_throughput() {
        // §6.3: "for high-speed and simple functions ... eFPGA's can play an
        // important role": items per cycle on fabric >> software.
        let k = KernelSpec::checksum_offload();
        let m = MappedKernel::map(&k, &FabricSpec::default());
        let fabric_rate = 1.0 / m.ii as f64;
        let sw_rate = 1.0 / k.sw_cycles_per_item as f64;
        assert!(fabric_rate > 10.0 * sw_rate);
    }

    #[test]
    fn kernel_too_big_is_rejected() {
        let small = FabricSpec {
            luts: 1_000,
            ..FabricSpec::default()
        };
        let k = KernelSpec::crypto_round();
        let err = MappedKernel::try_map(&k, &small).unwrap_err();
        assert_eq!(
            err,
            MapKernelError::DoesNotFit {
                needed: 9_000,
                available: 1_000
            }
        );
        let mut e = Efpga::new(small);
        assert!(e.reconfigure(&k, Cycles(0)).is_err());
    }

    #[test]
    fn unconfigured_fabric_rejects_work() {
        let mut e = Efpga::new(FabricSpec::default());
        assert!(e.try_submit(1, Cycles(0)).is_err());
    }

    #[test]
    fn reconfiguration_stalls_processing() {
        let mut e = Efpga::new(FabricSpec::default());
        let k = KernelSpec::checksum_offload();
        e.reconfigure(&k, Cycles(0)).unwrap();
        let downtime = e.spec().reconfig_cycles(k.luts).0;
        assert!(
            downtime > 1_000,
            "bitstream load should be slow: {downtime}"
        );
        e.try_submit(1, Cycles(0)).unwrap();
        // Nothing completes before the bitstream finishes loading.
        let early = drive(&mut e, 0, downtime / 2);
        assert!(early.is_empty());
        let late = drive(&mut e, downtime / 2, downtime + 100);
        assert_eq!(late.len(), 1);
        assert_eq!(e.reconfig_count(), 1);
    }

    #[test]
    fn pipelined_throughput_after_configuration() {
        let mut e = Efpga::new(FabricSpec::default());
        let k = KernelSpec::checksum_offload(); // hw_ii=1 → fabric ii=3
        e.reconfigure(&k, Cycles(0)).unwrap();
        let start = e.spec().reconfig_cycles(k.luts).0 + 10;
        for id in 0..8 {
            e.try_submit(id, Cycles(start)).unwrap();
        }
        let done = drive(&mut e, 0, start + 100);
        assert_eq!(done.len(), 8);
        // Completions 3 cycles apart (fabric clock slowdown).
        assert_eq!(done[1].0 - done[0].0, 3);
        assert!(e.energy().0 > 0.0);
    }

    #[test]
    fn second_reconfig_replaces_kernel() {
        let mut e = Efpga::new(FabricSpec::default());
        e.reconfigure(&KernelSpec::checksum_offload(), Cycles(0))
            .unwrap();
        e.reconfigure(&KernelSpec::header_classify(), Cycles(100))
            .unwrap();
        assert_eq!(e.kernel().unwrap().name, "header-classify");
        assert_eq!(e.reconfig_count(), 2);
    }
}
