//! Identifier newtypes for platform resources.
//!
//! All identifiers are plain `usize` indices wrapped for type safety. They
//! are `Copy`, ordered, hashable and displayable, so they can be used as map
//! keys and in log lines without ceremony.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0
            }
        }
    };
}

id_type!(
    /// Index of a node (router endpoint) on the network-on-chip.
    ///
    /// Every platform component that talks on the NoC — processor, memory
    /// controller, eFPGA, hardwired IP, I/O channel — occupies exactly one
    /// node.
    NodeId,
    "node"
);

id_type!(
    /// Index of a processing element within the platform.
    PeId,
    "pe"
);

id_type!(
    /// Index of a hardware thread context within one processing element.
    ThreadId,
    "thr"
);

id_type!(
    /// Index of a DSOC object within an application graph.
    ObjectId,
    "obj"
);

id_type!(
    /// Index of a directed link in a NoC topology graph.
    LinkId,
    "link"
);

id_type!(
    /// Index of a router port.
    PortId,
    "port"
);

id_type!(
    /// Index of a schedulable task (used by mapping and the PE VM).
    TaskId,
    "task"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(0).to_string(), "node0");
        assert_eq!(PeId(12).to_string(), "pe12");
        assert_eq!(ThreadId(3).to_string(), "thr3");
        assert_eq!(ObjectId(9).to_string(), "obj9");
    }

    #[test]
    fn conversions_roundtrip() {
        let n: NodeId = 42usize.into();
        let raw: usize = n.into();
        assert_eq!(raw, 42);
        assert_eq!(n.index(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId(1) < NodeId(2));
        let set: HashSet<PeId> = [PeId(1), PeId(1), PeId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
