//! The semiconductor technology ladder of the early-2000s roadmap.
//!
//! The paper's scaling arguments (§1 mask NRE, §6.1 wire delay) run over the
//! process generations from 0.35 µm down to the then-predicted 50 nm node and
//! slightly beyond. [`TechNode`] enumerates that ladder and provides the
//! geometric quantities the trend models in `nw-econ` are calibrated on.

use std::fmt;

/// A CMOS process technology node, named by its drawn feature size.
///
/// The ladder follows the classic ×0.7 linear shrink per generation used by
/// the ITRS roadmaps of the period. `N50` is included explicitly because the
/// paper cites Benini & De Micheli's 50 nm wire-delay prediction (§6.1).
///
/// # Examples
///
/// ```
/// use nw_types::TechNode;
///
/// assert_eq!(TechNode::N90.feature_nm(), 90);
/// // 130nm → 90nm → 65nm → 45nm is three generations.
/// assert_eq!(TechNode::N130.generations_until(TechNode::N45), 3);
/// assert!(TechNode::N65 < TechNode::N90); // smaller node sorts earlier
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechNode {
    /// 45 nm (beyond the paper's horizon; used to extrapolate trends).
    N45,
    /// 50 nm — the node of the paper's wire-delay citation.
    N50,
    /// 65 nm.
    N65,
    /// 90 nm — "exceeding 1M$ for current 90nm process" (§1).
    N90,
    /// 130 nm (0.13 µm) — "today's complex 0.13 micron designs" (§1).
    N130,
    /// 180 nm (0.18 µm).
    N180,
    /// 250 nm (0.25 µm).
    N250,
    /// 350 nm (0.35 µm).
    N350,
}

impl TechNode {
    /// All nodes from oldest (largest) to newest (smallest), excluding the
    /// off-ladder 50 nm point.
    pub const LADDER: [TechNode; 7] = [
        TechNode::N350,
        TechNode::N250,
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
    ];

    /// Drawn feature size in nanometres.
    pub fn feature_nm(self) -> u32 {
        match self {
            TechNode::N45 => 45,
            TechNode::N50 => 50,
            TechNode::N65 => 65,
            TechNode::N90 => 90,
            TechNode::N130 => 130,
            TechNode::N180 => 180,
            TechNode::N250 => 250,
            TechNode::N350 => 350,
        }
    }

    /// Position on the main ladder counting from 350 nm = 0. The 50 nm point
    /// is treated as fractionally between 65 and 45 nm.
    pub fn ladder_position(self) -> f64 {
        match self {
            TechNode::N350 => 0.0,
            TechNode::N250 => 1.0,
            TechNode::N180 => 2.0,
            TechNode::N130 => 3.0,
            TechNode::N90 => 4.0,
            TechNode::N65 => 5.0,
            TechNode::N50 => 5.43, // log-interpolated between 65 and 45
            TechNode::N45 => 6.0,
        }
    }

    /// Whole process generations between `self` and a newer node.
    /// Returns 0 if `newer` is not actually newer.
    pub fn generations_until(self, newer: TechNode) -> u32 {
        let d = newer.ladder_position() - self.ladder_position();
        if d <= 0.0 {
            0
        } else {
            d.round() as u32
        }
    }

    /// Nominal core clock frequency (Hz) achievable at this node for the
    /// embedded SoC class the paper discusses (not desktop CPUs). Follows the
    /// roadmap's roughly ×1.4 frequency step per generation, anchored at
    /// 200 MHz for 0.35 µm and reaching ~1.5 GHz at 45 nm.
    pub fn nominal_clock_hz(self) -> f64 {
        200e6 * 1.4f64.powf(self.ladder_position())
    }

    /// Typical maximum economical die edge (mm) at this node for a complex
    /// SoC. Die sizes stayed near-constant across generations; 20 mm is the
    /// cross-chip distance used by the Benini & De Micheli wire-delay
    /// argument the paper cites.
    pub fn die_edge_mm(self) -> f64 {
        20.0
    }

    /// Relative logic density versus the 0.35 µm node (area shrink ×2 per
    /// generation under the ideal 0.7 linear shrink).
    pub fn density_vs_350(self) -> f64 {
        2f64.powf(self.ladder_position())
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotonic_in_feature_size() {
        for w in TechNode::LADDER.windows(2) {
            assert!(w[0].feature_nm() > w[1].feature_nm());
            assert!(w[0].ladder_position() < w[1].ladder_position());
        }
    }

    #[test]
    fn generations_match_roadmap() {
        assert_eq!(TechNode::N130.generations_until(TechNode::N45), 3);
        assert_eq!(TechNode::N350.generations_until(TechNode::N90), 4);
        assert_eq!(TechNode::N90.generations_until(TechNode::N90), 0);
        // Asking about an older node yields zero, not a panic.
        assert_eq!(TechNode::N90.generations_until(TechNode::N350), 0);
    }

    #[test]
    fn clock_scales_up() {
        assert!(TechNode::N90.nominal_clock_hz() > TechNode::N180.nominal_clock_hz());
        // ~768 MHz at 90nm with the 1.4x step from 200 MHz.
        let f90 = TechNode::N90.nominal_clock_hz();
        assert!(f90 > 700e6 && f90 < 850e6, "f90 = {f90}");
    }

    #[test]
    fn density_doubles_per_generation() {
        let d130 = TechNode::N130.density_vs_350();
        let d90 = TechNode::N90.density_vs_350();
        assert!((d90 / d130 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fifty_nm_sits_between_65_and_45() {
        let p = TechNode::N50.ladder_position();
        assert!(p > TechNode::N65.ladder_position());
        assert!(p < TechNode::N45.ladder_position());
    }

    #[test]
    fn display() {
        assert_eq!(TechNode::N90.to_string(), "90nm");
        assert_eq!(TechNode::N350.to_string(), "350nm");
    }
}
