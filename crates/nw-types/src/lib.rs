//! Shared vocabulary types for the nanowall MP-SoC reproduction.
//!
//! Every other crate in the workspace builds on the newtypes defined here:
//! identifiers for platform resources ([`NodeId`], [`PeId`], [`ThreadId`]),
//! simulated time ([`Cycles`]), physical quantities ([`Bytes`],
//! [`Picojoules`], [`AreaMm2`], [`BitsPerSec`]) and the semiconductor
//! technology ladder ([`TechNode`]) the paper's scaling arguments run over.
//!
//! Newtypes are used instead of bare integers so that, for example, a NoC
//! node index can never be confused with a hardware-thread index — exactly
//! the class of mix-up that cycle-level simulators are prone to.
//!
//! # Examples
//!
//! ```
//! use nw_types::{Cycles, TechNode};
//!
//! let latency = Cycles(100) + Cycles(12);
//! assert_eq!(latency.0, 112);
//! assert_eq!(TechNode::N90.feature_nm(), 90);
//! assert_eq!(TechNode::N130.generations_until(TechNode::N45), 3);
//! ```

pub mod ids;
pub mod tech;
pub mod time;
pub mod units;

pub use ids::{LinkId, NodeId, ObjectId, PeId, PortId, TaskId, ThreadId};
pub use tech::TechNode;
pub use time::Cycles;
pub use units::{AreaMm2, BitsPerSec, Bytes, Dollars, Picojoules};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable_together() {
        let n = NodeId(3);
        let c = Cycles(7);
        let b = Bytes(64);
        assert_eq!(format!("{n} {c} {b}"), "node3 7cyc 64B");
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<Cycles>();
        assert_send_sync::<TechNode>();
        assert_send_sync::<Picojoules>();
    }
}
