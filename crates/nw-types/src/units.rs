//! Physical and economic quantity newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A byte count (payload sizes, memory footprints).
///
/// # Examples
///
/// ```
/// use nw_types::Bytes;
/// let header = Bytes(20);
/// let payload = Bytes(44);
/// assert_eq!(header + payload, Bytes(64));
/// assert_eq!(Bytes(64).bits(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// The zero size.
    pub const ZERO: Bytes = Bytes(0);

    /// Returns the size in bits.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Number of fixed-size chunks (e.g. flits) needed to carry this many
    /// bytes, rounding up. Zero bytes still need zero chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[inline]
    pub fn div_ceil_by(self, chunk: u64) -> u64 {
        assert!(chunk > 0, "chunk size must be non-zero");
        self.0.div_ceil(chunk)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

/// A data rate in bits per second (line rates, NoC link bandwidth).
///
/// # Examples
///
/// ```
/// use nw_types::{BitsPerSec, Bytes};
/// let line = BitsPerSec::from_gbps(10.0);
/// // 40-byte worst-case packets at 10 Gb/s = 31.25 Mpps.
/// let pps = line.packets_per_second(Bytes(40));
/// assert!((pps - 31.25e6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitsPerSec(pub f64);

impl BitsPerSec {
    /// Creates a rate from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        BitsPerSec(gbps * 1e9)
    }

    /// Creates a rate from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        BitsPerSec(mbps * 1e6)
    }

    /// Returns the rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Packets per second at this rate for a fixed packet size.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is zero bytes.
    pub fn packets_per_second(self, packet: Bytes) -> f64 {
        assert!(packet.0 > 0, "packet size must be non-zero");
        self.0 / packet.bits() as f64
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gb/s", self.gbps())
    }
}

impl Add for BitsPerSec {
    type Output = BitsPerSec;
    fn add(self, rhs: BitsPerSec) -> BitsPerSec {
        BitsPerSec(self.0 + rhs.0)
    }
}

/// Energy in picojoules (per-operation energy accounting).
///
/// # Examples
///
/// ```
/// use nw_types::Picojoules;
/// let read = Picojoules(12.5);
/// assert_eq!(read * 4.0, Picojoules(50.0));
/// assert!((Picojoules(2_000_000.0).to_microjoules() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(pub f64);

impl Picojoules {
    /// The zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Converts to microjoules.
    pub fn to_microjoules(self) -> f64 {
        self.0 / 1e6
    }

    /// Converts to millijoules.
    pub fn to_millijoules(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for Picojoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}pJ", self.0)
    }
}

impl Add for Picojoules {
    type Output = Picojoules;
    fn add(self, rhs: Picojoules) -> Picojoules {
        Picojoules(self.0 + rhs.0)
    }
}

impl AddAssign for Picojoules {
    fn add_assign(&mut self, rhs: Picojoules) {
        self.0 += rhs.0;
    }
}

impl Sub for Picojoules {
    type Output = Picojoules;
    fn sub(self, rhs: Picojoules) -> Picojoules {
        Picojoules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Picojoules {
    type Output = Picojoules;
    fn mul(self, rhs: f64) -> Picojoules {
        Picojoules(self.0 * rhs)
    }
}

impl Sum for Picojoules {
    fn sum<I: Iterator<Item = Picojoules>>(iter: I) -> Picojoules {
        iter.fold(Picojoules::ZERO, |a, b| a + b)
    }
}

/// Silicon area in square millimetres.
///
/// # Examples
///
/// ```
/// use nw_types::AreaMm2;
/// let pe = AreaMm2(0.5);
/// assert_eq!(pe * 16.0, AreaMm2(8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct AreaMm2(pub f64);

impl AreaMm2 {
    /// The zero area.
    pub const ZERO: AreaMm2 = AreaMm2(0.0);
}

impl fmt::Display for AreaMm2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}mm²", self.0)
    }
}

impl Add for AreaMm2 {
    type Output = AreaMm2;
    fn add(self, rhs: AreaMm2) -> AreaMm2 {
        AreaMm2(self.0 + rhs.0)
    }
}

impl AddAssign for AreaMm2 {
    fn add_assign(&mut self, rhs: AreaMm2) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for AreaMm2 {
    type Output = AreaMm2;
    fn mul(self, rhs: f64) -> AreaMm2 {
        AreaMm2(self.0 * rhs)
    }
}

impl Sum for AreaMm2 {
    fn sum<I: Iterator<Item = AreaMm2>>(iter: I) -> AreaMm2 {
        iter.fold(AreaMm2::ZERO, |a, b| a + b)
    }
}

/// Money in US dollars (NRE and unit-cost economics).
///
/// # Examples
///
/// ```
/// use nw_types::Dollars;
/// let mask = Dollars(1_000_000.0);
/// let per_chip_profit = Dollars(1.0);
/// assert_eq!(mask / per_chip_profit, 1_000_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dollars(pub f64);

impl Dollars {
    /// The zero amount.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Creates an amount from millions of dollars.
    pub fn from_millions(m: f64) -> Self {
        Dollars(m * 1e6)
    }

    /// Returns the amount in millions of dollars.
    pub fn millions(self) -> f64 {
        self.0 / 1e6
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "${:.2}M", self.millions())
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    fn sub(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 - rhs.0)
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Dollars {
        Dollars(self.0 * rhs)
    }
}

/// Ratio of two amounts: how many units of `rhs` fit in `self`.
impl Div<Dollars> for Dollars {
    type Output = f64;
    fn div(self, rhs: Dollars) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_bits_and_chunks() {
        assert_eq!(Bytes(64).bits(), 512);
        assert_eq!(Bytes(0).div_ceil_by(8), 0);
        assert_eq!(Bytes(1).div_ceil_by(8), 1);
        assert_eq!(Bytes(8).div_ceil_by(8), 1);
        assert_eq!(Bytes(9).div_ceil_by(8), 2);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn bytes_zero_chunk_panics() {
        let _ = Bytes(8).div_ceil_by(0);
    }

    #[test]
    fn line_rate_packets_per_second() {
        let r = BitsPerSec::from_gbps(10.0);
        assert!((r.packets_per_second(Bytes(40)) - 31.25e6).abs() < 1.0);
        assert!((r.packets_per_second(Bytes(1500)) - 833_333.33).abs() < 1.0);
    }

    #[test]
    fn mbps_constructor() {
        assert!((BitsPerSec::from_mbps(1000.0).gbps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_accumulation() {
        let mut total = Picojoules::ZERO;
        total += Picojoules(3.0);
        total += Picojoules(4.5);
        assert!((total.0 - 7.5).abs() < 1e-12);
        let s: Picojoules = [Picojoules(1.0), Picojoules(2.0)].into_iter().sum();
        assert!((s.0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dollars_display_and_breakeven() {
        assert_eq!(Dollars::from_millions(1.0).to_string(), "$1.00M");
        assert_eq!(Dollars(5.0).to_string(), "$5.00");
        // $1M mask NRE at $1/chip profit = 1M chips.
        let units = Dollars::from_millions(1.0) / Dollars(1.0);
        assert!((units - 1e6).abs() < 1.0);
    }

    #[test]
    fn area_sums() {
        let total: AreaMm2 = [AreaMm2(0.5), AreaMm2(1.5)].into_iter().sum();
        assert!((total.0 - 2.0).abs() < 1e-12);
    }
}
