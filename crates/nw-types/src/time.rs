//! Simulated time in clock cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or timestamp measured in clock cycles of the platform clock.
///
/// The cycle-stepped simulator in `nw-sim` advances one [`Cycles`] unit per
/// tick. Arithmetic is saturating-free (plain integer ops) because overflow
/// of a `u64` cycle counter is unreachable in practice (5.8 × 10¹⁹ cycles).
///
/// # Examples
///
/// ```
/// use nw_types::Cycles;
///
/// let service = Cycles(40);
/// let round_trip = Cycles(100);
/// assert_eq!(service + round_trip, Cycles(140));
/// assert_eq!(round_trip - service, Cycles(60));
/// assert_eq!(service * 3, Cycles(120));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Converts to seconds at the given clock frequency in hertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use nw_types::Cycles;
    /// let t = Cycles(500_000_000).to_seconds(500e6);
    /// assert!((t - 1.0).abs() < 1e-12);
    /// ```
    pub fn to_seconds(self, clock_hz: f64) -> f64 {
        self.0 as f64 / clock_hz
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycles(10);
        c += Cycles(5);
        assert_eq!(c, Cycles(15));
        c -= Cycles(3);
        assert_eq!(c, Cycles(12));
        assert_eq!(c / 4, Cycles(3));
        assert_eq!(c * 2, Cycles(24));
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(10).saturating_sub(Cycles(3)), Cycles(7));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycles(1000).to_seconds(1e9) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn display() {
        assert_eq!(Cycles(42).to_string(), "42cyc");
    }
}
