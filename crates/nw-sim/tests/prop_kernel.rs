//! Property tests for the simulation kernel: event ordering, statistics
//! invariants and the pipelined server's timing contract.

use nw_sim::{Clocked, EventQueue, Histogram, PipelinedServer, Utilization};
use nw_types::Cycles;
use proptest::prelude::*;

proptest! {
    // Pinned effort for CI determinism; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in (time, insertion) order regardless of schedule order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..100, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some(i) = q.pop_due(Cycles(1000)) {
            let t = times[i];
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stable order violated");
            }
            last = Some((t, i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Histogram mean/min/max match a naive computation.
    #[test]
    fn histogram_summary_matches_naive(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(Cycles(v));
        }
        let naive_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - naive_mean).abs() < 1e-6);
        prop_assert_eq!(h.min(), values.iter().min().map(|&v| Cycles(v)));
        prop_assert_eq!(h.max(), values.iter().max().map(|&v| Cycles(v)));
        prop_assert_eq!(h.count(), values.len() as u64);
        // Quantiles are monotone.
        prop_assert!(h.quantile(0.25) <= h.quantile(0.75));
        prop_assert!(h.quantile(0.75) <= h.quantile(1.0));
    }

    /// Utilization is always in [0, 1] and merge adds exactly.
    #[test]
    fn utilization_bounds(pattern in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut u = Utilization::new();
        let mut busy = 0u64;
        for &b in &pattern {
            if b { u.busy(); busy += 1; } else { u.idle(); }
        }
        prop_assert!((0.0..=1.0).contains(&u.fraction()));
        prop_assert_eq!(u.busy_cycles(), busy);
        prop_assert_eq!(u.total_cycles(), pattern.len() as u64);
    }

    /// The pipelined server completes everything submitted, in FIFO order,
    /// with completions spaced at least II apart.
    #[test]
    fn pipeline_timing_contract(
        ii in 1u64..6,
        latency in 1u64..20,
        n in 1usize..20,
    ) {
        let mut s = PipelinedServer::new(ii, latency, 64);
        for id in 0..n as u64 {
            s.try_submit(id, Cycles(0)).expect("queue sized for the test");
        }
        let mut done: Vec<(u64, u64)> = Vec::new();
        for c in 0..(latency + ii * (n as u64 + 2)) {
            s.tick(Cycles(c));
            while let Some(id) = s.take_done() {
                done.push((c, id));
            }
        }
        prop_assert_eq!(done.len(), n);
        for (k, &(c, id)) in done.iter().enumerate() {
            prop_assert_eq!(id, k as u64, "FIFO order");
            prop_assert!(c >= latency, "nothing completes before the pipeline fills");
        }
        for w in done.windows(2) {
            prop_assert!(w[1].0 - w[0].0 >= ii, "completions at least II apart");
        }
    }
}
