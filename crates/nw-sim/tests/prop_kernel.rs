//! Property tests for the simulation kernel: event ordering, statistics
//! invariants and the pipelined server's timing contract.

use nw_sim::{Clocked, EventQueue, Histogram, LatencyHistogram, PipelinedServer, Utilization};
use nw_types::Cycles;
use proptest::prelude::*;

proptest! {
    // Pinned effort for CI determinism; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in (time, insertion) order regardless of schedule order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..100, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some(i) = q.pop_due(Cycles(1000)) {
            let t = times[i];
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stable order violated");
            }
            last = Some((t, i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Histogram mean/min/max match a naive computation.
    #[test]
    fn histogram_summary_matches_naive(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(Cycles(v));
        }
        let naive_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - naive_mean).abs() < 1e-6);
        prop_assert_eq!(h.min(), values.iter().min().map(|&v| Cycles(v)));
        prop_assert_eq!(h.max(), values.iter().max().map(|&v| Cycles(v)));
        prop_assert_eq!(h.count(), values.len() as u64);
        // Quantiles are monotone.
        prop_assert!(h.quantile(0.25) <= h.quantile(0.75));
        prop_assert!(h.quantile(0.75) <= h.quantile(1.0));
    }

    /// Latency-histogram quantiles bound the sorted-vector oracle from
    /// above within one sub-bucket (1/16 relative error), for every q.
    #[test]
    fn latency_quantiles_bound_the_oracle(
        values in prop::collection::vec(0u64..2_000_000, 1..300),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Cycles(v));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), Some(Cycles(sorted[0])));
        prop_assert_eq!(h.max(), Some(Cycles(*sorted.last().unwrap())));
        for &q in &qs {
            let target = ((sorted.len() as f64 * q).ceil() as usize).max(1);
            let oracle = sorted[target - 1];
            let got = h.quantile(q).0;
            prop_assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            prop_assert!(
                got <= oracle + oracle / 16 + 1,
                "q={q}: {got} overshoots oracle {oracle}"
            );
        }
        // Quantiles are monotone in q (bucket scan order).
        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.quantile(1.0));
    }

    /// Merging per-shard latency histograms is associative and order-free:
    /// any merge tree equals recording every sample into one histogram —
    /// the contract parallel sweeps rely on for bit-identical aggregation.
    #[test]
    fn latency_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let fill = |vs: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vs {
                h.record(Cycles(v));
            }
            h
        };
        let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        // And both equal the all-samples histogram.
        let mut all = Vec::new();
        all.extend_from_slice(&a);
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &fill(&all));
    }

    /// Bucketing is monotone: a larger sample never lands in an earlier
    /// bucket, observed through quantiles of two-point histograms.
    #[test]
    fn latency_buckets_are_monotone(v in 0u64..u64::MAX, w in 0u64..u64::MAX) {
        let (lo, hi) = (v.min(w), v.max(w));
        let mut h = LatencyHistogram::new();
        h.record(Cycles(lo));
        h.record(Cycles(hi));
        // The half quantile isolates the smaller sample's bucket, the full
        // quantile the larger one's; monotone bucketing keeps them ordered.
        prop_assert!(h.quantile(0.5) <= h.quantile(1.0));
        prop_assert!(h.quantile(0.5).0 >= lo);
        // The top quantile clamps to the exact observed max.
        prop_assert_eq!(h.quantile(1.0).0, hi);
    }

    /// Utilization is always in [0, 1] and merge adds exactly.
    #[test]
    fn utilization_bounds(pattern in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut u = Utilization::new();
        let mut busy = 0u64;
        for &b in &pattern {
            if b { u.busy(); busy += 1; } else { u.idle(); }
        }
        prop_assert!((0.0..=1.0).contains(&u.fraction()));
        prop_assert_eq!(u.busy_cycles(), busy);
        prop_assert_eq!(u.total_cycles(), pattern.len() as u64);
    }

    /// Fast-forward contract: `next_due` never overshoots the earliest
    /// pending event — nothing pops strictly before it, and something
    /// always pops exactly at it.
    #[test]
    fn next_due_never_overshoots(
        times in prop::collection::vec(0u64..500, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut remaining: Vec<u64> = times.clone();
        while let Some(due) = q.next_due() {
            // next_due is exactly the earliest pending event: skipping to it
            // can never overshoot anything.
            let earliest = *remaining.iter().min().expect("queue non-empty");
            prop_assert_eq!(due, Cycles(earliest), "next_due overshot");
            if due > Cycles(0) {
                prop_assert!(q.pop_due(Cycles(due.0 - 1)).is_none(),
                    "popped strictly before next_due {}", due);
            }
            let popped = q.pop_due(due);
            prop_assert!(popped.is_some(), "nothing due at next_due {}", due);
            let t = times[popped.unwrap()];
            prop_assert_eq!(Cycles(t), due, "popped event not at its due time");
            let pos = remaining.iter().position(|&x| x == t).expect("tracked");
            remaining.swap_remove(pos);
        }
        prop_assert!(q.is_empty());
        prop_assert!(remaining.is_empty());
    }

    /// Idle-skip equivalence: driving a pipelined server by jumping from
    /// `next_event_cycle` to `next_event_cycle` observes exactly the same
    /// (cycle, id) completion sequence as ticking every cycle — the skip
    /// never changes the observable clock at wake points.
    #[test]
    fn pipeline_fast_forward_is_equivalent(
        ii in 1u64..6,
        latency in 1u64..24,
        submits in prop::collection::vec(0u64..60, 1..16),
    ) {
        let horizon = 400u64;
        // Dense reference: tick every cycle, submitting per schedule.
        let mut dense = PipelinedServer::new(ii, latency, 64);
        let mut dense_done = Vec::new();
        for c in 0..horizon {
            for (id, &at) in submits.iter().enumerate() {
                if at == c {
                    let _ = dense.try_submit(id as u64, Cycles(c));
                }
            }
            dense.tick(Cycles(c));
            while let Some(id) = dense.take_done() {
                dense_done.push((c, id));
            }
        }
        // Event-driven: only tick at submit times and self-reported events.
        let mut fast = PipelinedServer::new(ii, latency, 64);
        let mut fast_done = Vec::new();
        let mut c = 0u64;
        while c < horizon {
            for (id, &at) in submits.iter().enumerate() {
                if at == c {
                    let _ = fast.try_submit(id as u64, Cycles(c));
                }
            }
            let must_tick = fast
                .next_event_cycle(Cycles(c))
                .is_some_and(|t| t == Cycles(c));
            if must_tick {
                fast.tick(Cycles(c));
                while let Some(id) = fast.take_done() {
                    fast_done.push((c, id));
                }
            }
            // Jump to the next submit or self-timed event, whichever first.
            let next_submit = submits.iter().filter(|&&a| a > c).min().copied();
            let next_self = fast.next_event_cycle(Cycles(c + 1)).map(|t| t.0);
            c = [next_submit, next_self, Some(horizon)]
                .into_iter()
                .flatten()
                .min()
                .expect("horizon is always present");
        }
        prop_assert_eq!(dense_done, fast_done, "fast-forward diverged");
        prop_assert_eq!(dense.served(), fast.served());
    }

    /// The pipelined server completes everything submitted, in FIFO order,
    /// with completions spaced at least II apart.
    #[test]
    fn pipeline_timing_contract(
        ii in 1u64..6,
        latency in 1u64..20,
        n in 1usize..20,
    ) {
        let mut s = PipelinedServer::new(ii, latency, 64);
        for id in 0..n as u64 {
            s.try_submit(id, Cycles(0)).expect("queue sized for the test");
        }
        let mut done: Vec<(u64, u64)> = Vec::new();
        for c in 0..(latency + ii * (n as u64 + 2)) {
            s.tick(Cycles(c));
            while let Some(id) = s.take_done() {
                done.push((c, id));
            }
        }
        prop_assert_eq!(done.len(), n);
        for (k, &(c, id)) in done.iter().enumerate() {
            prop_assert_eq!(id, k as u64, "FIFO order");
            prop_assert!(c >= latency, "nothing completes before the pipeline fills");
        }
        for w in done.windows(2) {
            prop_assert!(w[1].0 - w[0].0 >= ii, "completions at least II apart");
        }
    }
}
