//! Scoped-thread parallel sweep runner.
//!
//! Topology sweeps, PE-pool design-space exploration and multi-point
//! experiment grids are embarrassingly parallel: every point builds its own
//! platform, so points share nothing and the per-point simulation stays
//! bit-deterministic. [`parallel_map`] fans a work list out over a bounded
//! pool of `std::thread::scope` workers and returns results **in input
//! order**, so a sweep table rendered from the output is byte-identical to
//! the serial loop it replaces.
//!
//! No work queue, channels or external crates: items are dealt round-robin
//! by index (worker `w` takes items `w, w + n_workers, …`), which keeps the
//! schedule deterministic and the implementation dependency-free.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide worker-count override set by [`set_sweep_threads`]
/// (0 = no override).
// nw-analyze: allow(ND03): pool-size knob only — results return in input order and are
// bit-identical at any worker count (pinned by the serial/parallel differential suites).
static SWEEP_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the sweep worker-pool size for this process (`None` restores
/// the default). Used by the benchmark harness and tests to compare serial
/// and parallel sweeps; an atomic rather than an environment variable, so
/// flipping it is safe with other threads running.
pub fn set_sweep_threads(n: Option<usize>) {
    SWEEP_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Worker-pool size: the [`set_sweep_threads`] override if set, else the
/// `NANOWALL_SWEEP_THREADS` environment variable (read once per process —
/// mutating the environment at runtime is not thread-safe), else the
/// machine's available parallelism. Always at least 1.
pub fn sweep_threads() -> usize {
    let over = SWEEP_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if over >= 1 {
        return over;
    }
    // nw-analyze: allow(ND03): write-once env cache for the same pool-size knob; sweep
    // results are independent of the worker count by construction.
    static FROM_ENV: OnceLock<Option<usize>> = OnceLock::new();
    let env = *FROM_ENV.get_or_init(|| {
        std::env::var("NANOWALL_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
    });
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results in input order.
///
/// `f` runs once per item; panics in a worker propagate to the caller once
/// the scope joins. With `threads <= 1` (or one item) the map degenerates to
/// the plain serial loop.
///
/// # Examples
///
/// ```
/// use nw_sim::parallel_map_with;
///
/// let squares = parallel_map_with(4, (0u64..32).collect(), |x| x * x);
/// assert_eq!(squares[5], 25);
/// assert_eq!(squares.len(), 32);
/// ```
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Slots are pre-addressed by item index so workers never contend on
    // ordering; the mutex only guards slot ownership hand-off.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let work = &work;
            scope.spawn(move || {
                let mut i = w;
                while i < n {
                    let item = work[i]
                        .lock()
                        .expect("work mutex poisoned")
                        .take()
                        .expect("each item is taken exactly once");
                    let r = f(item);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(r);
                    i += workers;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot is filled by its worker")
        })
        .collect()
}

/// [`parallel_map_with`] at the default [`sweep_threads`] pool size.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(sweep_threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_with(8, (0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = parallel_map_with(1, items.clone(), |x| x.wrapping_mul(2654435761));
        let parallel = parallel_map_with(4, items, |x| x.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = parallel_map_with(4, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        let one = parallel_map_with(4, vec![7u8], |x| x + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }
}
