//! Value-change-dump (VCD) trace recording.
//!
//! The lingua franca of hardware debugging is the waveform. This module
//! records boolean and vector signals as they change during a simulation
//! and writes standard IEEE-1364 VCD, so platform activity (PE busy lines,
//! queue depths, link occupancy) can be inspected in any waveform viewer.
//!
//! This is the *signal-level* view. For the *event-level* view — discrete
//! cycle-stamped platform events (flit inject/deliver, handler dispatch,
//! deadline misses) captured through a `TraceSink` and exported as Chrome
//! trace-event / Perfetto JSON (`expt trace`) — see the `nw-obs` crate,
//! which sits above the substrates and is threaded through the platform
//! rather than through individual signals.
//!
//! # Examples
//!
//! ```
//! use nw_sim::trace::Tracer;
//! use nw_types::Cycles;
//!
//! let mut t = Tracer::new("demo");
//! let busy = t.add_wire("pe0_busy");
//! let depth = t.add_vector("queue_depth", 8);
//! t.change_wire(busy, Cycles(0), true);
//! t.change_vector(depth, Cycles(0), 3);
//! t.change_wire(busy, Cycles(10), false);
//! let vcd = t.render(Cycles(20));
//! assert!(vcd.contains("$var wire 1"));
//! assert!(vcd.contains("#10"));
//! ```

use nw_types::Cycles;
use std::fmt::Write as _;

/// Handle to a registered signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug)]
struct Signal {
    name: String,
    width: u32,
    /// (time, value) changes in record order.
    changes: Vec<(u64, u64)>,
}

/// Records signal changes and renders IEEE-1364 VCD text.
///
/// Changes may be recorded out of order across signals; rendering sorts
/// them into a single timeline. Re-recording the same value is
/// deduplicated at render time (VCD viewers dislike zero-width glitches).
#[derive(Debug)]
pub struct Tracer {
    module: String,
    signals: Vec<Signal>,
}

impl Tracer {
    /// Creates a tracer for a module scope name.
    pub fn new(module: &str) -> Self {
        Tracer {
            module: module.to_owned(),
            signals: Vec::new(),
        }
    }

    /// Registers a 1-bit signal.
    pub fn add_wire(&mut self, name: &str) -> SignalId {
        self.add_vector(name, 1)
    }

    /// Registers a vector signal of `width` bits (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn add_vector(&mut self, name: &str, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "width {width} out of 1..=64");
        self.signals.push(Signal {
            name: name.to_owned(),
            width,
            changes: Vec::new(),
        });
        SignalId(self.signals.len() - 1)
    }

    /// Records a boolean change.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (not from this tracer).
    pub fn change_wire(&mut self, id: SignalId, at: Cycles, value: bool) {
        self.change_vector(id, at, u64::from(value));
    }

    /// Records a vector change (value truncated to the signal's width).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (not from this tracer).
    pub fn change_vector(&mut self, id: SignalId, at: Cycles, value: u64) {
        let s = &mut self.signals[id.0];
        let mask = if s.width == 64 {
            u64::MAX
        } else {
            (1u64 << s.width) - 1
        };
        s.changes.push((at.0, value & mask));
    }

    /// Number of registered signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// VCD identifier code for a signal index (printable ASCII, base-94).
    fn code(mut i: usize) -> String {
        let mut s = String::new();
        loop {
            s.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        s
    }

    /// Renders the trace as VCD text, closing the timeline at `end`.
    pub fn render(&self, end: Cycles) -> String {
        let mut out = String::new();
        out.push_str("$date nanowall simulation $end\n");
        out.push_str("$version nanowall nw-sim $end\n");
        out.push_str("$timescale 1ns $end\n");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (i, s) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                s.width,
                Self::code(i),
                s.name
            );
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        // Merge all changes into one sorted timeline; dedupe repeats.
        let mut events: Vec<(u64, usize, u64)> = Vec::new();
        for (i, s) in self.signals.iter().enumerate() {
            let mut sorted = s.changes.clone();
            sorted.sort_by_key(|&(t, _)| t);
            let mut last: Option<u64> = None;
            for (t, v) in sorted {
                if last != Some(v) {
                    events.push((t, i, v));
                    last = Some(v);
                }
            }
        }
        events.sort();

        let mut current_time: Option<u64> = None;
        for (t, i, v) in events {
            if current_time != Some(t) {
                let _ = writeln!(out, "#{t}");
                current_time = Some(t);
            }
            let s = &self.signals[i];
            if s.width == 1 {
                let _ = writeln!(out, "{}{}", v & 1, Self::code(i));
            } else {
                let _ = writeln!(out, "b{v:b} {}", Self::code(i));
            }
        }
        if current_time != Some(end.0) {
            let _ = writeln!(out, "#{}", end.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_declares_signals() {
        let mut t = Tracer::new("platform");
        t.add_wire("a");
        t.add_vector("q", 16);
        let vcd = t.render(Cycles(0));
        assert!(vcd.contains("$scope module platform $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 16 \" q $end"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_render_in_time_order() {
        let mut t = Tracer::new("m");
        let a = t.add_wire("a");
        t.change_wire(a, Cycles(10), true);
        t.change_wire(a, Cycles(3), false);
        let vcd = t.render(Cycles(20));
        let p3 = vcd.find("#3").expect("time 3 present");
        let p10 = vcd.find("#10").expect("time 10 present");
        assert!(p3 < p10);
        assert!(vcd.trim_end().ends_with("#20"));
    }

    #[test]
    fn repeated_values_deduplicate() {
        let mut t = Tracer::new("m");
        let a = t.add_wire("a");
        for c in 0..5 {
            t.change_wire(a, Cycles(c), true);
        }
        let vcd = t.render(Cycles(10));
        assert_eq!(vcd.matches("1!").count(), 1, "{vcd}");
    }

    #[test]
    fn vectors_render_binary() {
        let mut t = Tracer::new("m");
        let q = t.add_vector("q", 8);
        t.change_vector(q, Cycles(1), 5);
        t.change_vector(q, Cycles(2), 300); // truncated to 8 bits = 44
        let vcd = t.render(Cycles(3));
        assert!(vcd.contains("b101 !"));
        assert!(vcd.contains("b101100 !"));
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut t = Tracer::new("m");
        let ids: Vec<_> = (0..200).map(|i| t.add_wire(&format!("s{i}"))).collect();
        assert_eq!(ids.len(), 200);
        let mut codes = std::collections::BTreeSet::new();
        for i in 0..200 {
            let c = Tracer::code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(codes.insert(c), "duplicate code for {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of 1..=64")]
    fn zero_width_panics() {
        Tracer::new("m").add_vector("bad", 0);
    }
}
