//! Deterministic time-ordered event queue.

use nw_types::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: payload plus its due time and a tie-break sequence
/// number so that events scheduled for the same cycle pop in insertion order.
#[derive(Debug, Clone)]
struct Entry<T> {
    due: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-queue of timed events.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled (FIFO within a cycle), which keeps whole-platform simulations
/// reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use nw_sim::EventQueue;
/// use nw_types::Cycles;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), "late");
/// q.schedule(Cycles(5), "early");
/// q.schedule(Cycles(5), "early2");
///
/// assert_eq!(q.pop_due(Cycles(4)), None);
/// assert_eq!(q.pop_due(Cycles(5)), Some("early"));
/// assert_eq!(q.pop_due(Cycles(5)), Some("early2"));
/// assert_eq!(q.pop_due(Cycles(5)), None);
/// assert_eq!(q.pop_due(Cycles(10)), Some("late"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to become due at cycle `due`.
    pub fn schedule(&mut self, due: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// Pops the next event whose due time is `<= now`, if any.
    ///
    /// Call repeatedly from a component's `tick` to drain everything that
    /// matured this cycle.
    pub fn pop_due(&mut self, now: Cycles) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.due <= now) {
            self.heap.pop().map(|e| e.payload)
        } else {
            None
        }
    }

    /// The due time of the earliest pending event.
    pub fn next_due(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(3), 'c');
        q.schedule(Cycles(1), 'a');
        q.schedule(Cycles(3), 'd');
        q.schedule(Cycles(2), 'b');
        let mut out = Vec::new();
        while let Some(x) = q.pop_due(Cycles(100)) {
            out.push(x);
        }
        assert_eq!(out, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn respects_due_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(7), 1u32);
        assert!(q.pop_due(Cycles(6)).is_none());
        assert_eq!(q.next_due(), Some(Cycles(7)));
        assert_eq!(q.pop_due(Cycles(7)), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_schedule_and_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles(1), ());
        q.schedule(Cycles(2), ());
        assert_eq!(q.len(), 2);
        q.pop_due(Cycles(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn same_cycle_many_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(1), i);
        }
        let mut last = -1i64;
        while let Some(i) = q.pop_due(Cycles(1)) {
            assert!(i as i64 > last);
            last = i as i64;
        }
        assert_eq!(last, 99);
    }
}
