//! A generic pipelined server: the timing skeleton shared by hardwired IP
//! blocks and eFPGA-mapped kernels.
//!
//! A pipelined datapath is characterized by its *initiation interval* (II,
//! cycles between accepting successive items) and its *latency* (cycles from
//! acceptance to completion). Items queue in a bounded buffer in front of
//! the pipeline; back-pressure is exposed through [`PipelinedServer::try_submit`].

use crate::event::EventQueue;
use crate::stats::Counter;
use crate::Clocked;
use nw_types::Cycles;
use std::collections::VecDeque;
use std::fmt;

/// Error from [`PipelinedServer::try_submit`] when the input queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerFull;

impl fmt::Display for ServerFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipelined server input queue full")
    }
}

impl std::error::Error for ServerFull {}

/// A pipelined server processing opaque item cookies.
///
/// # Examples
///
/// ```
/// use nw_sim::{PipelinedServer, Clocked};
/// use nw_types::Cycles;
///
/// // II=2, latency=10: accepts an item every other cycle.
/// let mut s = PipelinedServer::new(2, 10, 8);
/// s.try_submit(1, Cycles(0)).unwrap();
/// s.try_submit(2, Cycles(0)).unwrap();
/// let mut done = Vec::new();
/// for c in 0..20 {
///     s.tick(Cycles(c));
///     while let Some(id) = s.take_done() { done.push(id); }
/// }
/// assert_eq!(done, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedServer {
    ii: u64,
    latency: u64,
    queue: VecDeque<u64>,
    queue_cap: usize,
    in_flight: EventQueue<u64>,
    next_accept: u64,
    done: VecDeque<u64>,
    served: Counter,
    /// Cycles the issue stage actually accepted an item.
    issue_cycles: Counter,
}

impl PipelinedServer {
    /// Creates a server with initiation interval `ii` (>= 1), pipeline
    /// `latency` (>= 1) and input queue capacity `queue_cap` (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(ii: u64, latency: u64, queue_cap: usize) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        assert!(latency >= 1, "latency must be at least 1");
        assert!(queue_cap >= 1, "queue capacity must be at least 1");
        PipelinedServer {
            ii,
            latency,
            queue: VecDeque::new(),
            queue_cap,
            in_flight: EventQueue::new(),
            next_accept: 0,
            done: VecDeque::new(),
            served: Counter::new(),
            issue_cycles: Counter::new(),
        }
    }

    /// Initiation interval in cycles.
    pub fn initiation_interval(&self) -> u64 {
        self.ii
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Offers an item.
    ///
    /// # Errors
    ///
    /// [`ServerFull`] when the input queue is at capacity.
    pub fn try_submit(&mut self, id: u64, _now: Cycles) -> Result<(), ServerFull> {
        if self.queue.len() >= self.queue_cap {
            return Err(ServerFull);
        }
        self.queue.push_back(id);
        Ok(())
    }

    /// Takes the next completed item cookie, if any.
    pub fn take_done(&mut self) -> Option<u64> {
        self.done.pop_front()
    }

    /// Items completed so far.
    pub fn served(&self) -> u64 {
        self.served.count()
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty() && self.done.is_empty()
    }

    /// Delays the issue stage until `cycle` (used to model eFPGA
    /// reconfiguration downtime).
    pub fn stall_until(&mut self, cycle: Cycles) {
        self.next_accept = self.next_accept.max(cycle.0);
    }

    /// Free slots in the input queue.
    pub fn queue_free(&self) -> usize {
        self.queue_cap - self.queue.len()
    }

    /// The earliest cycle `>= now` at which ticking this server can change
    /// its state, or `None` when it is fully drained (every tick until the
    /// next submit is a no-op).
    ///
    /// A caller may skip ticks strictly before the returned cycle without
    /// changing any observable behaviour: completions mature exactly on
    /// their due cycle and queued items issue no earlier than `next_accept`.
    pub fn next_event_cycle(&self, now: Cycles) -> Option<Cycles> {
        let mut next: Option<Cycles> = self.in_flight.next_due().map(|d| d.max(now));
        if !self.queue.is_empty() {
            let issue = Cycles(self.next_accept.max(now.0));
            next = Some(next.map_or(issue, |n| n.min(issue)));
        }
        next
    }
}

impl Clocked for PipelinedServer {
    fn tick(&mut self, now: Cycles) {
        while let Some(id) = self.in_flight.pop_due(now) {
            self.served.incr();
            self.done.push_back(id);
        }
        if now.0 >= self.next_accept {
            if let Some(id) = self.queue.pop_front() {
                self.in_flight.schedule(Cycles(now.0 + self.latency), id);
                self.next_accept = now.0 + self.ii;
                self.issue_cycles.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(s: &mut PipelinedServer, upto: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for c in 0..upto {
            s.tick(Cycles(c));
            while let Some(id) = s.take_done() {
                out.push((c, id));
            }
        }
        out
    }

    #[test]
    fn throughput_follows_initiation_interval() {
        let mut s = PipelinedServer::new(4, 10, 16);
        for id in 0..4 {
            s.try_submit(id, Cycles(0)).unwrap();
        }
        let done = drive(&mut s, 40);
        assert_eq!(done.len(), 4);
        // Completions 4 cycles apart after the initial latency.
        let times: Vec<u64> = done.iter().map(|&(c, _)| c).collect();
        assert_eq!(times[1] - times[0], 4);
        assert_eq!(times[3] - times[2], 4);
    }

    #[test]
    fn latency_is_respected() {
        let mut s = PipelinedServer::new(1, 25, 4);
        s.try_submit(7, Cycles(0)).unwrap();
        let done = drive(&mut s, 40);
        assert_eq!(done, vec![(25, 7)]);
    }

    #[test]
    fn queue_full_backpressure() {
        let mut s = PipelinedServer::new(1, 5, 2);
        s.try_submit(1, Cycles(0)).unwrap();
        s.try_submit(2, Cycles(0)).unwrap();
        assert_eq!(s.try_submit(3, Cycles(0)), Err(ServerFull));
        assert_eq!(s.queue_free(), 0);
    }

    #[test]
    fn stall_until_delays_issue() {
        let mut s = PipelinedServer::new(1, 5, 4);
        s.stall_until(Cycles(100));
        s.try_submit(1, Cycles(0)).unwrap();
        let done = drive(&mut s, 120);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].0 >= 105,
            "completion at {} should wait for stall",
            done[0].0
        );
    }

    #[test]
    fn idle_detection() {
        let mut s = PipelinedServer::new(1, 2, 4);
        assert!(s.is_idle());
        s.try_submit(1, Cycles(0)).unwrap();
        assert!(!s.is_idle());
        drive(&mut s, 10);
        assert!(s.is_idle());
        assert_eq!(s.served(), 1);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        let _ = PipelinedServer::new(0, 1, 1);
    }
}
