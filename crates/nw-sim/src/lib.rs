//! Deterministic cycle-stepped simulation kernel and statistics collectors.
//!
//! The nanowall platform simulator is *cycle-stepped*: every hardware
//! component implements [`Clocked`] and is advanced one clock cycle at a
//! time by its owner, in a fixed order. This gives bit-exact reproducibility
//! (the paper's exploration methodology depends on comparing configurations,
//! which is only meaningful when runs are deterministic) and makes
//! back-pressure between components trivial to express as bounded queues.
//!
//! For components whose behaviour is naturally "something completes N cycles
//! from now" (memory controllers, paced I/O), [`event::EventQueue`] provides
//! a deterministic time-ordered queue that is polled from the component's
//! `tick`.
//!
//! The [`stats`] module holds the measurement instruments every experiment
//! in the paper reproduction relies on: busy/idle [`stats::Utilization`],
//! latency [`stats::Histogram`]s and the sub-octave-resolution
//! [`stats::LatencyHistogram`] behind the per-invocation percentile
//! telemetry, throughput [`stats::Counter`]s and streaming means.
//!
//! # Examples
//!
//! ```
//! use nw_sim::{Clocked, Clock};
//! use nw_types::Cycles;
//!
//! struct Pulse { fired: u32 }
//! impl Clocked for Pulse {
//!     fn tick(&mut self, now: Cycles) {
//!         if now.0 % 10 == 0 { self.fired += 1; }
//!     }
//! }
//!
//! let mut clock = Clock::new();
//! let mut p = Pulse { fired: 0 };
//! for _ in 0..100 { p.tick(clock.now()); clock.advance(); }
//! assert_eq!(p.fired, 10);
//! ```

pub mod event;
pub mod parallel;
pub mod pipeline;
pub mod stats;
pub mod trace;

pub use event::EventQueue;
pub use parallel::{parallel_map, parallel_map_with, set_sweep_threads, sweep_threads};
pub use pipeline::{PipelinedServer, ServerFull};
pub use stats::{
    summarize_replicas, Counter, Histogram, LatencyHistogram, OnlineMean, ReplicaSummary,
    Utilization,
};
pub use trace::{SignalId, Tracer};

use nw_types::Cycles;

/// A component advanced by the global platform clock.
///
/// Implementations must be *causal within a cycle*: during `tick(now)` a
/// component may consume inputs that were produced at cycles `< now` and
/// produce outputs that become visible at cycles `> now` (the platform
/// enforces this by ticking producers before consumers in a fixed order and
/// using queues between them).
pub trait Clocked {
    /// Advances the component by one clock cycle. `now` is the cycle that is
    /// currently executing.
    fn tick(&mut self, now: Cycles);
}

/// The global platform clock: a monotonically increasing cycle counter.
///
/// # Examples
///
/// ```
/// use nw_sim::Clock;
/// use nw_types::Cycles;
///
/// let mut c = Clock::new();
/// assert_eq!(c.now(), Cycles(0));
/// c.advance();
/// assert_eq!(c.now(), Cycles(1));
/// c.advance_by(Cycles(9));
/// assert_eq!(c.now(), Cycles(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Cycles,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        Clock { now: Cycles::ZERO }
    }

    /// The cycle currently executing.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances by one cycle.
    pub fn advance(&mut self) {
        self.now += Cycles(1);
    }

    /// Advances by `d` cycles.
    pub fn advance_by(&mut self, d: Cycles) {
        self.now += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountUp(u64);
    impl Clocked for CountUp {
        fn tick(&mut self, _now: Cycles) {
            self.0 += 1;
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let mut last = c.now();
        for _ in 0..5 {
            c.advance();
            assert!(c.now() > last);
            last = c.now();
        }
    }

    #[test]
    fn clocked_trait_object_works() {
        let mut items: Vec<Box<dyn Clocked>> = vec![Box::new(CountUp(0)), Box::new(CountUp(10))];
        let mut clock = Clock::new();
        for _ in 0..3 {
            for it in items.iter_mut() {
                it.tick(clock.now());
            }
            clock.advance();
        }
        assert_eq!(clock.now(), Cycles(3));
    }
}
