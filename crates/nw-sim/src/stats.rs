//! Measurement instruments for the experiment harness.
//!
//! Everything the paper reproduction reports — processor/thread utilization
//! (claim C7's "near 100% utilization"), NoC latency distributions (C4, C5),
//! packet throughput (C7) — is collected through these small, allocation-light
//! collectors.

use nw_types::Cycles;

/// A monotonically increasing event counter with rate conversion.
///
/// # Examples
///
/// ```
/// use nw_sim::Counter;
/// use nw_types::Cycles;
///
/// let mut packets = Counter::new();
/// packets.add(250);
/// assert_eq!(packets.count(), 250);
/// // 250 packets in 1000 cycles at 1 GHz = 250 Mpps.
/// assert!((packets.rate_per_second(Cycles(1000), 1e9) - 250e6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// The current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Events per simulated second, given the elapsed cycles and clock rate.
    /// Returns 0.0 when no time has elapsed.
    pub fn rate_per_second(&self, elapsed: Cycles, clock_hz: f64) -> f64 {
        if elapsed == Cycles::ZERO {
            0.0
        } else {
            self.count as f64 / elapsed.to_seconds(clock_hz)
        }
    }

    /// Events per cycle. Returns 0.0 when no time has elapsed.
    pub fn rate_per_cycle(&self, elapsed: Cycles) -> f64 {
        if elapsed == Cycles::ZERO {
            0.0
        } else {
            self.count as f64 / elapsed.0 as f64
        }
    }
}

/// Busy/idle accounting for one resource (a thread context, a PE, a link).
///
/// Call [`Utilization::busy`] or [`Utilization::idle`] exactly once per
/// cycle; the ratio of busy cycles to total observed cycles is the
/// utilization the paper's claim C7 is stated in.
///
/// # Examples
///
/// ```
/// use nw_sim::Utilization;
///
/// let mut u = Utilization::new();
/// for i in 0..100 {
///     if i % 4 == 0 { u.idle() } else { u.busy() }
/// }
/// assert!((u.fraction() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Utilization {
    busy: u64,
    total: u64,
}

impl Utilization {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Records one busy cycle.
    pub fn busy(&mut self) {
        self.busy += 1;
        self.total += 1;
    }

    /// Records one idle cycle.
    pub fn idle(&mut self) {
        self.total += 1;
    }

    /// Records `n` busy cycles at once — exactly equivalent to `n` calls to
    /// [`Utilization::busy`]. The active-set scheduler uses this to settle
    /// accounting for cycles it skipped without perturbing the counters.
    pub fn busy_n(&mut self, n: u64) {
        self.busy += n;
        self.total += n;
    }

    /// Records `n` idle cycles at once — exactly equivalent to `n` calls to
    /// [`Utilization::idle`].
    pub fn idle_n(&mut self, n: u64) {
        self.total += n;
    }

    /// Busy cycles observed so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Total cycles observed so far.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Busy fraction in `[0, 1]`; 0.0 before any observation.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }

    /// Merges another tracker into this one (for aggregating per-thread
    /// utilization into per-PE or whole-platform figures).
    pub fn merge(&mut self, other: &Utilization) {
        self.busy += other.busy;
        self.total += other.total;
    }
}

/// A latency histogram with power-of-two buckets plus exact min/max/mean.
///
/// Bucketing keeps memory constant while the exact moments keep the summary
/// statistics precise — quantiles are approximate (bucket upper bound).
///
/// # Examples
///
/// ```
/// use nw_sim::Histogram;
/// use nw_types::Cycles;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 100] { h.record(Cycles(v)); }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(Cycles(10)));
/// assert_eq!(h.max(), Some(Cycles(100)));
/// assert!((h.mean() - 40.0).abs() < 1e-9);
/// assert!(h.quantile(0.5) >= Cycles(20));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// buckets[i] counts samples with value in [2^(i-1), 2^i), bucket 0 = {0}.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Option<Cycles>,
    max: Option<Cycles>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycles) {
        self.buckets[Self::bucket_of(v.0)] += 1;
        self.count += 1;
        self.sum += v.0 as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<Cycles> {
        self.min
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<Cycles> {
        self.max
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1): the upper bound of the bucket
    /// containing the q-th sample. Returns zero cycles when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let target = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Cycles(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        self.max.unwrap_or(Cycles::ZERO)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A fixed-bucket log-scale latency histogram with sub-octave resolution.
///
/// The per-invocation latency telemetry needs tail quantiles (p95/p99) that
/// the coarse power-of-two [`Histogram`] cannot resolve better than 2×. This
/// collector keeps 16 sub-buckets per octave (plus 16 exact buckets for
/// values below 16), bounding the relative error of any quantile at
/// 1/16 ≈ 6.25% while staying a fixed-size array — no per-sample
/// allocation, O(1) record, O(buckets) merge. Min, max and mean are exact.
///
/// Two histograms fed the same samples in any order are equal
/// (`PartialEq` compares bucket counts and the exact moments), and
/// [`LatencyHistogram::merge`] is associative and commutative, so serial
/// and parallel sweeps aggregating per-shard histograms agree bit-for-bit.
///
/// # Examples
///
/// ```
/// use nw_sim::LatencyHistogram;
/// use nw_types::Cycles;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 { h.record(Cycles(v)); }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), Some(Cycles(1000)));
/// // p50 lands within one sub-bucket (6.25%) of the true median.
/// let p50 = h.quantile(0.5).0;
/// assert!((500..=532).contains(&p50), "{p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples whose value falls in bucket `i`; see
    /// [`LatencyHistogram::bucket_of`] for the layout.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Option<Cycles>,
    max: Option<Cycles>,
}

/// Sub-buckets per octave (and the number of exact low-value buckets).
const LAT_SUB: usize = 16;
/// log2 of [`LAT_SUB`].
const LAT_SUB_BITS: u32 = 4;
/// Octaves covered: values 16..2^64 span exponents 4..=63.
const LAT_BUCKETS: usize = LAT_SUB + (64 - LAT_SUB_BITS as usize) * LAT_SUB;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; LAT_BUCKETS],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// The bucket index of a value: values `< 16` get exact buckets; larger
    /// values share an octave (`2^o ≤ v < 2^(o+1)`) split into 16 equal
    /// sub-buckets keyed on the 4 bits after the leading bit.
    fn bucket_of(v: u64) -> usize {
        if v < LAT_SUB as u64 {
            v as usize
        } else {
            let o = 63 - v.leading_zeros() as usize;
            let sub = ((v >> (o - LAT_SUB_BITS as usize)) & (LAT_SUB as u64 - 1)) as usize;
            LAT_SUB + (o - LAT_SUB_BITS as usize) * LAT_SUB + sub
        }
    }

    /// The largest value that falls into bucket `i` — what quantile
    /// extraction reports, making every quantile an upper bound at most one
    /// sub-bucket (1/16th of the sample's octave) above the true order
    /// statistic.
    fn bucket_upper(i: usize) -> u64 {
        if i < LAT_SUB {
            i as u64
        } else {
            let rel = i - LAT_SUB;
            let o = LAT_SUB_BITS as usize + rel / LAT_SUB;
            let sub = (rel % LAT_SUB) as u64;
            // 2^o - 1 + (sub + 1) · 2^(o-4); tops out at u64::MAX exactly.
            ((1u64 << o) - 1) + ((sub + 1) << (o - LAT_SUB_BITS as usize))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycles) {
        self.buckets[Self::bucket_of(v.0)] += 1;
        self.count += 1;
        self.sum += v.0 as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (exact).
    pub fn min(&self) -> Option<Cycles> {
        self.min
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> Option<Cycles> {
        self.max
    }

    /// The `q`-quantile (0 ≤ q ≤ 1): the upper bound of the bucket holding
    /// the `⌈count · q⌉`-th smallest sample, clamped to the exact observed
    /// min/max. At most 1/16 ≈ 6.25% above the true order statistic.
    /// Returns zero cycles when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let target = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ub = Cycles(Self::bucket_upper(i));
                // The histogram's exact extremes tighten the bucket bound.
                let lo = self.min.unwrap_or(Cycles::ZERO);
                let hi = self.max.unwrap_or(ub);
                return ub.max(lo).min(hi);
            }
        }
        self.max.unwrap_or(Cycles::ZERO)
    }

    /// Median latency (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> Cycles {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Cycles {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Cycles {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (per-shard aggregation in
    /// parallel sweeps). Associative and commutative: any merge tree over
    /// the same shards yields the same histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Streaming mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use nw_sim::OnlineMean;
///
/// let mut m = OnlineMean::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] { m.push(v); }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.variance() - 4.571428).abs() < 1e-5); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineMean::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Spread of one statistic across N independent measurement replicas:
/// the summary the multi-seed replica experiments report per percentile
/// column instead of a single draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSummary {
    /// Replicas summarized.
    pub n: usize,
    /// Smallest replica value.
    pub min: f64,
    /// Median replica value (midpoint average for even N).
    pub median: f64,
    /// Largest replica value.
    pub max: f64,
    /// Normal-approximation 95% confidence half-width of the replica mean:
    /// `1.96 * s / sqrt(n)` with `s` the sample standard deviation. Zero
    /// with fewer than two replicas.
    pub ci_half_width: f64,
}

/// Summarizes one statistic measured on each of N replicas.
///
/// # Examples
///
/// ```
/// use nw_sim::stats::summarize_replicas;
///
/// let s = summarize_replicas(&[10.0, 14.0, 12.0]);
/// assert_eq!((s.min, s.median, s.max), (10.0, 12.0, 14.0));
/// assert!(s.ci_half_width > 0.0);
/// ```
///
/// # Panics
///
/// Panics on an empty slice or a NaN value — replica measurements are
/// concrete percentile readings, so neither has a meaningful summary.
pub fn summarize_replicas(values: &[f64]) -> ReplicaSummary {
    assert!(!values.is_empty(), "no replicas to summarize");
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "replica values must not be NaN"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    let mut mean = OnlineMean::new();
    for &v in &sorted {
        mean.push(v);
    }
    let ci_half_width = if n < 2 {
        0.0
    } else {
        1.96 * mean.std_dev() / (n as f64).sqrt()
    };
    ReplicaSummary {
        n,
        min: sorted[0],
        median,
        max: sorted[n - 1],
        ci_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_summary_orders_and_bounds() {
        let s = summarize_replicas(&[5.0, 1.0, 3.0, 9.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
        // 1.96 * s / sqrt(n) against a hand-computed sample std dev:
        // mean 4.5, squared deviations 0.25 + 12.25 + 2.25 + 20.25 = 35.
        let expect = 1.96 * ((35.0 / 3.0f64).sqrt()) / 2.0;
        assert!((s.ci_half_width - expect).abs() < 1e-9);
    }

    #[test]
    fn replica_summary_single_value_has_zero_width() {
        let s = summarize_replicas(&[7.5]);
        assert_eq!((s.min, s.median, s.max), (7.5, 7.5, 7.5));
        assert_eq!(s.ci_half_width, 0.0);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn replica_summary_rejects_empty() {
        let _ = summarize_replicas(&[]);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        for _ in 0..10 {
            c.incr();
        }
        assert_eq!(c.count(), 10);
        assert!((c.rate_per_cycle(Cycles(100)) - 0.1).abs() < 1e-12);
        assert_eq!(c.rate_per_cycle(Cycles::ZERO), 0.0);
        assert_eq!(c.rate_per_second(Cycles::ZERO, 1e9), 0.0);
    }

    #[test]
    fn utilization_bounds_and_merge() {
        let mut a = Utilization::new();
        assert_eq!(a.fraction(), 0.0);
        a.busy();
        a.busy();
        a.idle();
        let mut b = Utilization::new();
        b.idle();
        a.merge(&b);
        assert_eq!(a.busy_cycles(), 2);
        assert_eq!(a.total_cycles(), 4);
        assert!((a.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), Cycles::ZERO);
        for v in 1..=100u64 {
            h.record(Cycles(v));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(Cycles(1)));
        assert_eq!(h.max(), Some(Cycles(100)));
        assert!((h.mean() - 50.5).abs() < 1e-12);
        // The 50th sample of 1..=100 lies in bucket [32,64): upper bound 64.
        assert_eq!(h.quantile(0.5), Cycles(64));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(Cycles(5));
        let mut b = Histogram::new();
        b.record(Cycles(50));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(Cycles(5)));
        assert_eq!(a.max(), Some(Cycles(50)));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn latency_histogram_low_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(Cycles(v));
        }
        // One sample per exact bucket: every quantile is the exact value.
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(h.quantile(q), Cycles(v), "q={q}");
        }
    }

    #[test]
    fn latency_histogram_bucket_layout() {
        // Exact region.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(15), 15);
        // First octave region: 16..32 in sub-buckets of width 1.
        assert_eq!(LatencyHistogram::bucket_of(16), 16);
        assert_eq!(LatencyHistogram::bucket_of(31), 31);
        // 32..64: width-2 sub-buckets.
        assert_eq!(LatencyHistogram::bucket_of(32), 32);
        assert_eq!(LatencyHistogram::bucket_of(33), 32);
        assert_eq!(LatencyHistogram::bucket_of(34), 33);
        // Upper bounds invert the mapping.
        for v in [0u64, 15, 16, 31, 32, 100, 1 << 20, u64::MAX] {
            let i = LatencyHistogram::bucket_of(v);
            assert!(LatencyHistogram::bucket_upper(i) >= v, "v={v}");
            if i + 1 < LAT_BUCKETS {
                assert!(
                    LatencyHistogram::bucket_upper(i) < LatencyHistogram::bucket_upper(i + 1),
                    "v={v}"
                );
            }
        }
        assert_eq!(LatencyHistogram::bucket_upper(LAT_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn latency_histogram_percentiles_bound_the_oracle() {
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = (1..=10_000).map(|i| i * 7 % 9973 + 1).collect();
        for &v in &samples {
            h.record(Cycles(v));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99, 1.0] {
            let target = ((sorted.len() as f64 * q).ceil() as usize).max(1);
            let oracle = sorted[target - 1];
            let got = h.quantile(q).0;
            assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            assert!(
                got <= oracle + oracle / 16 + 1,
                "q={q}: {got} overshoots oracle {oracle}"
            );
        }
    }

    #[test]
    fn latency_histogram_merge_matches_combined() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            let s = Cycles(v * v % 7919);
            all.record(s);
            if v % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, all);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba, all);
    }

    #[test]
    fn online_mean_matches_naive() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut m = OnlineMean::new();
        for &x in &xs {
            m.push(x);
        }
        let naive: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - naive).abs() < 1e-12);
        assert_eq!(m.count(), 5);
        assert!(m.std_dev() > 0.0);
    }

    #[test]
    fn online_mean_variance_small_n() {
        let mut m = OnlineMean::new();
        assert_eq!(m.variance(), 0.0);
        m.push(3.0);
        assert_eq!(m.variance(), 0.0);
    }
}
