//! Fixed-function hardwired IP blocks.

use nw_sim::{Clocked, PipelinedServer, ServerFull};
use nw_types::{AreaMm2, Cycles, Picojoules};

/// A hardwired accelerator: a pipelined datapath with fixed function,
/// the far-right point of the paper's Figure 1 continuum (maximum
/// power/performance, zero post-silicon flexibility).
///
/// # Examples
///
/// ```
/// use nw_hwip::HwIpBlock;
/// use nw_sim::Clocked;
/// use nw_types::{AreaMm2, Cycles, Picojoules};
///
/// let mut ip = HwIpBlock::new("mpeg-idct", 1, 12, AreaMm2(0.3), Picojoules(25.0), 32);
/// ip.try_submit(1, Cycles(0)).unwrap();
/// for c in 0..20 { ip.tick(Cycles(c)); }
/// assert_eq!(ip.take_done(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct HwIpBlock {
    name: String,
    server: PipelinedServer,
    area: AreaMm2,
    energy_per_item: Picojoules,
    energy: Picojoules,
}

impl HwIpBlock {
    /// Creates a block accepting one item every `ii` cycles with pipeline
    /// `latency`, occupying `area` and spending `energy_per_item` per item.
    ///
    /// # Panics
    ///
    /// Panics if `ii`, `latency` or `queue_cap` is zero (see
    /// [`PipelinedServer::new`]).
    pub fn new(
        name: &str,
        ii: u64,
        latency: u64,
        area: AreaMm2,
        energy_per_item: Picojoules,
        queue_cap: usize,
    ) -> Self {
        HwIpBlock {
            name: name.to_owned(),
            server: PipelinedServer::new(ii, latency, queue_cap),
            area,
            energy_per_item,
            energy: Picojoules::ZERO,
        }
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die area of the block.
    pub fn area(&self) -> AreaMm2 {
        self.area
    }

    /// Offers an item.
    ///
    /// # Errors
    ///
    /// [`ServerFull`] when the input queue is at capacity.
    pub fn try_submit(&mut self, id: u64, now: Cycles) -> Result<(), ServerFull> {
        self.server.try_submit(id, now)
    }

    /// Takes the next completed item cookie.
    pub fn take_done(&mut self) -> Option<u64> {
        let r = self.server.take_done();
        if r.is_some() {
            self.energy += self.energy_per_item;
        }
        r
    }

    /// Items completed.
    pub fn served(&self) -> u64 {
        self.server.served()
    }

    /// Total dynamic energy.
    pub fn energy(&self) -> Picojoules {
        self.energy
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.server.is_idle()
    }
}

impl Clocked for HwIpBlock {
    fn tick(&mut self, now: Cycles) {
        self.server.tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_with_fixed_timing() {
        let mut ip = HwIpBlock::new("crc", 2, 6, AreaMm2(0.1), Picojoules(10.0), 8);
        for id in 0..3 {
            ip.try_submit(id, Cycles(0)).unwrap();
        }
        let mut done = Vec::new();
        for c in 0..30 {
            ip.tick(Cycles(c));
            while let Some(id) = ip.take_done() {
                done.push((c, id));
            }
        }
        assert_eq!(done.len(), 3);
        assert_eq!(done[1].0 - done[0].0, 2, "II must pace completions");
        assert!((ip.energy().0 - 30.0).abs() < 1e-9);
        assert_eq!(ip.name(), "crc");
        assert!(ip.is_idle());
    }

    #[test]
    fn backpressure_when_queue_full() {
        let mut ip = HwIpBlock::new("x", 1, 1, AreaMm2(0.1), Picojoules(1.0), 1);
        ip.try_submit(0, Cycles(0)).unwrap();
        assert!(ip.try_submit(1, Cycles(0)).is_err());
    }
}
