//! Hardwired IP blocks and communication-oriented I/O channels.
//!
//! §6.4 of the paper: "Of course, hardware will not disappear! But
//! increasingly, it will exist in the form of highly standardized functions,
//! which communicate via a standard protocol" — plus "the I/O component",
//! the standardized line interfaces (SPI-x, PCI evolutions, HyperTransport…)
//! whose integration "will be facilitated by the network-on-chip's
//! standardized protocol".
//!
//! * [`HwIpBlock`] — a fixed-function pipelined accelerator at a NoC node
//!   (the hardwired end of the Figure 1 continuum).
//! * [`IoChannel`] — a line-rate-paced packet source/sink, the component
//!   that drives the 10 Gbit/s worst-case traffic of claim C7.

pub mod block;
pub mod io;

pub use block::HwIpBlock;
pub use io::{IoChannel, IoChannelConfig};
