//! The platform-independent application model: objects, interfaces and the
//! call graph.
//!
//! A DSOC application is a directed acyclic graph of objects. Each object
//! exposes methods; each method declares its marshalling footprint (argument
//! and reply bytes), its compute weight in GP-RISC baseline cycles, its
//! local state traffic, and which downstream methods it invokes per
//! invocation. From entry-point rates the model propagates steady-state
//! invocation rates through the graph — the quantity the MultiFlex mappers
//! in `nw-mapping` balance across processors.

use nw_types::ObjectId;
use std::collections::VecDeque;
use std::fmt;

/// Index of a method within one object's interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MethodId(pub u16);

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Kernel-domain tag (mirrors `nw_pe::KernelDomain` without the dependency;
/// the core crate converts between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Domain {
    /// Control-dominated code.
    Control,
    /// Signal-processing kernel.
    Signal,
    /// Packet-header processing.
    PacketHeader,
    /// Generic integer compute.
    #[default]
    Generic,
}

/// One method of an object's interface.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Marshalled argument size in bytes.
    pub arg_bytes: u64,
    /// Marshalled reply size in bytes; 0 makes the method *oneway*
    /// (fire-and-forget, no reply message).
    pub reply_bytes: u64,
    /// Compute weight in GP-RISC baseline cycles.
    pub compute_cycles: u64,
    /// Local state bytes touched per invocation (scratchpad traffic).
    pub local_bytes: u64,
    /// Kernel domain (drives ASIP/DSP speedups on matched PEs).
    pub domain: Domain,
}

impl MethodDef {
    /// A oneway (no-reply) method with the given argument size.
    pub fn oneway(name: &str, arg_bytes: u64) -> Self {
        MethodDef {
            name: name.to_owned(),
            arg_bytes,
            reply_bytes: 0,
            compute_cycles: 0,
            local_bytes: 0,
            domain: Domain::Generic,
        }
    }

    /// A twoway (request/reply) method.
    pub fn twoway(name: &str, arg_bytes: u64, reply_bytes: u64) -> Self {
        MethodDef {
            reply_bytes,
            ..Self::oneway(name, arg_bytes)
        }
    }

    /// Sets the compute weight.
    pub fn with_compute(mut self, cycles: u64) -> Self {
        self.compute_cycles = cycles;
        self
    }

    /// Sets the local state traffic.
    pub fn with_local_bytes(mut self, bytes: u64) -> Self {
        self.local_bytes = bytes;
        self
    }

    /// Sets the kernel domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Whether the method returns a reply.
    pub fn is_twoway(&self) -> bool {
        self.reply_bytes > 0
    }
}

/// One DSOC object: a named bundle of methods plus its state footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDef {
    /// Object name.
    pub name: String,
    /// Methods, indexed by [`MethodId`].
    pub methods: Vec<MethodDef>,
    /// Persistent state size in bytes (placement constraint input).
    pub state_bytes: u64,
}

impl ObjectDef {
    /// Creates an object with no methods.
    pub fn new(name: &str) -> Self {
        ObjectDef {
            name: name.to_owned(),
            methods: Vec::new(),
            state_bytes: 0,
        }
    }

    /// Adds a method.
    pub fn with_method(mut self, m: MethodDef) -> Self {
        self.methods.push(m);
        self
    }

    /// Sets the state footprint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_bytes = bytes;
        self
    }
}

/// A directed call edge: invocations of `(from, from_method)` invoke
/// `(to, to_method)` `calls_per_invocation` times on average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallEdge {
    /// Calling object.
    pub from: ObjectId,
    /// Calling method.
    pub from_method: MethodId,
    /// Callee object.
    pub to: ObjectId,
    /// Callee method.
    pub to_method: MethodId,
    /// Mean downstream invocations per upstream invocation.
    pub calls_per_invocation: f64,
}

/// Errors from [`Application`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildAppError {
    /// An edge or entry references a missing object.
    UnknownObject(ObjectId),
    /// An edge or entry references a missing method.
    UnknownMethod(ObjectId, MethodId),
    /// The call graph has a cycle (rate propagation requires a DAG).
    CyclicCallGraph,
    /// The application has no entry point.
    NoEntryPoint,
    /// An edge has a non-positive call multiplicity.
    BadMultiplicity(f64),
}

impl fmt::Display for BuildAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildAppError::UnknownObject(o) => write!(f, "unknown object {o}"),
            BuildAppError::UnknownMethod(o, m) => write!(f, "unknown method {m} on {o}"),
            BuildAppError::CyclicCallGraph => write!(f, "call graph contains a cycle"),
            BuildAppError::NoEntryPoint => write!(f, "application has no entry point"),
            BuildAppError::BadMultiplicity(x) => {
                write!(f, "call multiplicity {x} must be positive")
            }
        }
    }
}

impl std::error::Error for BuildAppError {}

/// A validated DSOC application.
#[derive(Debug, Clone)]
pub struct Application {
    name: String,
    objects: Vec<ObjectDef>,
    edges: Vec<CallEdge>,
    entries: Vec<(ObjectId, MethodId)>,
}

impl Application {
    /// Starts building an application.
    pub fn builder(name: &str) -> ApplicationBuilder {
        ApplicationBuilder {
            name: name.to_owned(),
            objects: Vec::new(),
            edges: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All objects, indexed by [`ObjectId`].
    pub fn objects(&self) -> &[ObjectDef] {
        &self.objects
    }

    /// One object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (builders validate all ids).
    pub fn object(&self, id: ObjectId) -> &ObjectDef {
        &self.objects[id.0]
    }

    /// A method definition.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn method(&self, o: ObjectId, m: MethodId) -> &MethodDef {
        &self.objects[o.0].methods[m.0 as usize]
    }

    /// All call edges.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Entry points (driven by external traffic sources).
    pub fn entries(&self) -> &[(ObjectId, MethodId)] {
        &self.entries
    }

    /// Outgoing edges of `(o, m)` in declaration order.
    pub fn calls_from(&self, o: ObjectId, m: MethodId) -> impl Iterator<Item = &CallEdge> {
        self.edges
            .iter()
            .filter(move |e| e.from == o && e.from_method == m)
    }

    /// Propagates entry rates (invocations per cycle, aligned with
    /// [`Application::entries`]) through the call graph and returns the
    /// steady-state invocation rate per `(object, method)`.
    ///
    /// # Panics
    ///
    /// Panics if `entry_rates.len() != self.entries().len()`.
    pub fn invocation_rates(&self, entry_rates: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            entry_rates.len(),
            self.entries.len(),
            "one rate per entry point required"
        );
        let mut rates: Vec<Vec<f64>> = self
            .objects
            .iter()
            .map(|o| vec![0.0; o.methods.len()])
            .collect();
        for (&(o, m), &r) in self.entries.iter().zip(entry_rates) {
            rates[o.0][m.0 as usize] += r;
        }
        // The builder guarantees a DAG, so Kahn-style propagation converges.
        for &(o, m) in &self.topo_order() {
            let r = rates[o.0][m.0 as usize];
            if r == 0.0 {
                continue;
            }
            for e in self.calls_from(o, m) {
                rates[e.to.0][e.to_method.0 as usize] += r * e.calls_per_invocation;
            }
        }
        rates
    }

    /// Total compute load (baseline cycles per cycle) per object for given
    /// entry rates — the load-balancing input of the mappers.
    pub fn object_loads(&self, entry_rates: &[f64]) -> Vec<f64> {
        let rates = self.invocation_rates(entry_rates);
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                o.methods
                    .iter()
                    .zip(&rates[i])
                    .map(|(m, r)| m.compute_cycles as f64 * r)
                    .sum()
            })
            .collect()
    }

    /// Communication volume (bytes per cycle) over each edge for given entry
    /// rates, in edge declaration order. Includes reply traffic for twoway
    /// callees.
    pub fn edge_traffic(&self, entry_rates: &[f64]) -> Vec<f64> {
        let rates = self.invocation_rates(entry_rates);
        self.edges
            .iter()
            .map(|e| {
                let caller_rate = rates[e.from.0][e.from_method.0 as usize];
                let callee = self.method(e.to, e.to_method);
                let per_call = callee.arg_bytes as f64 + callee.reply_bytes as f64;
                caller_rate * e.calls_per_invocation * per_call
            })
            .collect()
    }

    /// Topological order of `(object, method)` nodes in the call graph.
    fn topo_order(&self) -> Vec<(ObjectId, MethodId)> {
        let mut nodes = Vec::new();
        for (i, o) in self.objects.iter().enumerate() {
            for m in 0..o.methods.len() {
                nodes.push((ObjectId(i), MethodId(m as u16)));
            }
        }
        let index = |o: ObjectId, m: MethodId| -> usize {
            let mut k = 0;
            for (i, obj) in self.objects.iter().enumerate() {
                if i == o.0 {
                    return k + m.0 as usize;
                }
                k += obj.methods.len();
            }
            unreachable!("validated object id")
        };
        let mut indeg = vec![0usize; nodes.len()];
        for e in &self.edges {
            indeg[index(e.to, e.to_method)] += 1;
        }
        let mut q: VecDeque<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(i) = q.pop_front() {
            order.push(nodes[i]);
            let (o, m) = nodes[i];
            for e in self.calls_from(o, m) {
                let j = index(e.to, e.to_method);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    q.push_back(j);
                }
            }
        }
        debug_assert_eq!(order.len(), nodes.len(), "builder guarantees a DAG");
        order
    }
}

/// Builder for [`Application`].
#[derive(Debug)]
pub struct ApplicationBuilder {
    name: String,
    objects: Vec<ObjectDef>,
    edges: Vec<CallEdge>,
    entries: Vec<(ObjectId, MethodId)>,
}

impl ApplicationBuilder {
    /// Adds an object, returning its id.
    pub fn add_object(&mut self, o: ObjectDef) -> ObjectId {
        self.objects.push(o);
        ObjectId(self.objects.len() - 1)
    }

    /// Declares that `(from, from_method)` invokes `(to, to_method)`
    /// `calls` times per invocation.
    pub fn connect(
        &mut self,
        from: ObjectId,
        from_method: u16,
        to: ObjectId,
        to_method: u16,
        calls: f64,
    ) -> &mut Self {
        self.edges.push(CallEdge {
            from,
            from_method: MethodId(from_method),
            to,
            to_method: MethodId(to_method),
            calls_per_invocation: calls,
        });
        self
    }

    /// Declares `(o, m)` as an entry point driven by external traffic.
    pub fn entry(&mut self, o: ObjectId, m: u16) -> &mut Self {
        self.entries.push((o, MethodId(m)));
        self
    }

    /// Validates and builds the application.
    ///
    /// # Errors
    ///
    /// See [`BuildAppError`] — unknown references, cycles, missing entry
    /// points and non-positive multiplicities are all rejected.
    pub fn build(self) -> Result<Application, BuildAppError> {
        let check = |o: ObjectId, m: MethodId| -> Result<(), BuildAppError> {
            let obj = self
                .objects
                .get(o.0)
                .ok_or(BuildAppError::UnknownObject(o))?;
            if m.0 as usize >= obj.methods.len() {
                return Err(BuildAppError::UnknownMethod(o, m));
            }
            Ok(())
        };
        for e in &self.edges {
            check(e.from, e.from_method)?;
            check(e.to, e.to_method)?;
            if e.calls_per_invocation <= 0.0 {
                return Err(BuildAppError::BadMultiplicity(e.calls_per_invocation));
            }
        }
        if self.entries.is_empty() {
            return Err(BuildAppError::NoEntryPoint);
        }
        for &(o, m) in &self.entries {
            check(o, m)?;
        }
        let app = Application {
            name: self.name,
            objects: self.objects,
            edges: self.edges,
            entries: self.entries,
        };
        // Cycle check: topo order must cover every (object, method) node.
        let n_nodes: usize = app.objects.iter().map(|o| o.methods.len()).sum();
        let mut probe = app.clone();
        // topo_order asserts in debug; count explicitly for release too.
        let order = probe.topo_order_len();
        if order != n_nodes {
            return Err(BuildAppError::CyclicCallGraph);
        }
        let _ = &mut probe;
        Ok(app)
    }
}

impl Application {
    fn topo_order_len(&mut self) -> usize {
        // Reuse topo_order but tolerate cycles (it would under-count).
        let mut nodes = Vec::new();
        for (i, o) in self.objects.iter().enumerate() {
            for m in 0..o.methods.len() {
                nodes.push((ObjectId(i), MethodId(m as u16)));
            }
        }
        let index = |o: ObjectId, m: MethodId, objs: &[ObjectDef]| -> usize {
            objs.iter()
                .take(o.0)
                .map(|x| x.methods.len())
                .sum::<usize>()
                + m.0 as usize
        };
        let mut indeg = vec![0usize; nodes.len()];
        for e in &self.edges {
            indeg[index(e.to, e.to_method, &self.objects)] += 1;
        }
        let mut q: VecDeque<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = q.pop_front() {
            seen += 1;
            let (o, m) = nodes[i];
            let outs: Vec<(ObjectId, MethodId)> =
                self.calls_from(o, m).map(|e| (e.to, e.to_method)).collect();
            for (to, tm) in outs {
                let j = index(to, tm, &self.objects);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    q.push_back(j);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stage() -> Application {
        let mut b = Application::builder("3stage");
        let a = b.add_object(
            ObjectDef::new("a").with_method(MethodDef::oneway("in", 40).with_compute(100)),
        );
        let m = b.add_object(
            ObjectDef::new("b").with_method(MethodDef::twoway("lookup", 8, 16).with_compute(60)),
        );
        let z = b.add_object(
            ObjectDef::new("c").with_method(MethodDef::oneway("out", 40).with_compute(30)),
        );
        b.connect(a, 0, m, 0, 1.0);
        b.connect(a, 0, z, 0, 1.0);
        b.entry(a, 0);
        b.build().unwrap()
    }

    #[test]
    fn rates_propagate_through_the_dag() {
        let app = three_stage();
        let rates = app.invocation_rates(&[0.01]);
        assert!((rates[0][0] - 0.01).abs() < 1e-12);
        assert!((rates[1][0] - 0.01).abs() < 1e-12);
        assert!((rates[2][0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_scales_rates() {
        let mut b = Application::builder("fanout");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        let c = b.add_object(ObjectDef::new("c").with_method(MethodDef::oneway("y", 8)));
        b.connect(a, 0, c, 0, 3.0);
        b.entry(a, 0);
        let app = b.build().unwrap();
        let rates = app.invocation_rates(&[0.02]);
        assert!((rates[1][0] - 0.06).abs() < 1e-12);
    }

    #[test]
    fn loads_weight_by_compute() {
        let app = three_stage();
        let loads = app.object_loads(&[0.01]);
        assert!((loads[0] - 1.0).abs() < 1e-9); // 100 cyc × 0.01
        assert!((loads[1] - 0.6).abs() < 1e-9);
        assert!((loads[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn edge_traffic_includes_replies() {
        let app = three_stage();
        let t = app.edge_traffic(&[0.01]);
        // Edge a->b: (8 arg + 16 reply) × 0.01 = 0.24 B/cyc.
        assert!((t[0] - 0.24).abs() < 1e-9);
        // Edge a->c: 40 arg, oneway.
        assert!((t[1] - 0.40).abs() < 1e-9);
    }

    #[test]
    fn unknown_references_rejected() {
        let mut b = Application::builder("bad");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        b.connect(a, 0, ObjectId(9), 0, 1.0);
        b.entry(a, 0);
        assert_eq!(
            b.build().unwrap_err(),
            BuildAppError::UnknownObject(ObjectId(9))
        );

        let mut b = Application::builder("bad2");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        b.entry(a, 5);
        assert_eq!(
            b.build().unwrap_err(),
            BuildAppError::UnknownMethod(a, MethodId(5))
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = Application::builder("cyc");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        let c = b.add_object(ObjectDef::new("c").with_method(MethodDef::oneway("y", 8)));
        b.connect(a, 0, c, 0, 1.0);
        b.connect(c, 0, a, 0, 1.0);
        b.entry(a, 0);
        assert_eq!(b.build().unwrap_err(), BuildAppError::CyclicCallGraph);
    }

    #[test]
    fn no_entry_rejected() {
        let mut b = Application::builder("empty");
        b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        assert_eq!(b.build().unwrap_err(), BuildAppError::NoEntryPoint);
    }

    #[test]
    fn bad_multiplicity_rejected() {
        let mut b = Application::builder("mult");
        let a = b.add_object(ObjectDef::new("a").with_method(MethodDef::oneway("x", 8)));
        let c = b.add_object(ObjectDef::new("c").with_method(MethodDef::oneway("y", 8)));
        b.connect(a, 0, c, 0, 0.0);
        b.entry(a, 0);
        assert_eq!(b.build().unwrap_err(), BuildAppError::BadMultiplicity(0.0));
    }

    #[test]
    fn method_kinds() {
        assert!(!MethodDef::oneway("a", 4).is_twoway());
        assert!(MethodDef::twoway("b", 4, 8).is_twoway());
    }
}
