//! The object request broker's name service.
//!
//! The broker resolves an object reference to the platform node hosting it —
//! the piece of CORBA machinery the paper keeps ("immediately familiar and
//! intuitive to software developers exposed to mainstream distributed
//! software techniques such as Java RMI or CORBA", §7.2) while stripping the
//! heavyweight parts. A mapping produced by `nw-mapping` is installed here,
//! and proxies consult it to address invocations.

use nw_types::{NodeId, ObjectId};
use std::collections::BTreeMap;
use std::fmt;

/// Error from [`Broker::resolve`] for an unregistered object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveError(pub ObjectId);

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object {} is not registered with the broker", self.0)
    }
}

impl std::error::Error for ResolveError {}

/// Name service mapping objects to the nodes hosting them.
///
/// # Examples
///
/// ```
/// use nw_dsoc::Broker;
/// use nw_types::{NodeId, ObjectId};
///
/// let mut broker = Broker::new();
/// broker.register(ObjectId(0), NodeId(3));
/// assert_eq!(broker.resolve(ObjectId(0))?, NodeId(3));
/// assert!(broker.resolve(ObjectId(1)).is_err());
/// # Ok::<(), nw_dsoc::ResolveError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Broker {
    table: BTreeMap<ObjectId, NodeId>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Registers (or re-registers) an object at a node. Returns the previous
    /// placement if the object moves.
    pub fn register(&mut self, object: ObjectId, node: NodeId) -> Option<NodeId> {
        self.table.insert(object, node)
    }

    /// Installs a whole placement (object `i` → `placement[i]`).
    pub fn install(&mut self, placement: &[NodeId]) {
        for (i, &n) in placement.iter().enumerate() {
            self.table.insert(ObjectId(i), n);
        }
    }

    /// Resolves an object to its hosting node.
    ///
    /// # Errors
    ///
    /// [`ResolveError`] when the object was never registered.
    pub fn resolve(&self, object: ObjectId) -> Result<NodeId, ResolveError> {
        self.table.get(&object).copied().ok_or(ResolveError(object))
    }

    /// Objects hosted on `node`, in ascending id order.
    pub fn objects_on(&self, node: NodeId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .table
            .iter()
            .filter(|&(_, &n)| n == node)
            .map(|(&o, _)| o)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_resolve_move() {
        let mut b = Broker::new();
        assert!(b.is_empty());
        assert_eq!(b.register(ObjectId(1), NodeId(2)), None);
        assert_eq!(b.resolve(ObjectId(1)), Ok(NodeId(2)));
        assert_eq!(b.register(ObjectId(1), NodeId(5)), Some(NodeId(2)));
        assert_eq!(b.resolve(ObjectId(1)), Ok(NodeId(5)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn unregistered_resolve_fails() {
        let b = Broker::new();
        assert_eq!(b.resolve(ObjectId(9)), Err(ResolveError(ObjectId(9))));
    }

    #[test]
    fn install_full_placement() {
        let mut b = Broker::new();
        b.install(&[NodeId(0), NodeId(1), NodeId(0)]);
        assert_eq!(b.objects_on(NodeId(0)), vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(b.objects_on(NodeId(1)), vec![ObjectId(1)]);
        assert_eq!(b.objects_on(NodeId(7)), Vec::<ObjectId>::new());
    }
}
