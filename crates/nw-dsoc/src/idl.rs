//! A small interface-definition language for DSOC applications.
//!
//! §5.2 of the paper bemoans "the proliferation of S/W specification
//! languages" and asks for "some simplification and rationalization" —
//! a single lightweight way to declare distributed objects. This module is
//! that rationalization for the reproduction: a textual IDL that compiles
//! directly to a validated [`Application`].
//!
//! # Grammar
//!
//! ```text
//! app      := { object } { edge | entry }
//! object   := "object" NAME [ "state" BYTES ] "{" { method } "}"
//! method   := ("oneway" | "twoway") NAME "(" BYTES ["->" BYTES] ")"
//!             [ "compute" CYCLES ] [ "local" BYTES ]
//!             [ "domain" ("control"|"signal"|"packet"|"generic") ] ";"
//! edge     := "call" NAME "." NAME "->" NAME "." NAME [ "x" FLOAT ] ";"
//! entry    := "entry" NAME "." NAME ";"
//! ```
//!
//! Comments run from `#` to end of line. Whitespace is free-form.
//!
//! # Examples
//!
//! ```
//! use nw_dsoc::idl::parse_application;
//!
//! let app = parse_application(r#"
//!     object parser { oneway ingest(44) compute 90 domain packet; }
//!     object table state 2048 { twoway lookup(8 -> 8) compute 120; }
//!     object sink   { oneway emit(44) compute 30; }
//!
//!     call parser.ingest -> table.lookup;
//!     call parser.ingest -> sink.emit;
//!     entry parser.ingest;
//! "#)?;
//! assert_eq!(app.objects().len(), 3);
//! assert_eq!(app.edges().len(), 2);
//! # Ok::<(), nw_dsoc::idl::ParseIdlError>(())
//! ```

use crate::app::{Application, BuildAppError, Domain, MethodDef, ObjectDef};
use nw_types::ObjectId;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from [`parse_application`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseIdlError {
    /// Unexpected token (got, expected) at a source line.
    Unexpected {
        /// 1-based line number.
        line: usize,
        /// Token found.
        got: String,
        /// What the parser wanted.
        expected: &'static str,
    },
    /// Input ended mid-construct.
    UnexpectedEnd {
        /// What the parser wanted next.
        expected: &'static str,
    },
    /// A number failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Reference to an undeclared object.
    UnknownObject {
        /// 1-based line number.
        line: usize,
        /// The name used.
        name: String,
    },
    /// Reference to a method the object does not declare.
    UnknownMethod {
        /// 1-based line number.
        line: usize,
        /// `object.method` as written.
        name: String,
    },
    /// Duplicate object name.
    DuplicateObject {
        /// 1-based line number.
        line: usize,
        /// The name declared twice.
        name: String,
    },
    /// Structurally parsed but semantically invalid (cycles, no entry…).
    Semantic(BuildAppError),
}

impl fmt::Display for ParseIdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseIdlError::Unexpected {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: expected {expected}, got '{got}'")
            }
            ParseIdlError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseIdlError::BadNumber { line, token } => {
                write!(f, "line {line}: '{token}' is not a number")
            }
            ParseIdlError::UnknownObject { line, name } => {
                write!(f, "line {line}: unknown object '{name}'")
            }
            ParseIdlError::UnknownMethod { line, name } => {
                write!(f, "line {line}: unknown method '{name}'")
            }
            ParseIdlError::DuplicateObject { line, name } => {
                write!(f, "line {line}: object '{name}' declared twice")
            }
            ParseIdlError::Semantic(e) => write!(f, "invalid application: {e}"),
        }
    }
}

impl std::error::Error for ParseIdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseIdlError::Semantic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildAppError> for ParseIdlError {
    fn from(e: BuildAppError) -> Self {
        ParseIdlError::Semantic(e)
    }
}

#[derive(Debug, Clone)]
struct Token {
    text: String,
    line: usize,
}

/// Splits source into tokens; punctuation characters are their own tokens.
fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (ln, raw_line) in src.lines().enumerate() {
        let line = ln + 1;
        let code = raw_line.split('#').next().unwrap_or("");
        let mut cur = String::new();
        let flush = |cur: &mut String, out: &mut Vec<Token>| {
            if !cur.is_empty() {
                out.push(Token {
                    text: std::mem::take(cur),
                    line,
                });
            }
        };
        let mut chars = code.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                c if c.is_whitespace() => flush(&mut cur, &mut out),
                // A dot between digits is a decimal point, not punctuation.
                '.' if !cur.is_empty()
                    && cur.chars().all(|c| c.is_ascii_digit())
                    && chars.peek().is_some_and(|c| c.is_ascii_digit()) =>
                {
                    cur.push('.');
                }
                '{' | '}' | '(' | ')' | ';' | '.' => {
                    flush(&mut cur, &mut out);
                    out.push(Token {
                        text: c.to_string(),
                        line,
                    });
                }
                '-' if chars.peek() == Some(&'>') => {
                    chars.next();
                    flush(&mut cur, &mut out);
                    out.push(Token {
                        text: "->".to_string(),
                        line,
                    });
                }
                _ => cur.push(c),
            }
        }
        flush(&mut cur, &mut out);
    }
    out
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &'static str) -> Result<Token, ParseIdlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseIdlError::UnexpectedEnd { expected })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, what: &'static str) -> Result<Token, ParseIdlError> {
        let t = self.next(what)?;
        if t.text == what {
            Ok(t)
        } else {
            Err(ParseIdlError::Unexpected {
                line: t.line,
                got: t.text,
                expected: what,
            })
        }
    }

    fn number<T: std::str::FromStr>(&mut self, expected: &'static str) -> Result<T, ParseIdlError> {
        let t = self.next(expected)?;
        t.text.parse().map_err(|_| ParseIdlError::BadNumber {
            line: t.line,
            token: t.text,
        })
    }

    fn ident(&mut self, expected: &'static str) -> Result<Token, ParseIdlError> {
        let t = self.next(expected)?;
        let ok = !t.text.is_empty()
            && t.text
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
        if ok {
            Ok(t)
        } else {
            Err(ParseIdlError::Unexpected {
                line: t.line,
                got: t.text,
                expected,
            })
        }
    }
}

/// Parses IDL source into a validated [`Application`].
///
/// # Errors
///
/// [`ParseIdlError`] for lexical/syntactic problems, unknown references,
/// or (via [`BuildAppError`]) semantic violations such as call-graph
/// cycles or a missing entry point.
pub fn parse_application(src: &str) -> Result<Application, ParseIdlError> {
    let mut p = Parser {
        tokens: tokenize(src),
        pos: 0,
    };
    let mut builder = Application::builder("idl");
    let mut objects: BTreeMap<String, (ObjectId, BTreeMap<String, u16>)> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();

    // Pass 1 constructs objects eagerly and records edges/entries to
    // resolve as they appear (objects must be declared before use).
    while let Some(t) = p.peek().cloned() {
        match t.text.as_str() {
            "object" => {
                p.next("object")?;
                let name_t = p.ident("object name")?;
                let name = name_t.text.clone();
                if objects.contains_key(&name) {
                    return Err(ParseIdlError::DuplicateObject {
                        line: name_t.line,
                        name,
                    });
                }
                let mut def = ObjectDef::new(&name);
                if p.peek().is_some_and(|t| t.text == "state") {
                    p.next("state")?;
                    let bytes: u64 = p.number("state bytes")?;
                    def = def.with_state_bytes(bytes);
                }
                p.expect("{")?;
                let mut methods = BTreeMap::new();
                loop {
                    let t = p.next("method or '}'")?;
                    match t.text.as_str() {
                        "}" => break,
                        kw @ ("oneway" | "twoway") => {
                            let mname = p.ident("method name")?.text;
                            p.expect("(")?;
                            let arg: u64 = p.number("argument bytes")?;
                            let mut reply = 0u64;
                            let nxt = p.next("')' or '->'")?;
                            match nxt.text.as_str() {
                                ")" => {}
                                "->" => {
                                    reply = p.number("reply bytes")?;
                                    p.expect(")")?;
                                }
                                other => {
                                    return Err(ParseIdlError::Unexpected {
                                        line: nxt.line,
                                        got: other.to_string(),
                                        expected: "')' or '->'",
                                    })
                                }
                            }
                            if kw == "twoway" && reply == 0 {
                                reply = 1; // twoway always replies
                            }
                            let mut m = if reply > 0 {
                                MethodDef::twoway(&mname, arg, reply)
                            } else {
                                MethodDef::oneway(&mname, arg)
                            };
                            // Optional attributes until ';'.
                            loop {
                                let a = p.next("attribute or ';'")?;
                                match a.text.as_str() {
                                    ";" => break,
                                    "compute" => {
                                        let c: u64 = p.number("compute cycles")?;
                                        m = m.with_compute(c);
                                    }
                                    "local" => {
                                        let b: u64 = p.number("local bytes")?;
                                        m = m.with_local_bytes(b);
                                    }
                                    "domain" => {
                                        let d = p.ident("domain name")?;
                                        let dom = match d.text.as_str() {
                                            "control" => Domain::Control,
                                            "signal" => Domain::Signal,
                                            "packet" => Domain::PacketHeader,
                                            "generic" => Domain::Generic,
                                            other => {
                                                return Err(ParseIdlError::Unexpected {
                                                    line: d.line,
                                                    got: other.to_string(),
                                                    expected: "control|signal|packet|generic",
                                                })
                                            }
                                        };
                                        m = m.with_domain(dom);
                                    }
                                    other => {
                                        return Err(ParseIdlError::Unexpected {
                                            line: a.line,
                                            got: other.to_string(),
                                            expected: "compute|local|domain|';'",
                                        })
                                    }
                                }
                            }
                            let idx = u16::try_from(def.methods.len())
                                .expect("method count fits the u16 wire field");
                            methods.insert(mname.clone(), idx);
                            def = def.with_method(m);
                        }
                        other => {
                            return Err(ParseIdlError::Unexpected {
                                line: t.line,
                                got: other.to_string(),
                                expected: "'oneway', 'twoway' or '}'",
                            })
                        }
                    }
                }
                let id = builder.add_object(def);
                objects.insert(name.clone(), (id, methods));
                order.push(name);
            }
            "call" => {
                p.next("call")?;
                let (from, from_m) = parse_ref(&mut p, &objects)?;
                p.expect("->")?;
                let (to, to_m) = parse_ref(&mut p, &objects)?;
                let mult = if p.peek().is_some_and(|t| t.text == "x") {
                    p.next("x")?;
                    p.number::<f64>("multiplicity")?
                } else {
                    1.0
                };
                p.expect(";")?;
                builder.connect(from, from_m, to, to_m, mult);
            }
            "entry" => {
                p.next("entry")?;
                let (obj, m) = parse_ref(&mut p, &objects)?;
                p.expect(";")?;
                builder.entry(obj, m);
            }
            other => {
                return Err(ParseIdlError::Unexpected {
                    line: t.line,
                    got: other.to_string(),
                    expected: "'object', 'call' or 'entry'",
                })
            }
        }
    }
    Ok(builder.build()?)
}

/// Parses `object.method` and resolves it.
fn parse_ref(
    p: &mut Parser,
    objects: &BTreeMap<String, (ObjectId, BTreeMap<String, u16>)>,
) -> Result<(ObjectId, u16), ParseIdlError> {
    let obj_t = p.ident("object name")?;
    let (id, methods) = objects
        .get(&obj_t.text)
        .ok_or(ParseIdlError::UnknownObject {
            line: obj_t.line,
            name: obj_t.text.clone(),
        })?;
    p.expect(".")?;
    let m_t = p.ident("method name")?;
    let m = methods.get(&m_t.text).ok_or(ParseIdlError::UnknownMethod {
        line: m_t.line,
        name: format!("{}.{}", obj_t.text, m_t.text),
    })?;
    Ok((*id, *m))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIPELINE: &str = r#"
        # classic three-stage pipeline
        object a { oneway in(40) compute 100 local 32 domain packet; }
        object b state 4096 { twoway look(8 -> 16) compute 60; }
        object c { oneway out(40) compute 30 domain control; }
        call a.in -> b.look;
        call a.in -> c.out;
        entry a.in;
    "#;

    #[test]
    fn parses_the_pipeline() {
        let app = parse_application(PIPELINE).unwrap();
        assert_eq!(app.objects().len(), 3);
        assert_eq!(app.edges().len(), 2);
        assert_eq!(app.entries().len(), 1);
        let a = &app.objects()[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.methods[0].compute_cycles, 100);
        assert_eq!(a.methods[0].local_bytes, 32);
        assert_eq!(a.methods[0].domain, Domain::PacketHeader);
        let b = &app.objects()[1];
        assert_eq!(b.state_bytes, 4096);
        assert!(b.methods[0].is_twoway());
        assert_eq!(b.methods[0].reply_bytes, 16);
    }

    #[test]
    fn multiplicity_attribute() {
        let app = parse_application(
            "object a { oneway m(8); } object b { oneway n(8); } \
             call a.m -> b.n x 2.5; entry a.m;",
        )
        .unwrap();
        assert!((app.edges()[0].calls_per_invocation - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rates_flow_through_parsed_app() {
        let app = parse_application(PIPELINE).unwrap();
        let rates = app.invocation_rates(&[0.01]);
        assert!((rates[1][0] - 0.01).abs() < 1e-12);
        assert!((rates[2][0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn unknown_object_reported_with_line() {
        let err = parse_application("object a { oneway m(8); }\ncall a.m -> ghost.x;\nentry a.m;")
            .unwrap_err();
        assert_eq!(
            err,
            ParseIdlError::UnknownObject {
                line: 2,
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn unknown_method_reported() {
        let err = parse_application(
            "object a { oneway m(8); } object b { oneway n(8); } call a.zz -> b.n; entry a.m;",
        )
        .unwrap_err();
        assert!(matches!(err, ParseIdlError::UnknownMethod { .. }));
    }

    #[test]
    fn duplicate_object_rejected() {
        let err =
            parse_application("object a { oneway m(8); } object a { oneway m(8); }").unwrap_err();
        assert!(matches!(err, ParseIdlError::DuplicateObject { .. }));
    }

    #[test]
    fn syntax_errors_carry_position() {
        let err = parse_application("object a { banana }").unwrap_err();
        match err {
            ParseIdlError::Unexpected { line, got, .. } => {
                assert_eq!(line, 1);
                assert_eq!(got, "banana");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn semantic_errors_propagate() {
        // No entry point.
        let err = parse_application("object a { oneway m(8); }").unwrap_err();
        assert_eq!(err, ParseIdlError::Semantic(BuildAppError::NoEntryPoint));
        // Cycle.
        let err = parse_application(
            "object a { oneway m(8); } object b { oneway n(8); } \
             call a.m -> b.n; call b.n -> a.m; entry a.m;",
        )
        .unwrap_err();
        assert_eq!(err, ParseIdlError::Semantic(BuildAppError::CyclicCallGraph));
    }

    #[test]
    fn comments_and_whitespace_are_free() {
        let app = parse_application("# header\nobject a{oneway m(8);}# trailing\n\n   entry a.m ;")
            .unwrap();
        assert_eq!(app.objects().len(), 1);
    }

    #[test]
    fn empty_input_fails_cleanly() {
        assert_eq!(
            parse_application("").unwrap_err(),
            ParseIdlError::Semantic(BuildAppError::NoEntryPoint)
        );
    }

    #[test]
    fn twoway_without_reply_size_defaults_to_one() {
        let app = parse_application("object a { twoway m(8); } entry a.m;").unwrap();
        assert!(app.objects()[0].methods[0].is_twoway());
    }
}
