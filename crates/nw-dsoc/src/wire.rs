//! The DSOC on-wire message format.
//!
//! Marshalled invocations and replies are what actually crosses the NoC as
//! packet payload. The format is a fixed 16-byte little-endian header
//! followed by the argument/result bytes:
//!
//! ```text
//! offset  size  field
//! 0       1     kind (1 = invocation, 2 = reply)
//! 1       1     reserved (must be 0)
//! 2       4     object id
//! 6       2     method id
//! 8       4     sequence number (correlates replies with calls)
//! 12      4     body length
//! 16      n     body
//! ```
//!
//! The sequence number is the **invocation tag**: every marshalled request
//! carries a fresh one, and a conforming runtime's reply to a twoway
//! invocation echoes the request's sequence number (rather than drawing a
//! new one), so a request/reply pair correlates on the wire end-to-end —
//! the hook the platform's per-invocation latency telemetry hangs off.

use crate::app::MethodId;
use nw_types::ObjectId;
use std::fmt;

/// Message kind discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A method invocation (request).
    Invocation,
    /// A reply to a twoway invocation.
    Reply,
}

impl MessageKind {
    fn to_byte(self) -> u8 {
        match self {
            MessageKind::Invocation => 1,
            MessageKind::Reply => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(MessageKind::Invocation),
            2 => Some(MessageKind::Reply),
            _ => None,
        }
    }
}

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the fixed header.
    TooShort {
        /// Bytes available.
        have: usize,
    },
    /// Unknown kind byte.
    BadKind(u8),
    /// Reserved byte was not zero.
    BadReserved(u8),
    /// Body length field disagrees with the available bytes.
    LengthMismatch {
        /// Declared body length.
        declared: usize,
        /// Actual trailing bytes.
        actual: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort { have } => {
                write!(f, "message needs at least 16 bytes, got {have}")
            }
            DecodeError::BadKind(b) => write!(f, "unknown message kind {b}"),
            DecodeError::BadReserved(b) => write!(f, "reserved byte must be 0, got {b}"),
            DecodeError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared body length {declared} but {actual} bytes present"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A marshalled DSOC message.
///
/// # Examples
///
/// ```
/// use nw_dsoc::{Message, MessageKind, MethodId};
/// use nw_types::ObjectId;
///
/// let m = Message::invocation(ObjectId(3), MethodId(1), 42, vec![0xAB; 20]);
/// let bytes = m.encode();
/// let back = Message::decode(&bytes)?;
/// assert_eq!(back, m);
/// assert_eq!(back.wire_len(), 36);
/// # Ok::<(), nw_dsoc::DecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Invocation or reply.
    pub kind: MessageKind,
    /// Target (for invocations) or originating (for replies) object.
    pub object: ObjectId,
    /// Target method.
    pub method: MethodId,
    /// Correlation sequence number.
    pub seq: u32,
    /// Marshalled argument or result bytes.
    pub body: Vec<u8>,
}

impl Message {
    /// Fixed header size in bytes.
    pub const HEADER_LEN: usize = 16;

    /// Creates an invocation message.
    pub fn invocation(object: ObjectId, method: MethodId, seq: u32, body: Vec<u8>) -> Self {
        Message {
            kind: MessageKind::Invocation,
            object,
            method,
            seq,
            body,
        }
    }

    /// Creates a reply message.
    pub fn reply(object: ObjectId, method: MethodId, seq: u32, body: Vec<u8>) -> Self {
        Message {
            kind: MessageKind::Reply,
            object,
            method,
            seq,
            body,
        }
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.body.len()
    }

    /// Encodes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded form to `out` — the allocation-reuse variant of
    /// [`Message::encode`] for callers holding a recycled payload buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        out.push(self.kind.to_byte());
        out.push(0);
        let object = u32::try_from(self.object.0).expect("object id fits the u32 wire field");
        out.extend_from_slice(&object.to_le_bytes());
        out.extend_from_slice(&self.method.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        let body_len = u32::try_from(self.body.len()).expect("body fits the u32 length field");
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Appends the encoding of a message whose body is `body_len` zero
    /// bytes directly to `out`, without materializing the body vector.
    ///
    /// Byte-identical to `Message { kind, object, method, seq, body:
    /// vec![0; body_len] }.encode()` — the runtime's marshalled traffic is
    /// all zero-bodied (only sizes are simulated), and this is its path
    /// through the payload arena.
    pub fn encode_zeroed_into(
        kind: MessageKind,
        object: ObjectId,
        method: MethodId,
        seq: u32,
        body_len: usize,
        out: &mut Vec<u8>,
    ) {
        out.reserve(Self::HEADER_LEN + body_len);
        out.push(kind.to_byte());
        out.push(0);
        let object_word = u32::try_from(object.0).expect("object id fits the u32 wire field");
        out.extend_from_slice(&object_word.to_le_bytes());
        out.extend_from_slice(&method.0.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        let body_word = u32::try_from(body_len).expect("body fits the u32 length field");
        out.extend_from_slice(&body_word.to_le_bytes());
        out.resize(out.len() + body_len, 0);
    }

    /// Decodes from bytes.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; any malformed header or length mismatch is
    /// rejected rather than guessed at.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let v = MessageView::decode(bytes)?;
        Ok(Message {
            kind: v.kind,
            object: v.object,
            method: v.method,
            seq: v.seq,
            body: v.body.to_vec(),
        })
    }
}

/// A decoded message borrowing its body from the wire bytes.
///
/// The dispatch hot path only inspects the header fields, so copying the
/// body out (as [`Message::decode`] must, to own it) is wasted work there.
/// Validation is identical to [`Message::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageView<'a> {
    /// Invocation or reply.
    pub kind: MessageKind,
    /// Target (for invocations) or originating (for replies) object.
    pub object: ObjectId,
    /// Target method.
    pub method: MethodId,
    /// Correlation sequence number.
    pub seq: u32,
    /// Marshalled argument or result bytes, borrowed.
    pub body: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// Decodes a message without copying the body.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`] — the same rejections as [`Message::decode`].
    pub fn decode(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        if bytes.len() < Message::HEADER_LEN {
            return Err(DecodeError::TooShort { have: bytes.len() });
        }
        let kind = MessageKind::from_byte(bytes[0]).ok_or(DecodeError::BadKind(bytes[0]))?;
        if bytes[1] != 0 {
            return Err(DecodeError::BadReserved(bytes[1]));
        }
        let object = u32::from_le_bytes(bytes[2..6].try_into().expect("fixed slice"));
        let method = u16::from_le_bytes(bytes[6..8].try_into().expect("fixed slice"));
        let seq = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
        let len = u32::from_le_bytes(bytes[12..16].try_into().expect("fixed slice")) as usize;
        let actual = bytes.len() - Message::HEADER_LEN;
        if len != actual {
            return Err(DecodeError::LengthMismatch {
                declared: len,
                actual,
            });
        }
        Ok(MessageView {
            kind,
            object: ObjectId(object as usize),
            method: MethodId(method),
            seq,
            body: &bytes[Message::HEADER_LEN..],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_body() {
        let m = Message::reply(ObjectId(0), MethodId(0), 0, vec![]);
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.wire_len(), 16);
    }

    #[test]
    fn roundtrip_large_ids() {
        let m = Message::invocation(ObjectId(70_000), MethodId(65_535), u32::MAX, vec![7; 300]);
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(
            Message::decode(&[1, 0, 0]),
            Err(DecodeError::TooShort { have: 3 })
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let mut b = Message::invocation(ObjectId(1), MethodId(1), 1, vec![]).encode();
        b[0] = 9;
        assert_eq!(Message::decode(&b), Err(DecodeError::BadKind(9)));
    }

    #[test]
    fn bad_reserved_rejected() {
        let mut b = Message::invocation(ObjectId(1), MethodId(1), 1, vec![]).encode();
        b[1] = 1;
        assert_eq!(Message::decode(&b), Err(DecodeError::BadReserved(1)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut b = Message::invocation(ObjectId(1), MethodId(1), 1, vec![1, 2, 3]).encode();
        b.pop();
        assert_eq!(
            Message::decode(&b),
            Err(DecodeError::LengthMismatch {
                declared: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn encode_zeroed_into_matches_encode() {
        for len in [0usize, 1, 17, 300] {
            let m = Message::invocation(ObjectId(9), MethodId(3), 77, vec![0u8; len]);
            let mut out = Vec::new();
            Message::encode_zeroed_into(
                MessageKind::Invocation,
                ObjectId(9),
                MethodId(3),
                77,
                len,
                &mut out,
            );
            assert_eq!(out, m.encode());
        }
    }

    #[test]
    fn view_decode_matches_owned_decode() {
        let m = Message::reply(ObjectId(5), MethodId(2), 1234, vec![7, 8, 9]);
        let bytes = m.encode();
        let v = MessageView::decode(&bytes).unwrap();
        assert_eq!(v.kind, m.kind);
        assert_eq!(v.object, m.object);
        assert_eq!(v.method, m.method);
        assert_eq!(v.seq, m.seq);
        assert_eq!(v.body, &m.body[..]);
        // And the same rejections.
        assert_eq!(
            MessageView::decode(&bytes[..10]),
            Err(DecodeError::TooShort { have: 10 })
        );
    }

    #[test]
    fn header_layout_is_stable() {
        let m = Message::invocation(
            ObjectId(0x01020304),
            MethodId(0x0506),
            0x0708090A,
            vec![0xFF],
        );
        let b = m.encode();
        assert_eq!(b[0], 1);
        assert_eq!(&b[2..6], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(&b[6..8], &[0x06, 0x05]);
        assert_eq!(&b[8..12], &[0x0A, 0x09, 0x08, 0x07]);
        assert_eq!(&b[12..16], &[1, 0, 0, 0]);
        assert_eq!(b[16], 0xFF);
    }
}
