//! DSOC — the Distributed System Object Component programming model.
//!
//! §7.2 of the paper: ST's MultiFlex tools are built around "a lightweight
//! Distributed System Object Component (DSOC) programming model inspired by
//! CORBA-like concepts. DSOC objects can be executed on a variety of
//! processors … as well as on hardware or on the eFPGA. Using the DSOC
//! methodology, the application design is largely decoupled from the details
//! of a particular FPPA target mapping."
//!
//! This crate implements the platform-independent half of that stack:
//!
//! * [`app`] — interface/method descriptors, the object graph with typed
//!   call edges, invocation-rate propagation, and validation.
//! * [`wire`] — the binary on-wire format for marshalled invocations and
//!   replies (what actually travels through the NoC as packet payload).
//! * [`broker`] — the object request broker's name service: object
//!   references resolved to platform nodes.
//!
//! The platform-dependent half — synthesizing PE micro-op programs from
//! method descriptors and dispatching invocations onto hardware threads —
//! lives in the `nanowall` core crate; the automatic object-to-PE mapping
//! algorithms live in `nw-mapping`.
//!
//! # Examples
//!
//! ```
//! use nw_dsoc::app::{Application, MethodDef, ObjectDef};
//!
//! let mut b = Application::builder("pipeline");
//! let parse = b.add_object(ObjectDef::new("parser").with_method(
//!     MethodDef::oneway("ingest", 40).with_compute(100),
//! ));
//! let fwd = b.add_object(ObjectDef::new("forwarder").with_method(
//!     MethodDef::oneway("emit", 40).with_compute(50),
//! ));
//! b.connect(parse, 0, fwd, 0, 1.0);
//! b.entry(parse, 0);
//! let app = b.build()?;
//! assert_eq!(app.objects().len(), 2);
//! # Ok::<(), nw_dsoc::app::BuildAppError>(())
//! ```

pub mod app;
pub mod broker;
pub mod idl;
pub mod wire;

pub use app::{Application, BuildAppError, CallEdge, Domain, MethodDef, MethodId, ObjectDef};
pub use broker::{Broker, ResolveError};
pub use idl::{parse_application, ParseIdlError};
pub use wire::{DecodeError, Message, MessageKind, MessageView};
