//! Property tests for the DSOC wire format: roundtrip identity and
//! decoder robustness against arbitrary bytes.

use nw_dsoc::{Message, MessageKind, MethodId};
use nw_types::ObjectId;
use proptest::prelude::*;

proptest! {
    // Pinned effort for CI determinism; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for any message.
    #[test]
    fn roundtrip(
        kind in prop_oneof![Just(MessageKind::Invocation), Just(MessageKind::Reply)],
        object in 0usize..1_000_000,
        method in any::<u16>(),
        seq in any::<u32>(),
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let m = Message { kind, object: ObjectId(object), method: MethodId(method), seq, body };
        let decoded = Message::decode(&m.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, m);
    }

    /// Decoding arbitrary bytes never panics, and any accepted input
    /// re-encodes to exactly the same bytes (no lossy acceptance).
    #[test]
    fn decode_is_total_and_lossless(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(m) = Message::decode(&bytes) {
            prop_assert_eq!(m.encode(), bytes);
        }
    }

    /// Truncating a valid message always fails to decode.
    #[test]
    fn truncation_rejected(
        body in prop::collection::vec(any::<u8>(), 1..64),
        cut in 1usize..16,
    ) {
        let m = Message::invocation(ObjectId(1), MethodId(2), 3, body);
        let enc = m.encode();
        let cut = cut.min(enc.len());
        prop_assert!(Message::decode(&enc[..enc.len() - cut]).is_err());
    }
}
