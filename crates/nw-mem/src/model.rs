//! Memory technology parameters.
//!
//! The absolute numbers are order-of-magnitude values representative of the
//! 0.13 µm generation the paper calls "today" (they are documented so that
//! experiments depending on *ratios* — SRAM vs eDRAM density, on-chip vs
//! off-chip latency — reproduce the paper's qualitative tradeoffs):
//!
//! * SRAM: fastest, largest cell (6T).
//! * eDRAM: ~3× denser than SRAM, several times slower, needs refresh.
//! * eFlash: dense and non-volatile, reads OK, *writes three orders of
//!   magnitude slower* (program/erase).
//! * External DRAM: effectively unlimited capacity, tens of cycles away
//!   across the chip boundary, high I/O energy per byte.

use nw_types::{AreaMm2, Cycles, Picojoules, TechNode};
use std::fmt;

/// The memory technologies of the paper's §3 tradeoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTechnology {
    /// On-chip static RAM (6T cell).
    Sram,
    /// Embedded DRAM.
    Edram,
    /// Embedded Flash (non-volatile; slow writes).
    Eflash,
    /// External (off-chip) DRAM behind an I/O interface.
    ExternalDram,
}

impl MemoryTechnology {
    /// All four technologies.
    pub const ALL: [MemoryTechnology; 4] = [
        MemoryTechnology::Sram,
        MemoryTechnology::Edram,
        MemoryTechnology::Eflash,
        MemoryTechnology::ExternalDram,
    ];
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryTechnology::Sram => "SRAM",
            MemoryTechnology::Edram => "eDRAM",
            MemoryTechnology::Eflash => "eFlash",
            MemoryTechnology::ExternalDram => "ext-DRAM",
        };
        f.write_str(s)
    }
}

/// Timing, energy and area parameters of one memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Technology these parameters describe.
    pub technology: MemoryTechnology,
    /// Random-access read latency.
    pub read_latency: Cycles,
    /// Write (program) latency.
    pub write_latency: Cycles,
    /// Data width the array can stream after the access, bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Read energy per byte.
    pub read_pj_per_byte: Picojoules,
    /// Write energy per byte.
    pub write_pj_per_byte: Picojoules,
    /// Die area per megabit at the 0.13 µm reference node (0 for external).
    pub area_mm2_per_mbit: AreaMm2,
    /// Whether contents survive power-down.
    pub non_volatile: bool,
}

impl MemorySpec {
    /// Reference parameters for a technology at the 0.13 µm node.
    pub fn of(tech: MemoryTechnology) -> MemorySpec {
        match tech {
            MemoryTechnology::Sram => MemorySpec {
                technology: tech,
                read_latency: Cycles(2),
                write_latency: Cycles(2),
                bytes_per_cycle: 8,
                read_pj_per_byte: Picojoules(0.5),
                write_pj_per_byte: Picojoules(0.6),
                area_mm2_per_mbit: AreaMm2(0.90),
                non_volatile: false,
            },
            MemoryTechnology::Edram => MemorySpec {
                technology: tech,
                read_latency: Cycles(8),
                write_latency: Cycles(8),
                bytes_per_cycle: 8,
                read_pj_per_byte: Picojoules(1.0),
                write_pj_per_byte: Picojoules(1.2),
                area_mm2_per_mbit: AreaMm2(0.30),
                non_volatile: false,
            },
            MemoryTechnology::Eflash => MemorySpec {
                technology: tech,
                read_latency: Cycles(12),
                write_latency: Cycles(12_000),
                bytes_per_cycle: 4,
                read_pj_per_byte: Picojoules(2.0),
                write_pj_per_byte: Picojoules(150.0),
                area_mm2_per_mbit: AreaMm2(0.25),
                non_volatile: true,
            },
            MemoryTechnology::ExternalDram => MemorySpec {
                technology: tech,
                read_latency: Cycles(60),
                write_latency: Cycles(60),
                bytes_per_cycle: 4,
                read_pj_per_byte: Picojoules(20.0),
                write_pj_per_byte: Picojoules(20.0),
                area_mm2_per_mbit: AreaMm2::ZERO,
                non_volatile: false,
            },
        }
    }

    /// Same parameters scaled to another technology node: area shrinks with
    /// density; latencies in cycles stay constant (arrays and clocks scale
    /// together to first order).
    pub fn at_node(tech: MemoryTechnology, node: TechNode) -> MemorySpec {
        let mut s = Self::of(tech);
        let shrink = TechNode::N130.density_vs_350() / node.density_vs_350();
        s.area_mm2_per_mbit = s.area_mm2_per_mbit * shrink;
        s
    }

    /// Area of a macro holding `mbits` megabits.
    pub fn macro_area(&self, mbits: f64) -> AreaMm2 {
        self.area_mm2_per_mbit * mbits
    }

    /// Total service time for an access of `bytes` bytes: access latency
    /// plus streaming time.
    pub fn service_time(&self, write: bool, bytes: u64) -> Cycles {
        let base = if write {
            self.write_latency
        } else {
            self.read_latency
        };
        base + Cycles(bytes.div_ceil(self.bytes_per_cycle.max(1)))
    }

    /// Energy of an access of `bytes` bytes.
    pub fn access_energy(&self, write: bool, bytes: u64) -> Picojoules {
        let per = if write {
            self.write_pj_per_byte
        } else {
            self.read_pj_per_byte
        };
        per * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_matches_physics() {
        let s = MemorySpec::of(MemoryTechnology::Sram);
        let e = MemorySpec::of(MemoryTechnology::Edram);
        let f = MemorySpec::of(MemoryTechnology::Eflash);
        let x = MemorySpec::of(MemoryTechnology::ExternalDram);
        assert!(s.read_latency < e.read_latency);
        assert!(e.read_latency < f.read_latency);
        assert!(f.read_latency < x.read_latency);
    }

    #[test]
    fn density_ordering_matches_physics() {
        let s = MemorySpec::of(MemoryTechnology::Sram);
        let e = MemorySpec::of(MemoryTechnology::Edram);
        let f = MemorySpec::of(MemoryTechnology::Eflash);
        assert!(s.area_mm2_per_mbit.0 > e.area_mm2_per_mbit.0);
        assert!(e.area_mm2_per_mbit.0 > f.area_mm2_per_mbit.0);
    }

    #[test]
    fn flash_writes_are_catastrophically_slow() {
        let f = MemorySpec::of(MemoryTechnology::Eflash);
        assert!(f.write_latency.0 >= 1000 * f.read_latency.0);
        assert!(f.non_volatile);
    }

    #[test]
    fn service_time_includes_streaming() {
        let s = MemorySpec::of(MemoryTechnology::Sram);
        // 2-cycle access + 64/8 = 8 cycles of streaming.
        assert_eq!(s.service_time(false, 64), Cycles(10));
        assert_eq!(s.service_time(false, 0), Cycles(2));
        assert_eq!(s.service_time(false, 1), Cycles(3));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let s = MemorySpec::of(MemoryTechnology::Sram);
        let e64 = s.access_energy(false, 64);
        let e128 = s.access_energy(false, 128);
        assert!((e128.0 - 2.0 * e64.0).abs() < 1e-9);
        assert!(s.access_energy(true, 64).0 > e64.0);
    }

    #[test]
    fn node_scaling_shrinks_area() {
        let at130 = MemorySpec::at_node(MemoryTechnology::Sram, TechNode::N130);
        let at65 = MemorySpec::at_node(MemoryTechnology::Sram, TechNode::N65);
        assert!((at130.area_mm2_per_mbit.0 / at65.area_mm2_per_mbit.0 - 4.0).abs() < 1e-9);
        assert_eq!(at130.read_latency, at65.read_latency);
    }

    #[test]
    fn macro_area() {
        let s = MemorySpec::of(MemoryTechnology::Sram);
        assert!((s.macro_area(2.0).0 - 1.8).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryTechnology::Edram.to_string(), "eDRAM");
        assert_eq!(MemoryTechnology::ALL.len(), 4);
    }
}
