//! Embedded memory subsystem models.
//!
//! The paper names "embedded memory architecture tradeoffs (embedded SRAM,
//! eDRAM and eFlash, vs. external memories)" as one of the two main design
//! issues of multi-level SoC design (§3), and §8 describes an embeddable
//! Flash subsystem for code, data and eFPGA bitstreams. This crate models
//! the four memory technologies with early-2000s timing/energy/area
//! parameters and provides a banked, cycle-stepped [`MemoryController`]
//! that platform nodes attach to the NoC.
//!
//! # Examples
//!
//! ```
//! use nw_mem::{MemoryTechnology, MemorySpec};
//!
//! let sram = MemorySpec::of(MemoryTechnology::Sram);
//! let edram = MemorySpec::of(MemoryTechnology::Edram);
//! // SRAM is faster, eDRAM is denser — the §3 tradeoff.
//! assert!(sram.read_latency < edram.read_latency);
//! assert!(sram.area_mm2_per_mbit.0 > edram.area_mm2_per_mbit.0);
//! ```

pub mod cache;
pub mod controller;
pub mod model;

pub use cache::{Access, Cache, CacheConfig};
pub use controller::{MemRequest, MemResponse, MemoryController, ReqKind, SubmitError};
pub use model::{MemorySpec, MemoryTechnology};
