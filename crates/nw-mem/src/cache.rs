//! A set-associative cache model.
//!
//! The paper's §3 names "embedded memory architecture tradeoffs" a main
//! design issue; caches are the other half of that tradeoff space next to
//! the scratchpads the PEs use by default. This model is behavioural
//! (hit/miss accounting with LRU replacement over real address streams) —
//! enough to study miss rates and the energy split between a small fast
//! array and its larger backing store.

use crate::model::MemorySpec;
use nw_types::{Cycles, Picojoules};

/// Configuration of a cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// A 16 KiB, 32-byte-line, 4-way cache (a typical 0.13 µm L1).
    pub fn l1_16k() -> Self {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Served from the cache.
    Hit,
    /// Line fetched from the backing store (possibly evicting).
    Miss {
        /// Whether a dirty line was written back.
        writeback: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recent.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement, fronting a [`MemorySpec`]-characterized backing store.
///
/// # Examples
///
/// ```
/// use nw_mem::{Cache, CacheConfig, MemorySpec, MemoryTechnology};
///
/// let backing = MemorySpec::of(MemoryTechnology::Edram);
/// let mut c = Cache::new(CacheConfig::l1_16k(), backing);
/// c.access(0x1000, false); // cold miss
/// c.access(0x1000, false); // hit
/// assert_eq!(c.hits(), 1);
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    backing: MemorySpec,
    lines: Vec<Line>,
    stamp: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    energy: Picojoules,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero lines, non-power-of-
    /// two line size, or capacity not divisible into sets).
    pub fn new(cfg: CacheConfig, backing: MemorySpec) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        assert!(
            cfg.capacity_bytes
                .is_multiple_of(cfg.line_bytes * cfg.ways as u64),
            "capacity must divide into sets"
        );
        let sets = cfg.sets();
        assert!(sets >= 1, "cache needs at least one set");
        Cache {
            cfg,
            backing,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                (sets as usize) * cfg.ways
            ],
            stamp: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            energy: Picojoules::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) % self.cfg.sets()) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets()
    }

    /// Performs one access; returns hit/miss and updates statistics.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.stamp += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        // Array access energy: ~SRAM read of one line's worth of bits.
        self.energy += Picojoules(0.3) * self.cfg.line_bytes as f64 * 0.25;

        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.stamp;
            if write {
                l.dirty = true;
            }
            self.hits += 1;
            return Access::Hit;
        }

        // Miss: fetch the line, evicting LRU.
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.writebacks += 1;
            self.energy += self.backing.access_energy(true, self.cfg.line_bytes);
        }
        self.energy += self.backing.access_energy(false, self.cfg.line_bytes);
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.stamp,
        };
        Access::Miss { writeback }
    }

    /// Service time of an access given its outcome: hit = 1 cycle; miss =
    /// backing-store line fetch (+ writeback if needed).
    pub fn service_time(&self, outcome: Access) -> Cycles {
        match outcome {
            Access::Hit => Cycles(1),
            Access::Miss { writeback } => {
                let fetch = self.backing.service_time(false, self.cfg.line_bytes);
                if writeback {
                    fetch + self.backing.service_time(true, self.cfg.line_bytes)
                } else {
                    fetch
                }
            }
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty-line writebacks so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate in [0, 1]; 0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total energy including backing-store traffic.
    pub fn energy(&self) -> Picojoules {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryTechnology;

    fn cache() -> Cache {
        Cache::new(
            CacheConfig::l1_16k(),
            MemorySpec::of(MemoryTechnology::Edram),
        )
    }

    #[test]
    fn cold_then_hot() {
        let mut c = cache();
        assert_eq!(c.access(0x100, false), Access::Miss { writeback: false });
        assert_eq!(c.access(0x100, false), Access::Hit);
        assert_eq!(c.access(0x104, false), Access::Hit, "same line");
        assert_eq!(
            c.access(0x100 + 32, false),
            Access::Miss { writeback: false },
            "next line"
        );
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        // 4-way set: fill 4 tags, touch the first, insert a 5th — the
        // second (now LRU) must be evicted.
        let mut c = cache();
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        let stride = sets * line; // same set, different tag
        for k in 0..4u64 {
            c.access(k * stride, false);
        }
        c.access(0, false); // refresh tag 0
        c.access(4 * stride, false); // evicts tag 1
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(stride, false), Access::Miss { writeback: false });
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = cache();
        let stride = c.config().sets() * c.config().line_bytes;
        c.access(0, true); // dirty line
        for k in 1..=4u64 {
            c.access(k * stride, false); // force eviction of tag 0
        }
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn sequential_scan_hit_rate_matches_line_size() {
        // Byte-sequential scan: 1 miss per 32-byte line.
        let mut c = cache();
        for addr in 0..4096u64 {
            c.access(addr, false);
        }
        let expect = 1.0 - 1.0 / 32.0;
        assert!((c.hit_rate() - expect).abs() < 0.01, "{}", c.hit_rate());
    }

    #[test]
    fn miss_costs_more_time_and_energy_than_hit() {
        let mut c = cache();
        let miss = c.access(0, false);
        let hit = c.access(0, false);
        assert!(c.service_time(miss) > c.service_time(hit));
        let e1 = c.energy();
        c.access(0, false);
        let hit_energy = c.energy() - e1;
        assert!(hit_energy.0 < c.backing.access_energy(false, 32).0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            ways: 1,
        };
        let mut c = Cache::new(cfg, MemorySpec::of(MemoryTechnology::Edram));
        let stride = cfg.sets() * cfg.line_bytes;
        // Two addresses mapping to the same set thrash a direct-mapped cache.
        for _ in 0..10 {
            c.access(0, false);
            c.access(stride, false);
        }
        assert_eq!(c.hits(), 0, "ping-pong conflict misses");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 33,
            ways: 1,
        };
        let _ = Cache::new(cfg, MemorySpec::of(MemoryTechnology::Sram));
    }
}
