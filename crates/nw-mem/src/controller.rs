//! Banked, cycle-stepped memory controller.
//!
//! The controller fronts one memory macro (of any [`MemoryTechnology`]) with
//! `n_banks` independently busy banks interleaved on the address. Requests
//! queue per bank; a bank serves one request at a time for the technology's
//! service time. Completions surface through [`MemoryController::take_response`]
//! so a platform component can forward them over the NoC.
//!
//! [`MemoryTechnology`]: crate::model::MemoryTechnology

use crate::model::MemorySpec;
use nw_sim::{Clocked, Counter, EventQueue, Histogram};
use nw_types::{Cycles, Picojoules};
use std::collections::VecDeque;
use std::fmt;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read `bytes` bytes.
    Read,
    /// Write `bytes` bytes.
    Write,
}

/// A memory request submitted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller correlation id (echoed in the response).
    pub id: u64,
    /// Access kind.
    pub kind: ReqKind,
    /// Byte address (used only for bank selection).
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u64,
}

/// A completed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Correlation id from the request.
    pub id: u64,
    /// Access kind.
    pub kind: ReqKind,
    /// Access size in bytes.
    pub bytes: u64,
    /// Cycle at which the access completed.
    pub completed_at: Cycles,
}

/// Why a request was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target bank's queue is full; retry later (back-pressure).
    QueueFull {
        /// Bank whose queue was full.
        bank: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { bank } => write!(f, "memory bank {bank} queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug, Clone)]
struct Bank {
    queue: VecDeque<MemRequest>,
    busy_until: u64,
}

/// A banked memory controller for one memory macro.
///
/// # Examples
///
/// ```
/// use nw_mem::{MemoryController, MemorySpec, MemoryTechnology, MemRequest, ReqKind};
/// use nw_sim::Clocked;
/// use nw_types::Cycles;
///
/// let spec = MemorySpec::of(MemoryTechnology::Sram);
/// let mut ctl = MemoryController::new(spec, 4, 8);
/// ctl.submit(MemRequest { id: 1, kind: ReqKind::Read, addr: 0x40, bytes: 16 }, Cycles(0))
///     .unwrap();
/// let mut now = Cycles(0);
/// let resp = loop {
///     ctl.tick(now);
///     if let Some(r) = ctl.take_response() { break r; }
///     now += Cycles(1);
///     assert!(now.0 < 100);
/// };
/// assert_eq!(resp.id, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    spec: MemorySpec,
    banks: Vec<Bank>,
    queue_capacity: usize,
    interleave: u64,
    completions: EventQueue<MemResponse>,
    ready: VecDeque<MemResponse>,
    energy: Picojoules,
    served: Counter,
    latency: Histogram,
    pending: VecDeque<(u64, Cycles)>, // (request id, submit time) for latency
}

impl MemoryController {
    /// Cache-line-sized bank interleave in bytes.
    pub const INTERLEAVE: u64 = 64;

    /// Creates a controller with `n_banks` banks and per-bank queue depth
    /// `queue_capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks == 0` or `queue_capacity == 0`.
    pub fn new(spec: MemorySpec, n_banks: usize, queue_capacity: usize) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        assert!(queue_capacity > 0, "need queue capacity");
        MemoryController {
            spec,
            banks: (0..n_banks)
                .map(|_| Bank {
                    queue: VecDeque::new(),
                    busy_until: 0,
                })
                .collect(),
            queue_capacity,
            interleave: Self::INTERLEAVE,
            completions: EventQueue::new(),
            ready: VecDeque::new(),
            energy: Picojoules::ZERO,
            served: Counter::new(),
            latency: Histogram::new(),
            pending: VecDeque::new(),
        }
    }

    /// The memory technology parameters in use.
    pub fn spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// Bank index serving an address.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.banks.len() as u64) as usize
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the target bank queue is at capacity.
    pub fn submit(&mut self, req: MemRequest, now: Cycles) -> Result<(), SubmitError> {
        let bank = self.bank_of(req.addr);
        if self.banks[bank].queue.len() >= self.queue_capacity {
            return Err(SubmitError::QueueFull { bank });
        }
        self.pending.push_back((req.id, now));
        self.banks[bank].queue.push_back(req);
        Ok(())
    }

    /// Takes the next completed response, if any.
    pub fn take_response(&mut self) -> Option<MemResponse> {
        self.ready.pop_front()
    }

    /// Total energy consumed by served accesses.
    pub fn energy(&self) -> Picojoules {
        self.energy
    }

    /// Number of accesses served.
    pub fn served(&self) -> u64 {
        self.served.count()
    }

    /// Distribution of request latency (submit to completion).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Whether all queues are empty and no access is in flight.
    pub fn is_idle(&self) -> bool {
        self.completions.is_empty()
            && self.ready.is_empty()
            && self.banks.iter().all(|b| b.queue.is_empty())
    }

    /// The earliest cycle `>= now` at which ticking the controller can
    /// change state, or `None` when it is fully drained. Conservative:
    /// queued bank work or surfaced responses answer `now`, in-flight
    /// accesses answer their completion time.
    pub fn next_event_cycle(&self, now: Cycles) -> Option<Cycles> {
        if !self.ready.is_empty() || self.banks.iter().any(|b| !b.queue.is_empty()) {
            return Some(now);
        }
        self.completions.next_due().map(|d| d.max(now))
    }
}

impl Clocked for MemoryController {
    fn tick(&mut self, now: Cycles) {
        // Surface matured completions.
        while let Some(r) = self.completions.pop_due(now) {
            // Latency bookkeeping: find the submit time recorded for this id.
            if let Some(pos) = self.pending.iter().position(|&(id, _)| id == r.id) {
                let (_, at) = self.pending.remove(pos).expect("position just found");
                self.latency.record(now.saturating_sub(at));
            }
            self.served.incr();
            self.ready.push_back(r);
        }
        // Start new accesses on idle banks.
        for b in &mut self.banks {
            if b.busy_until <= now.0 {
                if let Some(req) = b.queue.pop_front() {
                    let write = req.kind == ReqKind::Write;
                    let service = self.spec.service_time(write, req.bytes);
                    b.busy_until = now.0 + service.0;
                    self.energy += self.spec.access_energy(write, req.bytes);
                    self.completions.schedule(
                        Cycles(now.0 + service.0),
                        MemResponse {
                            id: req.id,
                            kind: req.kind,
                            bytes: req.bytes,
                            completed_at: Cycles(now.0 + service.0),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemoryTechnology;

    fn sram(banks: usize) -> MemoryController {
        MemoryController::new(MemorySpec::of(MemoryTechnology::Sram), banks, 8)
    }

    fn run_until(ctl: &mut MemoryController, n: usize, limit: u64) -> Vec<MemResponse> {
        let mut out = Vec::new();
        let mut now = Cycles(0);
        while out.len() < n {
            ctl.tick(now);
            while let Some(r) = ctl.take_response() {
                out.push(r);
            }
            now += Cycles(1);
            assert!(now.0 < limit, "responses missing after {limit} cycles");
        }
        out
    }

    #[test]
    fn single_read_completes_with_correct_timing() {
        let mut ctl = sram(1);
        ctl.submit(
            MemRequest {
                id: 7,
                kind: ReqKind::Read,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        let rs = run_until(&mut ctl, 1, 100);
        assert_eq!(rs[0].id, 7);
        // SRAM 64B read = 2 + 8 = 10 cycles.
        assert_eq!(rs[0].completed_at, Cycles(10));
        assert!(ctl.is_idle());
        assert_eq!(ctl.served(), 1);
    }

    #[test]
    fn same_bank_serializes_different_banks_overlap() {
        // Two 64-byte reads to the same bank take ~2x one read.
        let mut same = sram(4);
        same.submit(
            MemRequest {
                id: 1,
                kind: ReqKind::Read,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        same.submit(
            MemRequest {
                id: 2,
                kind: ReqKind::Read,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        let t_same = run_until(&mut same, 2, 200).last().unwrap().completed_at;

        let mut diff = sram(4);
        diff.submit(
            MemRequest {
                id: 1,
                kind: ReqKind::Read,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        diff.submit(
            MemRequest {
                id: 2,
                kind: ReqKind::Read,
                addr: MemoryController::INTERLEAVE,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        let t_diff = run_until(&mut diff, 2, 200).last().unwrap().completed_at;
        assert!(
            t_same.0 > t_diff.0,
            "bank conflict {t_same} must be slower than parallel banks {t_diff}"
        );
    }

    #[test]
    fn queue_full_backpressure() {
        let mut ctl = MemoryController::new(MemorySpec::of(MemoryTechnology::Sram), 1, 2);
        for id in 0..2 {
            ctl.submit(
                MemRequest {
                    id,
                    kind: ReqKind::Read,
                    addr: 0,
                    bytes: 8,
                },
                Cycles(0),
            )
            .unwrap();
        }
        let err = ctl
            .submit(
                MemRequest {
                    id: 9,
                    kind: ReqKind::Read,
                    addr: 0,
                    bytes: 8,
                },
                Cycles(0),
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { bank: 0 });
    }

    #[test]
    fn energy_accumulates_and_writes_cost_more() {
        let mut ctl = sram(1);
        ctl.submit(
            MemRequest {
                id: 1,
                kind: ReqKind::Read,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        run_until(&mut ctl, 1, 100);
        let e_read = ctl.energy();
        ctl.submit(
            MemRequest {
                id: 2,
                kind: ReqKind::Write,
                addr: 0,
                bytes: 64,
            },
            Cycles(0),
        )
        .unwrap();
        let mut now = Cycles(100);
        while ctl.take_response().is_none() {
            ctl.tick(now);
            now += Cycles(1);
        }
        assert!(ctl.energy().0 > 2.0 * e_read.0 - e_read.0 * 0.5);
    }

    #[test]
    fn bank_mapping_interleaves() {
        let ctl = sram(4);
        assert_eq!(ctl.bank_of(0), 0);
        assert_eq!(ctl.bank_of(64), 1);
        assert_eq!(ctl.bank_of(128), 2);
        assert_eq!(ctl.bank_of(256), 0);
    }

    #[test]
    fn latency_histogram_records() {
        let mut ctl = sram(2);
        for id in 0..4 {
            ctl.submit(
                MemRequest {
                    id,
                    kind: ReqKind::Read,
                    addr: id * 64,
                    bytes: 32,
                },
                Cycles(0),
            )
            .unwrap();
        }
        run_until(&mut ctl, 4, 500);
        assert_eq!(ctl.latency().count(), 4);
        assert!(ctl.latency().mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one bank")]
    fn zero_banks_panics() {
        let _ = MemoryController::new(MemorySpec::of(MemoryTechnology::Sram), 0, 1);
    }
}
