//! Post-run platform reports.

use crate::platform::FppaPlatform;
use crate::resilience::ResilienceStats;
use nw_noc::NocStats;
use nw_types::{Cycles, Picojoules};

/// End-to-end invocation-latency summary of one application object.
///
/// Samples are synchronous round trips measured request-issue →
/// reply-delivery and attributed to the object: the service-node offload
/// calls its handler performs (see [`FppaPlatform::bind_service`]) and the
/// twoway invocations it answers. Percentiles come from the object's
/// fixed-bucket log-scale [`nw_sim::LatencyHistogram`] (≤ 6.25% above the
/// true order statistic); `max` and `mean` are exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectLatency {
    /// Round trips recorded.
    pub count: u64,
    /// Median end-to-end latency.
    pub p50: Cycles,
    /// 95th-percentile latency.
    pub p95: Cycles,
    /// 99th-percentile latency.
    pub p99: Cycles,
    /// Worst observed latency (exact).
    pub max: Cycles,
    /// Mean latency in cycles (exact).
    pub mean: f64,
    /// The object's deadline budget, if one was set
    /// ([`FppaPlatform::set_latency_deadline`]).
    pub deadline: Option<u64>,
    /// Recorded round trips that exceeded the deadline budget.
    pub deadline_misses: u64,
}

impl ObjectLatency {
    /// Fraction of recorded round trips that missed the deadline
    /// (0.0 without samples or without a deadline).
    pub fn miss_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.count as f64
        }
    }
}

/// Per-I/O-channel figures.
#[derive(Debug, Clone, PartialEq)]
pub struct IoReport {
    /// Packets the wire delivered (including dropped ones).
    pub generated: u64,
    /// Packets dropped at the RX FIFO (processing fell behind).
    pub dropped: u64,
    /// Packets transmitted on egress.
    pub transmitted: u64,
}

/// Summary of one platform run.
///
/// Collected by [`FppaPlatform::run`] / [`FppaPlatform::report`].
///
/// `PartialEq` compares every field exactly (f64s bit-for-bit via `==`), so
/// the scheduler differential tests can assert two runs are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Cycles covered by the report.
    pub cycles: Cycles,
    /// Core clock at the configured node.
    pub clock_hz: f64,
    /// Tasks (invocations) run to completion across all PEs.
    pub tasks_completed: u64,
    /// Core utilization per PE (fraction of cycles issuing).
    pub pe_utilization: Vec<f64>,
    /// Mean per-thread task occupancy per PE.
    pub thread_occupancy: Vec<f64>,
    /// NoC statistics snapshot.
    pub noc: NocStats,
    /// Per-channel I/O figures.
    pub io: Vec<IoReport>,
    /// Total dynamic energy.
    pub energy: Picojoules,
    /// Invocations still queued at the dispatcher.
    pub queued_invocations: usize,
    /// Invocations dispatched per application object (empty when no
    /// application is installed) — the per-stage throughput input for the
    /// workload rigs.
    pub object_invocations: Vec<u64>,
    /// Per-object end-to-end latency summaries, indexed by object id
    /// (empty when no application is installed). Zero-count entries mean
    /// the object recorded no synchronous round trips in the window.
    pub latency: Vec<ObjectLatency>,
    /// Memory accesses served across all controllers.
    pub mem_accesses: u64,
    /// Items served by eFPGA fabrics.
    pub fabric_served: u64,
    /// Items served by hardwired IP blocks.
    pub hwip_served: u64,
    /// Fault-injection and recovery counters (all zeros when no fault
    /// campaign or retry policy is installed).
    pub resilience: ResilienceStats,
}

impl PlatformReport {
    pub(crate) fn collect(p: &FppaPlatform, cycles: Cycles) -> Self {
        let pe_stats: Vec<_> = p.pes_slice().iter().map(|pe| pe.stats()).collect();
        PlatformReport {
            cycles,
            clock_hz: p.clock_hz(),
            tasks_completed: pe_stats.iter().map(|s| s.tasks_completed).sum(),
            pe_utilization: pe_stats.iter().map(|s| s.core_utilization).collect(),
            thread_occupancy: pe_stats
                .iter()
                .map(|s| {
                    if s.thread_occupancy.is_empty() {
                        0.0
                    } else {
                        s.thread_occupancy.iter().sum::<f64>() / s.thread_occupancy.len() as f64
                    }
                })
                .collect(),
            noc: p.noc_ref().stats(),
            io: p
                .ios_slice()
                .iter()
                .map(|io| IoReport {
                    generated: io.generated(),
                    dropped: io.dropped(),
                    transmitted: io.transmitted(),
                })
                .collect(),
            energy: p.total_energy(),
            queued_invocations: p.runtime().map_or(0, |r| r.queued_invocations()),
            object_invocations: p
                .runtime()
                .map_or_else(Vec::new, |r| r.object_dispatches().to_vec()),
            latency: p
                .object_latency_slice()
                .iter()
                .zip(p.latency_deadlines_slice())
                .zip(p.deadline_misses_slice())
                .map(|((h, &deadline), &deadline_misses)| ObjectLatency {
                    count: h.count(),
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                    max: h.max().unwrap_or(Cycles::ZERO),
                    mean: h.mean(),
                    deadline,
                    deadline_misses,
                })
                .collect(),
            mem_accesses: p.mems_slice().iter().map(|m| m.served()).sum(),
            fabric_served: p.fabrics_slice().iter().map(|f| f.served()).sum(),
            hwip_served: p.hwips_slice().iter().map(|h| h.served()).sum(),
            resilience: p.resilience_stats(),
        }
    }

    /// Mean core utilization across PEs.
    pub fn mean_pe_utilization(&self) -> f64 {
        if self.pe_utilization.is_empty() {
            0.0
        } else {
            self.pe_utilization.iter().sum::<f64>() / self.pe_utilization.len() as f64
        }
    }

    /// Completed tasks per cycle.
    pub fn tasks_per_cycle(&self) -> f64 {
        if self.cycles == Cycles::ZERO {
            0.0
        } else {
            self.tasks_completed as f64 / self.cycles.0 as f64
        }
    }

    /// Egress packet rate of channel `io` in packets per second.
    pub fn egress_pps(&self, io: usize) -> f64 {
        if self.cycles == Cycles::ZERO || io >= self.io.len() {
            return 0.0;
        }
        self.io[io].transmitted as f64 / self.cycles.to_seconds(self.clock_hz)
    }

    /// Fraction of line-rate packets that survived (not dropped) on channel
    /// `io`; 1.0 when nothing was generated.
    pub fn io_delivery_ratio(&self, io: usize) -> f64 {
        match self.io.get(io) {
            Some(r) if r.generated > 0 => 1.0 - r.dropped as f64 / r.generated as f64,
            _ => 1.0,
        }
    }

    /// Invocation rate of one application object in items per cycle
    /// (0.0 without an installed application or over an empty window).
    pub fn object_rate(&self, object: usize) -> f64 {
        if self.cycles == Cycles::ZERO {
            return 0.0;
        }
        self.object_invocations
            .get(object)
            .map_or(0.0, |&n| n as f64 / self.cycles.0 as f64)
    }

    /// Invocation rate of one application object in items per second.
    pub fn object_rate_per_sec(&self, object: usize) -> f64 {
        self.object_rate(object) * self.clock_hz
    }

    /// The latency summary of one application object, or `None` when no
    /// application is installed or the id is out of range.
    pub fn object_latency(&self, object: usize) -> Option<&ObjectLatency> {
        self.latency.get(object)
    }

    /// Total dynamic energy per item transmitted on channel `io` — the
    /// energy-per-frame / energy-per-payload figure of the workload rigs.
    /// `None` when nothing was transmitted.
    pub fn energy_per_transmitted(&self, io: usize) -> Option<Picojoules> {
        match self.io.get(io) {
            Some(r) if r.transmitted > 0 => Some(Picojoules(self.energy.0 / r.transmitted as f64)),
            _ => None,
        }
    }
}
