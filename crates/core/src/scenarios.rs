//! Prebuilt experiment rigs for the paper's scenarios.
//!
//! These functions assemble the platforms the experiments and examples run
//! on, so benches, tests and examples share one definition of each rig:
//!
//! * [`latency_hiding`] — the F6 rig: one multithreaded PE calling a remote
//!   service across a configurable-latency link; reports core utilization.
//! * [`ipv4_rig`] — the T3/T6 rig: the §7.2 scenario, an IPv4 fast path on
//!   a many-PE FPPA fed by a 10 Gb/s worst-case line.
//! * [`fppa_tour_config`] — the F2 rig: a Figure 2 platform with one of
//!   every component class.

use crate::config::{FppaConfig, HwIpConfig, MemoryBlockConfig};
use crate::platform::FppaPlatform;
use crate::report::PlatformReport;
use nw_dsoc::Application;
use nw_fabric::FabricSpec;
use nw_hwip::IoChannelConfig;
use nw_ipv4::app::{fast_path_app, FastPathLayout, FastPathWeights};
use nw_mem::MemoryTechnology;
use nw_noc::TopologyKind;
use nw_pe::{Op, PeClass, PeConfig, Program, SchedPolicy};
use nw_types::{AreaMm2, Picojoules};

/// Result of one latency-hiding measurement point (experiment F6).
#[derive(Debug, Clone, Copy)]
pub struct LatencyHidingPoint {
    /// Hardware threads per PE.
    pub threads: usize,
    /// One-way link latency in cycles (round trip is roughly double plus
    /// serialization and router delays).
    pub link_latency: u64,
    /// Measured core utilization.
    pub utilization: f64,
    /// Tasks completed in the measurement window.
    pub tasks: u64,
}

/// Runs the F6 latency-hiding rig: one PE with `threads` contexts executes
/// tasks of `compute_cycles` work plus one synchronous call to a hardwired
/// service across a `link_latency`-cycle link; the PE is kept saturated.
///
/// With enough threads to cover the round trip
/// (`threads ≳ 1 + round_trip / compute`), utilization approaches 1.0 —
/// claim C6.
///
/// # Panics
///
/// Panics on internal platform construction failure (fixed valid config).
pub fn latency_hiding(
    threads: usize,
    link_latency: u64,
    compute_cycles: u64,
    policy: SchedPolicy,
    swap_penalty: u64,
    cycles: u64,
) -> LatencyHidingPoint {
    let mut cfg = FppaConfig::new("latency-hiding", TopologyKind::Ring);
    cfg.link_latency = Some(link_latency);
    cfg.add_pe(
        PeConfig::new(PeClass::GpRisc, threads)
            .with_policy(policy)
            .with_swap_penalty(swap_penalty),
    );
    cfg.add_hwip(HwIpConfig {
        name: "table-service".to_owned(),
        ii: 1,
        latency: 4,
        area: AreaMm2(0.1),
        energy_per_item: Picojoules(5.0),
    });
    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let service = platform.hwip_node(0);

    let task = Program::straight_line([
        Op::Compute(compute_cycles),
        Op::call(service, 8, 8),
        Op::Compute(compute_cycles.max(2) / 2),
    ]);

    // Warm up and measure with manual saturation (no DSOC app needed).
    let warmup = cycles / 5;
    for c in 0..cycles + warmup {
        while platform.pe(0).idle_threads() > 0 {
            platform
                .pe_mut(0)
                .spawn(task.clone())
                .expect("idle thread checked");
        }
        platform.step();
        if c == warmup {
            // Statistics are cumulative; capture deltas via a fresh window
            // would need resetting, so the short warmup is simply accepted
            // as measurement noise on long runs.
        }
    }
    let stats = platform.pe(0).stats();
    LatencyHidingPoint {
        threads,
        link_latency,
        utilization: stats.core_utilization,
        tasks: stats.tasks_completed,
    }
}

/// The assembled IPv4 rig.
#[derive(Debug)]
pub struct Ipv4Rig {
    /// The platform (run it to measure).
    pub platform: FppaPlatform,
    /// The DSOC application.
    pub app: Application,
    /// Object layout per replica.
    pub layouts: Vec<FastPathLayout>,
    /// Placement used (object → PE).
    pub placement: Vec<usize>,
}

/// Builds the T3 rig: `replicas` fast-path worker chains on `replicas + 1`
/// PEs (one per chain plus a dedicated lookup PE), fed at `gbps` worst-case
/// line rate through one I/O channel, with egress bound back to the same
/// channel.
///
/// `threads` is the hardware thread count per PE — the knob that hides the
/// NoC round trip to the shared lookup engine. `link_latency` stresses the
/// interconnect (claim C7 holds it above 100 cycles).
///
/// # Panics
///
/// Panics if `replicas == 0` (the app builder rejects it) or on internal
/// construction failure.
pub fn ipv4_rig(
    replicas: usize,
    threads: usize,
    topology: TopologyKind,
    link_latency: u64,
    gbps: f64,
) -> Ipv4Rig {
    let weights = FastPathWeights::default();
    let (app, layouts) = fast_path_app(replicas, &weights).expect("replicas >= 1");

    let mut cfg = FppaConfig::new("ipv4-fast-path", topology);
    cfg.link_latency = Some(link_latency);
    // One worker PE per replica chain + one packet-header ASIP for lookups.
    for _ in 0..replicas {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    // The lookup engine: a packet-header ASIP run as a barrel processor
    // (zero-overhead thread rotation — the paper's "hardware units that
    // schedule threads and swap them in one cycle").
    let lookup_pe = cfg.add_pe(
        PeConfig::new(
            PeClass::Asip {
                domain: nw_pe::KernelDomain::PacketHeader,
            },
            threads.max(4),
        )
        .with_policy(SchedPolicy::RoundRobin)
        .with_swap_penalty(0),
    );
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 16.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    let mut placement = vec![0usize; app.objects().len()];
    for (r, l) in layouts.iter().enumerate() {
        placement[l.classifier.0] = r;
        placement[l.rewriter.0] = r;
        placement[l.egress.0] = r;
        placement[l.lookup.0] = lookup_pe;
    }
    platform
        .install_app(&app, &placement)
        .expect("placement built to match");
    for l in &layouts {
        platform.bind_io_entry(0, l.classifier).expect("io 0 exists");
        platform.bind_egress(l.egress, 0, 40).expect("io 0 exists");
    }
    Ipv4Rig {
        platform,
        app,
        layouts,
        placement,
    }
}

/// The T6 variant of [`ipv4_rig`]: an explicit `placement` (object → PE
/// index over `n_pes` identical PEs plus a trailing lookup-class ASIP is
/// **not** assumed — all `n_pes` PEs are GP-RISC so mapping quality is the
/// only variable).
///
/// # Panics
///
/// Panics if the placement does not match the application or names a PE
/// outside `0..n_pes`.
pub fn ipv4_rig_with_placement(
    replicas: usize,
    n_pes: usize,
    threads: usize,
    topology: TopologyKind,
    link_latency: u64,
    gbps: f64,
    placement: &[usize],
) -> Ipv4Rig {
    let weights = FastPathWeights::default();
    let (app, layouts) = fast_path_app(replicas, &weights).expect("replicas >= 1");

    let mut cfg = FppaConfig::new("ipv4-fast-path", topology);
    cfg.link_latency = Some(link_latency);
    for _ in 0..n_pes {
        cfg.add_pe(PeConfig::new(PeClass::GpRisc, threads));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 16.0));
    let mut io = IoChannelConfig::ten_gbe_worst_case();
    io.rate = nw_types::BitsPerSec::from_gbps(gbps);
    io.clock_hz = cfg.tech.nominal_clock_hz();
    cfg.add_io(io);

    let mut platform = FppaPlatform::new(cfg).expect("valid fixed config");
    platform
        .install_app(&app, placement)
        .expect("placement must match the application");
    for l in &layouts {
        platform.bind_io_entry(0, l.classifier).expect("io 0 exists");
        platform.bind_egress(l.egress, 0, 40).expect("io 0 exists");
    }
    Ipv4Rig {
        platform,
        app,
        layouts,
        placement: placement.to_vec(),
    }
}

/// Measures an IPv4 rig for `cycles` cycles and reports.
pub fn run_ipv4(rig: &mut Ipv4Rig, cycles: u64) -> PlatformReport {
    rig.platform.run(cycles)
}

/// The F2 rig: a Figure 2 FPPA with one of every component class — eight
/// multithreaded PEs, an SRAM and an eDRAM macro, an eFPGA fabric, a
/// hardwired MPEG-style block, and two communication I/O channels.
pub fn fppa_tour_config() -> FppaConfig {
    let mut cfg = FppaConfig::new("fppa-tour", TopologyKind::Mesh);
    for i in 0..8 {
        let class = match i % 4 {
            0 | 1 => PeClass::GpRisc,
            2 => PeClass::Dsp,
            _ => PeClass::Configurable {
                tuned_for: nw_pe::KernelDomain::PacketHeader,
            },
        };
        cfg.add_pe(PeConfig::new(class, 4));
    }
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Sram, 4.0));
    cfg.add_memory(MemoryBlockConfig::new(MemoryTechnology::Edram, 32.0));
    cfg.add_fabric(FabricSpec::default());
    cfg.add_hwip(HwIpConfig {
        name: "mpeg4-codec".to_owned(),
        ii: 2,
        latency: 24,
        area: AreaMm2(1.2),
        energy_per_item: Picojoules(120.0),
    });
    cfg.add_io(IoChannelConfig::ten_gbe_worst_case());
    cfg.add_io(IoChannelConfig {
        rate: nw_types::BitsPerSec::from_gbps(2.5),
        ..IoChannelConfig::ten_gbe_worst_case()
    });
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hiding_threads_recover_utilization() {
        let one = latency_hiding(1, 50, 40, SchedPolicy::SwitchOnStall, 1, 20_000);
        let eight = latency_hiding(8, 50, 40, SchedPolicy::SwitchOnStall, 1, 20_000);
        assert!(
            one.utilization < 0.6,
            "single thread should stall hard: {}",
            one.utilization
        );
        assert!(
            eight.utilization > 0.85,
            "8 threads should hide a 50-cycle link: {}",
            eight.utilization
        );
        assert!(eight.tasks > one.tasks * 2);
    }

    #[test]
    fn ipv4_rig_shapes() {
        let rig = ipv4_rig(2, 4, TopologyKind::Mesh, 2, 10.0);
        assert_eq!(rig.layouts.len(), 2);
        assert_eq!(rig.placement.len(), rig.app.objects().len());
        // Lookup object shares one PE; replicas use distinct worker PEs.
        assert_ne!(
            rig.placement[rig.layouts[0].classifier.0],
            rig.placement[rig.layouts[1].classifier.0]
        );
    }

    #[test]
    fn ipv4_rig_forwards_packets_at_sustainable_rate() {
        // 4 workers sustain ~2.5 Gb/s (the 10 Gb/s point of claim C7 needs
        // ~3x more workers and is exercised by the T3 experiment sweep).
        let mut rig = ipv4_rig(4, 8, TopologyKind::Mesh, 2, 2.5);
        let report = run_ipv4(&mut rig, 40_000);
        assert!(report.io[0].generated > 500, "line should generate packets");
        assert!(
            report.io[0].transmitted as f64 > report.io[0].generated as f64 * 0.8,
            "a sustainable rate should forward most packets: {:?}",
            report.io[0]
        );
        assert!(report.tasks_completed > 0);
    }

    #[test]
    fn ipv4_rig_oversubscribed_saturates_workers() {
        // At 10 Gb/s with only 4 workers, the workers pin near 100%
        // utilization and the dispatcher backlog grows — the failure mode
        // multithreading alone cannot fix (you need more PEs).
        let mut rig = ipv4_rig(4, 8, TopologyKind::Mesh, 2, 10.0);
        let report = run_ipv4(&mut rig, 20_000);
        let worker_util: f64 = report.pe_utilization[..4].iter().sum::<f64>() / 4.0;
        assert!(worker_util > 0.9, "workers should saturate: {worker_util}");
        assert!(report.queued_invocations > 100, "backlog should grow");
    }

    #[test]
    fn fppa_tour_has_every_component_class() {
        let cfg = fppa_tour_config();
        assert_eq!(cfg.pes.len(), 8);
        assert_eq!(cfg.memories.len(), 2);
        assert_eq!(cfg.fabrics.len(), 1);
        assert_eq!(cfg.hwip.len(), 1);
        assert_eq!(cfg.io.len(), 2);
        assert!(FppaPlatform::new(cfg).is_ok());
    }
}
